//! Property-based tests of the local analyses: monotonicity of the
//! bounds and conservativeness against the scheduling simulators.

use proptest::prelude::*;

use hem_repro::analysis::resource::PeriodicResource;
use hem_repro::analysis::{rr, spnp, spp, AnalysisConfig, AnalysisTask, Priority};
use hem_repro::event_models::{EventModelExt, StandardEventModel};
use hem_repro::sim::canbus::{self, QueuedFrame};
use hem_repro::sim::cpu::{self, SimTask};
use hem_repro::sim::trace;
use hem_repro::time::Time;

/// Up to four periodic tasks with utilization bounded well below 1.
#[derive(Debug, Clone)]
struct TaskSetCfg {
    /// (wcet, period) pairs, priority = index.
    tasks: Vec<(i64, i64)>,
}

fn task_set_strategy() -> impl Strategy<Value = TaskSetCfg> {
    prop::collection::vec((1i64..60, 300i64..2_000), 1..=4)
        .prop_map(|tasks| TaskSetCfg { tasks })
        .prop_filter("bounded utilization", |cfg| {
            cfg.tasks
                .iter()
                .map(|(c, p)| *c as f64 / *p as f64)
                .sum::<f64>()
                < 0.75
        })
}

fn analysis_tasks(cfg: &TaskSetCfg) -> Vec<AnalysisTask> {
    cfg.tasks
        .iter()
        .enumerate()
        .map(|(i, (c, p))| {
            AnalysisTask::new(
                format!("t{i}"),
                Time::new(*c),
                Time::new(*c),
                Priority::new(i as u32),
                StandardEventModel::periodic(Time::new(*p))
                    .expect("valid")
                    .shared(),
            )
        })
        .collect()
}

fn sim_tasks(cfg: &TaskSetCfg, horizon: Time) -> Vec<SimTask> {
    cfg.tasks
        .iter()
        .enumerate()
        .map(|(i, (c, p))| SimTask {
            name: format!("t{i}"),
            priority: Priority::new(i as u32),
            execution_time: Time::new(*c),
            // Synchronous release at 0 = the SPP critical instant.
            activations: trace::periodic(Time::new(*p), horizon),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SPP bounds are conservative against the preemptive simulator, and
    /// with synchronous release they are *exact* for strictly periodic
    /// tasks (the critical instant is realized at t = 0).
    #[test]
    fn spp_bounds_match_simulation(cfg in task_set_strategy()) {
        let tasks = analysis_tasks(&cfg);
        let bounds = spp::analyze(&tasks, &AnalysisConfig::default()).expect("schedulable");
        // Simulate past the hyperperiod-ish horizon.
        let horizon = Time::new(40_000);
        let sims = sim_tasks(&cfg, horizon);
        let jobs = cpu::simulate(&sims);
        let observed = cpu::worst_responses(&sims, &jobs);
        for (bound, obs) in bounds.iter().zip(&observed) {
            prop_assert!(
                *obs <= bound.response.r_plus,
                "{}: observed {} > bound {}", bound.name, obs, bound.response.r_plus
            );
            prop_assert_eq!(
                *obs, bound.response.r_plus,
                "exactness for synchronous periodic release"
            );
        }
    }

    /// SPNP (CAN) bounds are conservative against the non-preemptive
    /// arbitration simulator with synchronous release.
    #[test]
    fn spnp_bounds_cover_simulation(cfg in task_set_strategy()) {
        let tasks = analysis_tasks(&cfg);
        let bounds = spnp::analyze(&tasks, &AnalysisConfig::default()).expect("schedulable");
        let horizon = Time::new(40_000);
        let frames: Vec<QueuedFrame> = cfg
            .tasks
            .iter()
            .enumerate()
            .map(|(i, (c, p))| QueuedFrame {
                name: format!("t{i}"),
                priority: Priority::new(i as u32),
                transmission_time: Time::new(*c),
                queued_at: trace::periodic(Time::new(*p), horizon),
            })
            .collect();
        let txs = canbus::simulate(&frames);
        for (i, bound) in bounds.iter().enumerate() {
            let observed = txs
                .iter()
                .filter(|t| t.frame == i)
                .map(|t| t.response())
                .max()
                .expect("at least one transmission");
            prop_assert!(
                observed <= bound.response.r_plus,
                "{}: observed {} > bound {}", bound.name, observed, bound.response.r_plus
            );
        }
    }

    /// Randomized execution times within [1, WCET] stay within the WCET
    /// bounds too (any admissible behaviour is covered, not just the
    /// worst case).
    #[test]
    fn spp_bounds_cover_randomized_execution(cfg in task_set_strategy(), seed in 0u64..500) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let tasks = analysis_tasks(&cfg);
        let bounds = spp::analyze(&tasks, &AnalysisConfig::default()).expect("schedulable");
        let horizon = Time::new(40_000);
        let sims = sim_tasks(&cfg, horizon);
        let mut rng = StdRng::seed_from_u64(seed);
        let wcets: Vec<i64> = cfg.tasks.iter().map(|(c, _)| *c).collect();
        let jobs = cpu::simulate_with_exec(&sims, |task, _| {
            Time::new(rng.gen_range(1..=wcets[task]))
        });
        let observed = cpu::worst_responses(&sims, &jobs);
        for (bound, obs) in bounds.iter().zip(&observed) {
            prop_assert!(
                *obs <= bound.response.r_plus,
                "{}: observed {} > bound {}", bound.name, obs, bound.response.r_plus
            );
        }
    }

    /// WCRT bounds grow monotonically with execution demand.
    #[test]
    fn spp_monotone_in_wcet(cfg in task_set_strategy(), bump in 1i64..20) {
        let base = analysis_tasks(&cfg);
        let baseline = spp::analyze(&base, &AnalysisConfig::default()).expect("schedulable");
        // Bump the highest-priority task's WCET; every bound may only grow.
        let mut bumped = base.clone();
        bumped[0] = AnalysisTask::new(
            bumped[0].name.clone(),
            bumped[0].bcet,
            bumped[0].wcet + Time::new(bump),
            bumped[0].priority,
            bumped[0].input.clone(),
        );
        if let Ok(after) = spp::analyze(&bumped, &AnalysisConfig::default()) {
            for (b, a) in baseline.iter().zip(&after) {
                prop_assert!(a.response.r_plus >= b.response.r_plus, "{}", b.name);
            }
        }
    }

    /// If the demand-bound test says "schedulable", the simulated EDF
    /// scheduler meets every deadline with synchronous periodic release.
    #[test]
    fn edf_verdict_covers_simulation(cfg in task_set_strategy(), d_num in 1i64..4) {
        use hem_repro::analysis::dbf::{edf_schedulable, EdfTask};
        use hem_repro::sim::cpu_edf::{first_deadline_miss, simulate as edf_simulate, EdfSimTask};
        // Constrained deadlines: D = P·d_num/4 (at least C).
        let tasks: Vec<EdfTask> = cfg
            .tasks
            .iter()
            .enumerate()
            .map(|(i, (c, p))| EdfTask::new(
                format!("t{i}"),
                Time::new(*c),
                Time::new((p * d_num / 4).max(*c)),
                StandardEventModel::periodic(Time::new(*p)).expect("valid").shared(),
            ))
            .collect();
        let verdict = edf_schedulable(&tasks, &AnalysisConfig::default()).expect("bounded");
        let horizon = Time::new(40_000);
        let sim_tasks: Vec<EdfSimTask> = tasks
            .iter()
            .zip(&cfg.tasks)
            .map(|(t, (_, p))| EdfSimTask {
                name: t.name.clone(),
                execution_time: t.wcet,
                deadline: t.deadline,
                activations: trace::periodic(Time::new(*p), horizon),
            })
            .collect();
        let jobs = edf_simulate(&sim_tasks);
        if verdict.is_schedulable() {
            prop_assert_eq!(
                first_deadline_miss(&jobs), None,
                "analysis says schedulable but the simulation missed a deadline"
            );
        }
        // Conversely, a simulated miss must coincide with an Overload
        // verdict (the test is exact for synchronous periodic sets).
        if first_deadline_miss(&jobs).is_some() {
            prop_assert!(!verdict.is_schedulable());
        }
    }

    /// Service-curve chaining is sound: never tighter than the exact SPP
    /// busy window, exact for the top-priority task.
    #[test]
    fn service_chain_bounds_spp(cfg in task_set_strategy()) {
        use hem_repro::analysis::service::{fp_analyze, FullService};
        use std::sync::Arc;
        let tasks = analysis_tasks(&cfg);
        let exact = spp::analyze(&tasks, &AnalysisConfig::default()).expect("schedulable");
        let (via_service, _rem) =
            fp_analyze(&tasks, Arc::new(FullService), &AnalysisConfig::default())
                .expect("schedulable");
        prop_assert_eq!(via_service[0].response.r_plus, exact[0].response.r_plus);
        for (s, e) in via_service.iter().zip(&exact) {
            prop_assert!(
                s.response.r_plus >= e.response.r_plus,
                "{}: service {} < exact {}", s.name, s.response.r_plus, e.response.r_plus
            );
        }
    }

    /// A partition never beats the dedicated processor, and a full
    /// partition matches it exactly.
    #[test]
    fn partition_ordering(cfg in task_set_strategy(), theta in 1i64..100, pi in 100i64..200) {
        let tasks = analysis_tasks(&cfg);
        let dedicated = spp::analyze(&tasks, &AnalysisConfig::default()).expect("schedulable");
        let theta = theta.min(pi);
        let partition = PeriodicResource::new(Time::new(pi), Time::new(theta)).expect("valid");
        if let Ok(on_partition) = hem_repro::analysis::resource::analyze_on(
            &tasks,
            &partition,
            &AnalysisConfig::with_max_busy_window(Time::new(1_000_000)),
        ) {
            for (d, p) in dedicated.iter().zip(&on_partition) {
                prop_assert!(p.response.r_plus >= d.response.r_plus, "{}", d.name);
            }
        }
        let full = PeriodicResource::new(Time::new(pi), Time::new(pi)).expect("valid");
        let on_full = hem_repro::analysis::resource::analyze_on(
            &tasks,
            &full,
            &AnalysisConfig::default(),
        )
        .expect("full partition schedulable");
        prop_assert_eq!(on_full, dedicated);
    }

    /// Audsley's OPA is sound (its order is feasible) and complete
    /// relative to deadline-monotonic (whenever DM works, OPA succeeds).
    #[test]
    fn opa_sound_and_dominates_dm(
        cfg in task_set_strategy(),
        deadline_scale in 2i64..8,
    ) {
        use hem_repro::analysis::assignment::{
            audsley, deadline_monotonic, order_is_feasible, DeadlineTask, Scheduling,
        };
        let tasks: Vec<DeadlineTask> = cfg
            .tasks
            .iter()
            .enumerate()
            .map(|(i, (c, p))| DeadlineTask::new(
                format!("t{i}"),
                Time::new(*c),
                Time::new(*c),
                Time::new(c * deadline_scale + p / 4),
                StandardEventModel::periodic(Time::new(*p)).expect("valid").shared(),
            ))
            .collect();
        let analysis_cfg = AnalysisConfig::with_max_busy_window(Time::new(500_000));
        let dm = deadline_monotonic(&tasks);
        let dm_ok = order_is_feasible(&tasks, &dm, Scheduling::Preemptive, &analysis_cfg)
            .unwrap_or(false);
        let opa = audsley(&tasks, Scheduling::Preemptive, &analysis_cfg).expect("no breakdown");
        if let Some(order) = &opa {
            prop_assert!(
                order_is_feasible(&tasks, order, Scheduling::Preemptive, &analysis_cfg).unwrap(),
                "OPA order must be feasible"
            );
        }
        if dm_ok {
            prop_assert!(opa.is_some(), "OPA must succeed whenever DM does");
        }
    }

    /// Round-robin slot budgets isolate a task from any interferer load:
    /// the bound never exceeds own demand plus full rounds of foreign
    /// slots.
    #[test]
    fn rr_isolation_bound(cfg in task_set_strategy(), slot in 5i64..40) {
        let slot = Time::new(slot);
        let rr_tasks: Vec<rr::RrTask> = analysis_tasks(&cfg)
            .into_iter()
            .map(|t| rr::RrTask::new(t, slot))
            .collect();
        if let Ok(results) = rr::analyze(&rr_tasks, &AnalysisConfig::default()) {
            for (i, r) in results.iter().enumerate() {
                let own = rr_tasks[i].task.wcet * r.busy_activations as i64;
                let rounds = (own.ticks() + slot.ticks() - 1) / slot.ticks();
                let foreign = slot * rounds * (rr_tasks.len() as i64 - 1);
                prop_assert!(
                    r.response.r_plus <= own + foreign,
                    "{}: {} > {}", r.name, r.response.r_plus, own + foreign
                );
            }
        }
    }
}
