//! Property: rendering a scenario AST and parsing it back is the
//! identity — scenario files are a faithful storage format.

use proptest::prelude::*;

use hem_repro::autosar_com::{FrameType, TransferProperty};
use hem_repro::can::FrameFormat;
use hem_repro::system::dsl::{
    parse_scenario, BusDecl, FrameDecl, Scenario, SignalDecl, SourceDecl, TaskDecl,
};
use hem_repro::time::Time;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

fn source(for_task: bool) -> BoxedStrategy<SourceDecl> {
    let periodic = (1i64..100_000, 0i64..5_000)
        .prop_map(|(period, jitter)| SourceDecl::Periodic { period, jitter });
    let output = ident().prop_map(SourceDecl::TaskOutput);
    if for_task {
        prop_oneof![
            periodic,
            output,
            (ident(), ident()).prop_map(|(frame, signal)| SourceDecl::Signal { frame, signal }),
            ident().prop_map(SourceDecl::FrameArrivals),
        ]
        .boxed()
    } else {
        prop_oneof![periodic, output].boxed()
    }
}

fn frame_type() -> impl Strategy<Value = FrameType> {
    prop_oneof![
        Just(FrameType::Direct),
        (1i64..50_000).prop_map(|p| FrameType::Periodic(Time::new(p))),
        (1i64..50_000).prop_map(|p| FrameType::Mixed(Time::new(p))),
    ]
}

fn signal_decl() -> impl Strategy<Value = SignalDecl> {
    (
        ident(),
        prop_oneof![
            Just(TransferProperty::Triggering),
            Just(TransferProperty::Pending)
        ],
        source(false),
    )
        .prop_map(|(name, transfer, source)| SignalDecl {
            name,
            transfer,
            source,
        })
}

fn frame_decl() -> impl Strategy<Value = FrameDecl> {
    (
        ident(),
        ident(),
        frame_type(),
        0u8..=8,
        prop_oneof![Just(FrameFormat::Standard), Just(FrameFormat::Extended)],
        0u32..1000,
        prop::collection::vec(signal_decl(), 1..=4),
    )
        .prop_map(
            |(name, bus, frame_type, payload, format, prio, signals)| FrameDecl {
                name,
                bus,
                frame_type,
                payload,
                format,
                prio,
                signals,
            },
        )
}

fn task_decl() -> impl Strategy<Value = TaskDecl> {
    (
        ident(),
        ident(),
        0i64..1_000,
        1i64..1_000,
        0u32..1000,
        prop_oneof![Just(None), (1i64..100_000).prop_map(Some)],
        source(true),
    )
        .prop_map(
            |(name, cpu, b, extra, prio, deadline, activation)| TaskDecl {
                name,
                cpu,
                bcet: b.min(b + extra),
                wcet: b + extra,
                prio,
                deadline,
                activation,
            },
        )
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        prop::collection::vec(ident(), 0..3),
        prop::collection::vec(
            (ident(), 1i64..100).prop_map(|(name, bit_time)| BusDecl { name, bit_time }),
            0..3,
        ),
        prop::collection::vec(frame_decl(), 0..4),
        prop::collection::vec(task_decl(), 0..4),
    )
        .prop_map(|(cpus, buses, frames, tasks)| Scenario {
            cpus,
            buses,
            frames,
            tasks,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn render_then_parse_is_identity(s in scenario()) {
        let text = s.render();
        let reparsed = parse_scenario(&text)
            .map_err(|e| TestCaseError::fail(format!("render output failed to parse: {e}\n{text}")))?;
        prop_assert_eq!(&s, &reparsed, "round-trip mismatch; rendered:\n{}", text);
        // Rendering is canonical: a second round trip is textually stable.
        prop_assert_eq!(text, reparsed.render());
    }
}

/// Named regression triaged from `dsl_roundtrip.proptest-regressions`:
/// a scenario that is nothing but one task with `bcet = 0 ≠ wcet`
/// (forcing the split `bcet=`/`wcet=` rendering), priority 0, and a
/// jittery periodic activation — no cpus, buses, or frames declared.
#[test]
fn regression_lone_task_with_zero_bcet_roundtrips() {
    let s = Scenario {
        cpus: vec![],
        buses: vec![],
        frames: vec![],
        tasks: vec![TaskDecl {
            name: "a".into(),
            cpu: "a".into(),
            bcet: 0,
            wcet: 1,
            prio: 0,
            deadline: None,
            activation: SourceDecl::Periodic {
                period: 1,
                jitter: 1,
            },
        }],
    };
    let text = s.render();
    let reparsed = parse_scenario(&text).expect("rendered scenario parses");
    assert_eq!(s, reparsed, "round-trip mismatch; rendered:\n{text}");
    assert_eq!(text, reparsed.render(), "render not canonical");
}
