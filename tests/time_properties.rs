//! Property-based tests of the discrete time layer: algebraic laws of
//! `Time` and the absorbing/ordering semantics of `TimeBound`.

use proptest::prelude::*;

use hem_repro::time::{Time, TimeBound};

fn t() -> impl Strategy<Value = Time> {
    (-1_000_000_000i64..1_000_000_000).prop_map(Time::new)
}

fn tb() -> impl Strategy<Value = TimeBound> {
    prop_oneof![
        (-1_000_000_000i64..1_000_000_000).prop_map(TimeBound::finite),
        Just(TimeBound::Infinite),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn time_addition_laws(a in t(), b in t(), c in t()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + Time::ZERO, a);
        prop_assert_eq!(a - a, Time::ZERO);
        prop_assert_eq!(a + (-a), Time::ZERO);
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)]
    fn time_multiplication_distributes(a in t(), k in -1_000i64..1_000, m in -1_000i64..1_000) {
        prop_assert_eq!(a * (k + m), a * k + a * m);
        prop_assert_eq!(a * k, k * a);
        prop_assert_eq!(a * 1, a);
        prop_assert_eq!(a * 0, Time::ZERO);
    }

    #[test]
    fn time_ordering_is_translation_invariant(a in t(), b in t(), c in t()) {
        prop_assert_eq!(a <= b, a + c <= b + c);
        prop_assert_eq!(a.max(b) + c, (a + c).max(b + c));
        prop_assert_eq!(a.min(b) + c, (a + c).min(b + c));
    }

    #[test]
    fn clamp_is_idempotent_and_monotone(a in t(), b in t()) {
        prop_assert_eq!(
            a.clamp_non_negative().clamp_non_negative(),
            a.clamp_non_negative()
        );
        if a <= b {
            prop_assert!(a.clamp_non_negative() <= b.clamp_non_negative());
        }
        prop_assert!(!a.clamp_non_negative().is_negative());
    }

    #[test]
    fn saturating_agrees_with_plain_in_range(a in t(), b in t()) {
        // Within the generated range no saturation occurs.
        prop_assert_eq!(a.saturating_add(b), a + b);
        prop_assert_eq!(a.saturating_sub(b), a - b);
        prop_assert_eq!(a.checked_add(b), Some(a + b));
    }

    #[test]
    fn bound_ordering_total_with_top(a in tb(), b in tb()) {
        // Totality and the top element.
        prop_assert!(a <= b || b <= a);
        prop_assert!(a <= TimeBound::Infinite);
        prop_assert_eq!(a.max(b), b.max(a));
        prop_assert_eq!(a.min(b), b.min(a));
        prop_assert_eq!(a.min(b) <= a.max(b), true);
    }

    #[test]
    fn bound_addition_absorbs(a in tb(), d in 0i64..1_000_000) {
        let d = Time::new(d);
        match a {
            TimeBound::Infinite => {
                prop_assert_eq!(a + d, TimeBound::Infinite);
                prop_assert_eq!(a - d, TimeBound::Infinite);
                prop_assert_eq!(a * 3, TimeBound::Infinite);
            }
            TimeBound::Finite(f) => {
                prop_assert_eq!(a + d, TimeBound::Finite(f + d));
                prop_assert_eq!(a - d, TimeBound::Finite(f - d));
            }
        }
        // Addition is monotone in both arguments.
        prop_assert!(a <= a + d);
    }

    #[test]
    fn bound_finite_roundtrip(v in -1_000_000i64..1_000_000) {
        let b = TimeBound::finite(v);
        prop_assert_eq!(b.as_finite(), Some(Time::new(v)));
        prop_assert!(b.is_finite());
        prop_assert!(!b.is_infinite());
        prop_assert_eq!(TimeBound::from(Time::new(v)), b);
    }
}
