//! Differential validation of the analysis engine against the
//! discrete-event simulator.
//!
//! A grid of seeded Fig. 2 variants — swept S3/S4 periods, CPU/bus
//! speed ratios, and source release jitter — is run through both the
//! fault-free simulation (`hem_sim::system::run`) and the hierarchical
//! analysis. For every variant the simulation must stay within the
//! analytic envelope:
//!
//! * observed worst-case response times ≤ analytic `r⁺` (tasks and
//!   frames),
//! * observed event counts ≤ the `η⁺` bound of the corresponding
//!   analytic stream (frame transmissions vs the frame-activation
//!   stream, signal deliveries vs the unpacked per-signal streams),
//! * and the hierarchical bounds never exceed the flat baseline.
//!
//! A violation in either direction is a soundness bug: simulation above
//! analysis means the analysis is optimistic; hierarchical above flat
//! means unpacking lost conservatism.

use hem_analysis::Priority;
use hem_autosar_com::{FrameType, TransferProperty};
use hem_bench::paper_system::PaperParams;
use hem_can::{CanBusConfig, CanFrameConfig, FrameFormat};
use hem_event_models::{EventModelExt, StandardEventModel};
use hem_sim::com::ComSignal;
use hem_sim::system::{self as sim, SimActivation, SimCpuTask, SimFrame, SimSystem};
use hem_sim::trace;
use hem_system::{
    analyze, ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, SystemConfig, SystemResults,
    SystemSpec, TaskSpec,
};
use hem_time::Time;

/// One grid point: a Fig. 2 variant plus the release jitter its
/// external sources may exhibit (paper units, like the periods).
#[derive(Debug, Clone, Copy)]
struct Variant {
    s3_period: i64,
    s4_period: i64,
    cpu_scale: i64,
    jitter: i64,
    seed: u64,
}

impl Variant {
    fn params(&self) -> PaperParams {
        PaperParams {
            s3_period: self.s3_period,
            s4_period: self.s4_period,
            cpu_scale: self.cpu_scale,
            ..PaperParams::default()
        }
    }

    fn jitter_ticks(&self) -> Time {
        Time::new(self.jitter * self.cpu_scale)
    }

    fn horizon(&self) -> Time {
        Time::new(25_000 * self.cpu_scale)
    }
}

/// The signals of the Fig. 2 system: (frame, signal, transfer, period
/// accessor).
fn signal_plan(p: &PaperParams) -> Vec<(&'static str, &'static str, TransferProperty, i64)> {
    vec![
        ("F1", "s1", TransferProperty::Triggering, 250),
        ("F1", "s2", TransferProperty::Triggering, 450),
        ("F1", "s3", TransferProperty::Pending, p.s3_period),
        ("F2", "s4", TransferProperty::Triggering, p.s4_period),
    ]
}

/// The analytic side of a variant: the paper spec with
/// periodic-with-jitter sources instead of strictly periodic ones.
fn analytic_spec(v: &Variant) -> SystemSpec {
    let p = v.params();
    let source = |period: i64| {
        ActivationSpec::External(
            StandardEventModel::periodic_with_jitter(p.period_ticks(period), v.jitter_ticks())
                .expect("valid source model")
                .shared(),
        )
    };
    let signals_of = |frame: &str| {
        signal_plan(&p)
            .into_iter()
            .filter(|(f, ..)| *f == frame)
            .map(|(_, name, transfer, period)| SignalSpec {
                name: name.into(),
                transfer,
                source: source(period),
            })
            .collect::<Vec<_>>()
    };
    let task = |name: &str, cet_index: usize, prio: u32, signal: &str| TaskSpec {
        name: name.into(),
        cpu: "cpu1".into(),
        bcet: p.cet_ticks(cet_index),
        wcet: p.cet_ticks(cet_index),
        priority: Priority::new(prio),
        activation: ActivationSpec::Signal {
            frame: "F1".into(),
            signal: signal.into(),
        },
    };
    SystemSpec::new()
        .cpu("cpu1")
        .bus("can", CanBusConfig::new(Time::new(p.bit_time)))
        .frame(FrameSpec {
            name: "F1".into(),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 4,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: signals_of("F1"),
        })
        .frame(FrameSpec {
            name: "F2".into(),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 2,
            format: FrameFormat::Standard,
            priority: Priority::new(2),
            signals: signals_of("F2"),
        })
        .task(task("T1", 0, 1, "s1"))
        .task(task("T2", 1, 2, "s2"))
        .task(task("T3", 2, 3, "s3"))
}

/// The behavioural side of the same variant: seeded jittered write
/// traces feeding the simulator's fault-free COM/CAN/CPU path.
fn behavioural_system(v: &Variant) -> SimSystem {
    let p = v.params();
    let bus = CanBusConfig::new(Time::new(p.bit_time));
    let wire = |payload| {
        bus.transmission_time(
            &CanFrameConfig::new(FrameFormat::Standard, payload).expect("payload within CAN"),
        )
        .r_plus
    };
    let writes = |period: i64, salt: u64| {
        trace::periodic_with_jitter(
            p.period_ticks(period),
            v.jitter_ticks(),
            v.horizon(),
            v.seed ^ salt,
        )
    };
    let signals_of = |frame: &str| {
        signal_plan(&p)
            .into_iter()
            .enumerate()
            .filter(|(_, (f, ..))| *f == frame)
            .map(|(salt, (_, name, transfer, period))| ComSignal {
                name: name.into(),
                transfer,
                writes: writes(period, salt as u64 + 1),
            })
            .collect::<Vec<_>>()
    };
    let task = |name: &str, cet_index: usize, prio: u32, signal: &str| SimCpuTask {
        name: name.into(),
        priority: Priority::new(prio),
        execution_time: p.cet_ticks(cet_index),
        activation: SimActivation::Delivery {
            frame: "F1".into(),
            signal: signal.into(),
        },
    };
    SimSystem {
        frames: vec![
            SimFrame {
                name: "F1".into(),
                priority: Priority::new(1),
                transmission_time: wire(4),
                frame_type: FrameType::Direct,
                signals: signals_of("F1"),
            },
            SimFrame {
                name: "F2".into(),
                priority: Priority::new(2),
                transmission_time: wire(2),
                frame_type: FrameType::Direct,
                signals: signals_of("F2"),
            },
        ],
        tasks: vec![
            task("T1", 0, 1, "s1"),
            task("T2", 1, 2, "s2"),
            task("T3", 2, 3, "s3"),
        ],
    }
}

/// Simulates one variant and checks every observation against the
/// analytic envelope.
fn check_variant(v: &Variant) {
    let hem = analyze(
        &analytic_spec(v),
        &SystemConfig::new(AnalysisMode::Hierarchical),
    )
    .unwrap_or_else(|e| panic!("{v:?}: hierarchical analysis failed: {e}"));
    let flat = analyze(&analytic_spec(v), &SystemConfig::new(AnalysisMode::Flat))
        .unwrap_or_else(|e| panic!("{v:?}: flat analysis failed: {e}"));
    let report = sim::run(&behavioural_system(v), v.horizon());

    // Response times: simulation ≤ hierarchical ≤ flat.
    for task in ["T1", "T2", "T3"] {
        let bound = hem.task(task).expect("task analysed").response.r_plus;
        let flat_bound = flat.task(task).expect("task analysed").response.r_plus;
        let observed = report.task_worst_response[task];
        assert!(
            observed <= bound,
            "{v:?}: {task} simulated {observed} > analytic {bound}"
        );
        assert!(
            bound <= flat_bound,
            "{v:?}: {task} hierarchical {bound} > flat {flat_bound}"
        );
    }
    for frame in ["F1", "F2"] {
        let bound = hem.frame(frame).expect("frame analysed").response.r_plus;
        let observed = report.frame_worst_response[frame];
        assert!(
            observed <= bound,
            "{v:?}: {frame} simulated {observed} > analytic {bound}"
        );
    }

    // Event counts: every observed stream stays under its η⁺ curve.
    check_counts(v, &hem, &report);
}

/// `η⁺` event-count bounds: transmissions against the frame-activation
/// stream, per-signal deliveries against the unpacked inner streams.
fn check_counts(v: &Variant, hem: &SystemResults, report: &sim::SimReport) {
    let p = v.params();
    // All frame activations happen inside `[0, horizon)`; `+1` covers
    // closed-window edge effects conservatively.
    let activation_window = v.horizon() + Time::ONE;
    for frame in ["F1", "F2"] {
        let transmitted = report
            .transmissions
            .get(frame)
            .map_or(0, |t| t.len() as u64);
        let bound = hem
            .frame_activation(frame)
            .expect("activation stream present")
            .eta_plus(activation_window);
        assert!(
            transmitted <= bound,
            "{v:?}: {frame} transmitted {transmitted} > η⁺ {bound}"
        );
        // Deliveries happen within a frame response time of the last
        // activation, so the delivery window extends by r⁺.
        let delivery_window =
            activation_window + hem.frame(frame).expect("frame analysed").response.r_plus;
        for (f, signal, ..) in signal_plan(&p) {
            if f != frame {
                continue;
            }
            let delivered = report
                .deliveries
                .get(&format!("{frame}/{signal}"))
                .map_or(0, |d| d.len() as u64);
            // The unpacked stream bounds the signal's deliveries; the
            // flat frame-output stream is the (coarser) fallback bound
            // for signals no task consumes.
            let model = hem
                .unpacked_signal(frame, signal)
                .or_else(|| hem.frame_output(frame))
                .expect("some output stream present");
            let bound = model.eta_plus(delivery_window);
            assert!(
                delivered <= bound,
                "{v:?}: {frame}/{signal} delivered {delivered} > η⁺ {bound}"
            );
        }
    }
}

/// The grid: S3/S4 period sweeps × bus/CPU speed ratio, jitter-free.
#[test]
fn jitter_free_grid_stays_within_bounds() {
    for s3_period in [450, 600, 750] {
        for s4_period in [300, 400] {
            for cpu_scale in [1, 10] {
                check_variant(&Variant {
                    s3_period,
                    s4_period,
                    cpu_scale,
                    jitter: 0,
                    seed: 0,
                });
            }
        }
    }
}

/// Seeded jittered variants: sources release up to 80 paper units late,
/// different seeds realise different interleavings — all must stay
/// inside the (jitter-aware) analytic envelope.
#[test]
fn seeded_jittered_grid_stays_within_bounds() {
    for s3_period in [450, 600] {
        for cpu_scale in [1, 10] {
            for seed in 0..3 {
                check_variant(&Variant {
                    s3_period,
                    s4_period: 400,
                    cpu_scale,
                    jitter: 80,
                    seed,
                });
            }
        }
    }
}

/// Heavy jitter on the literal (slow-bus) reading: bursts of
/// simultaneous frame activations stress the η⁺ count bounds rather
/// than just the response-time bounds.
#[test]
fn bursty_literal_variants_stay_within_bounds() {
    for seed in 0..4 {
        check_variant(&Variant {
            s3_period: 600,
            s4_period: 400,
            cpu_scale: 1,
            jitter: 260,
            seed,
        });
    }
}

/// Builds the external traces a corpus scenario's simulation needs:
/// one trace per `periodic:` signal source (keyed `frame/signal`) and
/// per `periodic:`-activated task (keyed `task:<name>`). Jittered
/// traces are admissible instances of the declared models by
/// construction.
fn corpus_traces(
    scenario: &hem_system::dsl::Scenario,
    horizon: Time,
    seed: u64,
) -> std::collections::BTreeMap<String, Vec<Time>> {
    use hem_system::dsl::SourceDecl;
    let mut traces = std::collections::BTreeMap::new();
    let mut salt = 0u64;
    let mut add = |key: String, period: i64, jitter: i64, salt: u64| {
        traces.insert(
            key,
            trace::periodic_with_jitter(Time::new(period), Time::new(jitter), horizon, seed ^ salt),
        );
    };
    for frame in &scenario.frames {
        for signal in &frame.signals {
            if let SourceDecl::Periodic { period, jitter } = signal.source {
                salt += 1;
                add(
                    format!("{}/{}", frame.name, signal.name),
                    period,
                    jitter,
                    salt,
                );
            }
        }
    }
    for task in &scenario.tasks {
        if let SourceDecl::Periodic { period, jitter } = task.activation {
            salt += 1;
            add(format!("task:{}", task.name), period, jitter, salt);
        }
    }
    traces
}

/// Every corpus scenario, simulated from its declared sources under an
/// empty fault plan, stays within both the flat and the hierarchical
/// analytic envelope — the directory-iterating counterpart of the
/// Fig. 2 variant grids above.
#[test]
fn corpus_simulations_stay_within_analysis_bounds() {
    use hem_sim::fault::FaultPlan;
    use hem_sim::from_spec::simulate_spec_under_faults;

    // Long enough that even the slowest corpus source (period 60000)
    // fires.
    let horizon = Time::new(100_000);
    for entry in hem_bench::scenarios::corpus() {
        let spec = entry.scenario.to_spec();
        let traces = corpus_traces(&entry.scenario, horizon, 0x5EED);
        let plan = FaultPlan::new(7); // no faults: plain worst-case run
        let report = simulate_spec_under_faults(&spec, &traces, horizon, &plan)
            .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", entry.name));
        for mode in [AnalysisMode::Flat, AnalysisMode::Hierarchical] {
            let bounds = analyze(&spec, &SystemConfig::new(mode))
                .unwrap_or_else(|e| panic!("{}: {mode:?} analysis failed: {e}", entry.name));
            for (frame, &observed) in &report.frame_worst_response {
                let bound = bounds.frame(frame).expect("frame analysed").response.r_plus;
                assert!(
                    observed <= bound,
                    "{}: {mode:?}: frame {frame} observed {observed} exceeds bound {bound}",
                    entry.name
                );
            }
            for (task, &observed) in &report.task_worst_response {
                let bound = bounds.task(task).expect("task analysed").response.r_plus;
                assert!(
                    observed <= bound,
                    "{}: {mode:?}: task {task} observed {observed} exceeds bound {bound}",
                    entry.name
                );
            }
        }
    }
}
