//! Cross-crate integration tests: full systems through the global
//! analysis engine, comparing flat and hierarchical modes.

use hem_repro::analysis::Priority;
use hem_repro::autosar_com::{FrameType, TransferProperty};
use hem_repro::can::{CanBusConfig, FrameFormat};
use hem_repro::event_models::{EventModel, EventModelExt, StandardEventModel};
use hem_repro::system::{
    analyze, ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, SystemConfig, SystemSpec,
    TaskSpec,
};
use hem_repro::time::Time;

/// The paper's Fig. 2 system at scale 10 (see DESIGN.md).
fn paper_spec() -> SystemSpec {
    let scale = 10;
    let source = |period: i64| {
        ActivationSpec::External(
            StandardEventModel::periodic(Time::new(period * scale))
                .expect("positive period")
                .shared(),
        )
    };
    let task = |name: &str, cet: i64, prio: u32, signal: &str| TaskSpec {
        name: name.into(),
        cpu: "cpu1".into(),
        bcet: Time::new(cet * scale),
        wcet: Time::new(cet * scale),
        priority: Priority::new(prio),
        activation: ActivationSpec::Signal {
            frame: "F1".into(),
            signal: signal.into(),
        },
    };
    SystemSpec::new()
        .cpu("cpu1")
        .bus("can", CanBusConfig::new(Time::new(1)))
        .frame(FrameSpec {
            name: "F1".into(),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 4,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: vec![
                SignalSpec {
                    name: "s1".into(),
                    transfer: TransferProperty::Triggering,
                    source: source(250),
                },
                SignalSpec {
                    name: "s2".into(),
                    transfer: TransferProperty::Triggering,
                    source: source(450),
                },
                SignalSpec {
                    name: "s3".into(),
                    transfer: TransferProperty::Pending,
                    source: source(600),
                },
            ],
        })
        .frame(FrameSpec {
            name: "F2".into(),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 2,
            format: FrameFormat::Standard,
            priority: Priority::new(2),
            signals: vec![SignalSpec {
                name: "s4".into(),
                transfer: TransferProperty::Triggering,
                source: source(400),
            }],
        })
        .task(task("T1", 24, 1, "s1"))
        .task(task("T2", 32, 2, "s2"))
        .task(task("T3", 40, 3, "s3"))
}

#[test]
fn paper_system_hem_dominates_flat_for_every_task() {
    let spec = paper_spec();
    let flat = analyze(&spec, &SystemConfig::new(AnalysisMode::Flat)).expect("flat converges");
    let hier =
        analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).expect("hier converges");
    for task in ["T1", "T2", "T3"] {
        let rf = flat.task(task).expect("present").response.r_plus;
        let rh = hier.task(task).expect("present").response.r_plus;
        assert!(rh <= rf, "{task}: HEM {rh} must not exceed flat {rf}");
        assert!(rh < rf, "{task}: HEM should strictly improve here");
    }
}

#[test]
fn frame_results_are_mode_independent() {
    // Both modes analyse the same outer streams on the bus, so frame
    // response times must agree exactly.
    let spec = paper_spec();
    let flat = analyze(&spec, &SystemConfig::new(AnalysisMode::Flat)).expect("flat converges");
    let hier =
        analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).expect("hier converges");
    for frame in ["F1", "F2"] {
        assert_eq!(
            flat.frame(frame).expect("present").response,
            hier.frame(frame).expect("present").response,
            "{frame}"
        );
    }
}

#[test]
fn unpacked_streams_are_bounded_by_frame_stream() {
    let spec = paper_spec();
    let hier =
        analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).expect("hier converges");
    let total = hier.frame_output("F1").expect("present");
    for signal in ["s1", "s2", "s3"] {
        let inner = hier.unpacked_signal("F1", signal).expect("present");
        for dt in (100..=30_000).step_by(700) {
            let dt = Time::new(dt);
            assert!(
                inner.eta_plus(dt) <= total.eta_plus(dt),
                "{signal} at Δt = {dt}"
            );
        }
    }
}

#[test]
fn pending_signal_has_no_arrival_guarantee() {
    let spec = paper_spec();
    let hier =
        analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).expect("hier converges");
    let s3 = hier.unpacked_signal("F1", "s3").expect("present");
    assert_eq!(s3.eta_minus(Time::new(1_000_000)), 0);
    // Triggering signals keep a finite guarantee.
    let s1 = hier.unpacked_signal("F1", "s1").expect("present");
    assert!(s1.eta_minus(Time::new(1_000_000)) > 0);
}

#[test]
fn results_iterators_cover_all_entities() {
    let spec = paper_spec();
    let hier =
        analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).expect("hier converges");
    let tasks: Vec<&str> = hier.tasks().map(|(n, _)| n).collect();
    assert_eq!(tasks, vec!["T1", "T2", "T3"]);
    let frames: Vec<&str> = hier.frames().map(|(n, _)| n).collect();
    assert_eq!(frames, vec!["F1", "F2"]);
    assert!(hier.iterations() >= 2);
}

#[test]
fn periodic_frame_variant_analyses() {
    // Same system but F1 sent periodically: the bus load decouples from
    // the signal rates, and every signal becomes effectively pending.
    let mut spec = paper_spec();
    spec.frames[0].frame_type = FrameType::Periodic(Time::new(1500));
    let hier =
        analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).expect("hier converges");
    let s1 = hier.unpacked_signal("F1", "s1").expect("present");
    assert_eq!(s1.eta_minus(Time::new(1_000_000)), 0, "s1 pending now");
    // The frame stream is exactly periodic with bus jitter.
    let f1 = hier.frame_output("F1").expect("present");
    assert!(f1.delta_min(2) > Time::ZERO);
}

#[test]
fn mixed_frame_variant_analyses() {
    let mut spec = paper_spec();
    spec.frames[0].frame_type = FrameType::Mixed(Time::new(2000));
    let hier =
        analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).expect("hier converges");
    // The timer adds extra frames: more arrivals than the direct variant.
    let direct = analyze(
        &paper_spec(),
        &SystemConfig::new(AnalysisMode::Hierarchical),
    )
    .expect("hier converges");
    let mixed_f1 = hier.frame_output("F1").expect("present");
    let direct_f1 = direct.frame_output("F1").expect("present");
    assert!(
        mixed_f1.eta_plus(Time::new(100_000)) > direct_f1.eta_plus(Time::new(100_000)),
        "timer adds frames"
    );
}

#[test]
fn overload_reports_no_convergence_cleanly() {
    let mut spec = paper_spec();
    // Crank T3's execution time into overload under flat analysis.
    spec.tasks[2].wcet = Time::new(1500);
    spec.tasks[2].bcet = Time::new(1500);
    let err = analyze(&spec, &SystemConfig::new(AnalysisMode::Flat)).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("did not converge") || msg.contains("busy"),
        "unexpected error: {msg}"
    );
}

#[test]
fn gateway_couples_two_buses_through_a_task() {
    // source → F_in on bus0 → gateway task on cpu_gw → signal into F_out
    // on bus1 → receiver on cpu_rx. Exercises lazy cross-bus resolution.
    let source = ActivationSpec::External(
        StandardEventModel::periodic(Time::new(5_000))
            .expect("valid")
            .shared(),
    );
    let spec = SystemSpec::new()
        .cpu("cpu_gw")
        .cpu("cpu_rx")
        .bus("bus0", CanBusConfig::new(Time::new(1)))
        .bus("bus1", CanBusConfig::new(Time::new(1)))
        .frame(FrameSpec {
            name: "F_in".into(),
            bus: "bus0".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 4,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: vec![SignalSpec {
                name: "s".into(),
                transfer: TransferProperty::Triggering,
                source,
            }],
        })
        .task(TaskSpec {
            name: "gateway".into(),
            cpu: "cpu_gw".into(),
            bcet: Time::new(50),
            wcet: Time::new(120),
            priority: Priority::new(1),
            activation: ActivationSpec::Signal {
                frame: "F_in".into(),
                signal: "s".into(),
            },
        })
        .frame(FrameSpec {
            name: "F_out".into(),
            bus: "bus1".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 4,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: vec![SignalSpec {
                name: "s".into(),
                transfer: TransferProperty::Triggering,
                source: ActivationSpec::TaskOutput("gateway".into()),
            }],
        })
        .task(TaskSpec {
            name: "receiver".into(),
            cpu: "cpu_rx".into(),
            bcet: Time::new(80),
            wcet: Time::new(80),
            priority: Priority::new(1),
            activation: ActivationSpec::Signal {
                frame: "F_out".into(),
                signal: "s".into(),
            },
        });
    let r = analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical))
        .expect("gateway system converges");
    // Each hop is uncontended: frame responses are the plain 95-bit
    // transmissions, tasks their own CETs.
    assert_eq!(r.frame("F_in").unwrap().response.r_plus, Time::new(95));
    assert_eq!(r.frame("F_out").unwrap().response.r_plus, Time::new(95));
    assert_eq!(r.task("gateway").unwrap().response.r_plus, Time::new(120));
    assert_eq!(r.task("receiver").unwrap().response.r_plus, Time::new(80));
    // The receiver's activation accumulates the jitter of the whole path:
    // bus0 (95−79) + gateway (120−50) + bus1 (95−79) = 102.
    let act = r.task_activation("receiver").unwrap();
    assert_eq!(act.delta_min(2), Time::new(5_000 - 102));
}
