//! Soundness of the whole pipeline on randomized systems: for randomly
//! generated COM/CAN/CPU systems, every response time and delivery trace
//! observed in behavioural simulation must stay within the bounds
//! computed by the hierarchical global analysis.
//!
//! This is the validation the paper's authors did against SymTA/S —
//! here executed mechanically against our own simulator.

use proptest::prelude::*;

use hem_repro::analysis::Priority;
use hem_repro::autosar_com::{FrameType, TransferProperty};
use hem_repro::can::{CanBusConfig, CanFrameConfig, FrameFormat};
use hem_repro::event_models::{EventModelExt, StandardEventModel};
use hem_repro::sim::com::ComSignal;
use hem_repro::sim::system::{run, SimActivation, SimCpuTask, SimFrame, SimSystem};
use hem_repro::sim::trace;
use hem_repro::system::{
    analyze, ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, SystemConfig, SystemSpec,
    TaskSpec,
};
use hem_repro::time::Time;

/// A randomly drawn system small enough to stay schedulable.
#[derive(Debug, Clone)]
struct RandomSystem {
    /// Per frame: payload bytes and signal configs (period, pending).
    frames: Vec<(u8, Vec<(i64, bool)>)>,
    /// Per task: execution time and the (frame, signal) it listens to.
    tasks: Vec<(i64, usize, usize)>,
}

fn system_strategy() -> impl Strategy<Value = RandomSystem> {
    let signal = (2_000i64..8_000, any::<bool>());
    let frame = (1u8..=8, prop::collection::vec(signal, 1..=3));
    (
        prop::collection::vec(frame, 1..=3),
        prop::collection::vec((50i64..400, 0usize..3, 0usize..3), 1..=3),
    )
        .prop_map(|(mut frames, raw_tasks)| {
            // First signal of each frame must trigger (direct frames).
            for (_, signals) in &mut frames {
                signals[0].1 = false;
            }
            // Clamp task listeners to existing frames/signals.
            let tasks = raw_tasks
                .into_iter()
                .map(|(cet, f, s)| {
                    let f = f % frames.len();
                    let s = s % frames[f].1.len();
                    (cet, f, s)
                })
                .collect();
            RandomSystem { frames, tasks }
        })
}

fn to_spec(sys: &RandomSystem) -> SystemSpec {
    let mut spec = SystemSpec::new()
        .cpu("cpu")
        .bus("can", CanBusConfig::new(Time::new(1)));
    for (fi, (payload, signals)) in sys.frames.iter().enumerate() {
        spec = spec.frame(FrameSpec {
            name: format!("F{fi}"),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: *payload,
            format: FrameFormat::Standard,
            priority: Priority::new(fi as u32 + 1),
            signals: signals
                .iter()
                .enumerate()
                .map(|(si, (period, pending))| SignalSpec {
                    name: format!("s{si}"),
                    transfer: if *pending {
                        TransferProperty::Pending
                    } else {
                        TransferProperty::Triggering
                    },
                    source: ActivationSpec::External(
                        StandardEventModel::periodic(Time::new(*period))
                            .expect("positive period")
                            .shared(),
                    ),
                })
                .collect(),
        });
    }
    for (ti, (cet, f, s)) in sys.tasks.iter().enumerate() {
        spec = spec.task(TaskSpec {
            name: format!("T{ti}"),
            cpu: "cpu".into(),
            bcet: Time::new(*cet),
            wcet: Time::new(*cet),
            priority: Priority::new(ti as u32 + 1),
            activation: ActivationSpec::Signal {
                frame: format!("F{f}"),
                signal: format!("s{s}"),
            },
        });
    }
    spec
}

fn to_sim(sys: &RandomSystem, horizon: Time, seed: u64) -> SimSystem {
    let bus = CanBusConfig::new(Time::new(1));
    SimSystem {
        frames: sys
            .frames
            .iter()
            .enumerate()
            .map(|(fi, (payload, signals))| SimFrame {
                name: format!("F{fi}"),
                priority: Priority::new(fi as u32 + 1),
                transmission_time: bus
                    .transmission_time(
                        &CanFrameConfig::new(FrameFormat::Standard, *payload).expect("≤ 8"),
                    )
                    .r_plus,
                frame_type: FrameType::Direct,
                signals: signals
                    .iter()
                    .enumerate()
                    .map(|(si, (period, pending))| ComSignal {
                        name: format!("s{si}"),
                        transfer: if *pending {
                            TransferProperty::Pending
                        } else {
                            TransferProperty::Triggering
                        },
                        writes: trace::periodic_with_jitter(
                            Time::new(*period),
                            Time::ZERO,
                            horizon,
                            seed ^ (fi as u64) << 8 ^ si as u64,
                        ),
                    })
                    .collect(),
            })
            .collect(),
        tasks: sys
            .tasks
            .iter()
            .enumerate()
            .map(|(ti, (cet, f, s))| SimCpuTask {
                name: format!("T{ti}"),
                priority: Priority::new(ti as u32 + 1),
                execution_time: Time::new(*cet),
                activation: SimActivation::Delivery {
                    frame: format!("F{f}"),
                    signal: format!("s{s}"),
                },
            })
            .collect(),
    }
}

/// Guards the property below against silently degenerating into a no-op:
/// a healthy majority of random draws must be analysable (not overloaded).
#[test]
fn most_random_draws_are_analysable() {
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    let mut analysed = 0;
    for _ in 0..40 {
        let sys = system_strategy()
            .new_tree(&mut runner)
            .expect("strategy works")
            .current();
        if analyze(
            &to_spec(&sys),
            &SystemConfig::new(AnalysisMode::Hierarchical),
        )
        .is_ok()
        {
            analysed += 1;
        }
    }
    assert!(
        analysed >= 20,
        "only {analysed}/40 random systems analysable — the conservativeness \
         property would mostly skip"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulated_behaviour_within_analysis_bounds(
        sys in system_strategy(),
        seed in 0u64..1_000,
    ) {
        let spec = to_spec(&sys);
        let results = match analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)) {
            Ok(r) => r,
            // Overloaded random draws are fine to skip — soundness only
            // claims anything about systems the analysis accepts.
            Err(_) => return Ok(()),
        };
        let horizon = Time::new(150_000);
        let report = run(&to_sim(&sys, horizon, seed), horizon);
        for (name, result) in results.frames() {
            let observed = report.frame_worst_response[name];
            prop_assert!(
                observed <= result.response.r_plus,
                "frame {} observed {} > bound {}", name, observed, result.response.r_plus
            );
        }
        for (name, result) in results.tasks() {
            let observed = report.task_worst_response[name];
            prop_assert!(
                observed <= result.response.r_plus,
                "task {} observed {} > bound {}", name, observed, result.response.r_plus
            );
        }
        // Delivery traces must be admissible for the unpacked models.
        for (fi, (_, signals)) in sys.frames.iter().enumerate() {
            for si in 0..signals.len() {
                let frame = format!("F{fi}");
                let signal = format!("s{si}");
                let deliveries = &report.deliveries[&format!("{frame}/{signal}")];
                if deliveries.len() < 2 {
                    continue;
                }
                let model = results
                    .unpacked_signal(&frame, &signal)
                    .expect("hierarchical mode stores all signals");
                prop_assert_eq!(
                    trace::check_admissible(deliveries, model.as_ref()),
                    None,
                    "deliveries of {}/{} violate the unpacked model", frame, signal
                );
            }
        }
    }
}
