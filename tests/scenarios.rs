//! Every shipped scenario file parses, renders canonically, analyzes
//! in all three modes, and the original two fixtures still reproduce
//! their golden numbers.
//!
//! The corpus is discovered at runtime via
//! [`hem_bench::scenarios::corpus`], so new `.hem` files under
//! `crates/bench/scenarios/` join these gates without editing this
//! test.

use hem_bench::scenarios::corpus;
use hem_repro::system::dsl::parse_scenario;
use hem_repro::system::{analyze, report, AnalysisMode, SystemConfig};
use hem_repro::time::Time;

#[test]
fn corpus_is_large_enough() {
    let n = corpus().len();
    assert!(n >= 50, "scenario corpus shrank to {n} files (need ≥ 50)");
}

#[test]
fn every_scenario_roundtrips_through_the_dsl() {
    for entry in corpus() {
        let rendered = entry.scenario.render();
        let reparsed = parse_scenario(&rendered)
            .unwrap_or_else(|e| panic!("{}: rendered text fails to parse: {e}", entry.name));
        assert_eq!(
            entry.scenario, reparsed,
            "{}: parse ∘ render is not the identity",
            entry.name
        );
        // The canonical form is a fixed point of render.
        assert_eq!(
            rendered,
            reparsed.render(),
            "{}: render is not idempotent",
            entry.name
        );
    }
}

#[test]
fn every_scenario_analyzes_in_every_mode() {
    for entry in corpus() {
        let spec = entry.scenario.to_spec();
        for mode in [
            AnalysisMode::Flat,
            AnalysisMode::FlatSem,
            AnalysisMode::Hierarchical,
        ] {
            let results = analyze(&spec, &SystemConfig::new(mode))
                .unwrap_or_else(|e| panic!("{}: {mode:?} analysis failed: {e}", entry.name));
            assert!(
                results.is_complete(),
                "{}: {mode:?} results incomplete",
                entry.name
            );
        }
    }
}

/// Fetches one corpus entry by name.
fn entry(name: &str) -> hem_bench::scenarios::CorpusEntry {
    corpus()
        .into_iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("scenario `{name}` missing from corpus"))
}

#[test]
fn paper_scenario_reproduces_table3() {
    let spec = entry("paper").scenario.to_spec();
    let hier = analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).expect("converges");
    let flat = analyze(&spec, &SystemConfig::new(AnalysisMode::Flat)).expect("converges");
    for (task, flat_r, hem_r) in [("T1", 401, 240), ("T2", 1041, 560), ("T3", 1841, 960)] {
        assert_eq!(
            flat.task(task).expect("present").response.r_plus,
            Time::new(flat_r)
        );
        assert_eq!(
            hier.task(task).expect("present").response.r_plus,
            Time::new(hem_r)
        );
    }
}

#[test]
fn gateway_scenario_analyses_and_renders() {
    let spec = entry("gateway").scenario.to_spec();
    let results =
        analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).expect("converges");
    // Chain hops appear in the report.
    let text = report::render(&spec, &results);
    assert!(text.contains("bus powertrain:"), "{text}");
    assert!(text.contains("bus body:"), "{text}");
    assert!(text.contains("dash/speed -> speedo"), "{text}");
    // Golden values for the second hop.
    assert_eq!(
        results.frame("dash").expect("present").response.r_plus,
        Time::new(190)
    );
    assert_eq!(
        results.task("speedo").expect("present").response.r_plus,
        Time::new(300)
    );
}

#[test]
fn scenario_errors_are_line_addressed() {
    let broken = entry("paper").text.replace("task T2", "tsak T2");
    let e = hem_repro::system::dsl::parse(&broken).expect_err("must fail");
    assert!(e.to_string().contains("unknown directive"));
    assert!(
        e.line > 10,
        "error should point into the file, got {}",
        e.line
    );
}
