//! The shipped scenario files parse and reproduce their golden numbers.

use hem_repro::system::{analyze, dsl, report, AnalysisMode, SystemConfig};
use hem_repro::time::Time;

const PAPER: &str = include_str!("../crates/bench/scenarios/paper.hem");
const GATEWAY: &str = include_str!("../crates/bench/scenarios/gateway.hem");

#[test]
fn paper_scenario_reproduces_table3() {
    let spec = dsl::parse(PAPER).expect("parses");
    let hier = analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).expect("converges");
    let flat = analyze(&spec, &SystemConfig::new(AnalysisMode::Flat)).expect("converges");
    for (task, flat_r, hem_r) in [("T1", 401, 240), ("T2", 1041, 560), ("T3", 1841, 960)] {
        assert_eq!(
            flat.task(task).expect("present").response.r_plus,
            Time::new(flat_r)
        );
        assert_eq!(
            hier.task(task).expect("present").response.r_plus,
            Time::new(hem_r)
        );
    }
}

#[test]
fn gateway_scenario_analyses_and_renders() {
    let spec = dsl::parse(GATEWAY).expect("parses");
    let results =
        analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).expect("converges");
    // Chain hops appear in the report.
    let text = report::render(&spec, &results);
    assert!(text.contains("bus powertrain:"), "{text}");
    assert!(text.contains("bus body:"), "{text}");
    assert!(text.contains("dash/speed -> speedo"), "{text}");
    // Golden values for the second hop.
    assert_eq!(
        results.frame("dash").expect("present").response.r_plus,
        Time::new(190)
    );
    assert_eq!(
        results.task("speedo").expect("present").response.r_plus,
        Time::new(300)
    );
}

#[test]
fn scenario_errors_are_line_addressed() {
    let broken = PAPER.replace("task T2", "tsak T2");
    let e = dsl::parse(&broken).expect_err("must fail");
    assert!(e.to_string().contains("unknown directive"));
    assert!(
        e.line > 10,
        "error should point into the file, got {}",
        e.line
    );
}
