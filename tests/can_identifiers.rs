//! Real CAN identifiers through the full stack: J1939-flavoured IDs map
//! to arbitration priorities, drive the bus analysis, and order response
//! times exactly as the wire would arbitrate.

use hem_repro::analysis::{AnalysisConfig, Priority};
use hem_repro::can::{bus, BusFrame, CanBusConfig, CanFrameConfig, CanId};
use hem_repro::event_models::{EventModelExt, StandardEventModel};
use hem_repro::time::Time;

fn frame(name: &str, id: CanId, payload: u8, period: i64) -> BusFrame {
    BusFrame::new(
        name,
        CanFrameConfig::new(id.format(), payload).expect("valid payload"),
        id.priority(),
        StandardEventModel::periodic(Time::new(period))
            .expect("valid period")
            .shared(),
    )
}

#[test]
fn identifier_order_governs_bus_responses() {
    let bus_cfg = CanBusConfig::new(Time::new(1));
    // Engine controller (standard, low ID) vs. diagnostics (extended,
    // numerically high) vs. a body frame in between.
    let engine = CanId::standard(0x0C0).unwrap();
    let body = CanId::standard(0x3A0).unwrap();
    let diag = CanId::extended(0x18DA_F110).unwrap();
    assert!(engine.priority().is_higher_than(body.priority()));
    assert!(body.priority().is_higher_than(diag.priority()));

    let frames = vec![
        frame("engine", engine, 8, 5_000),
        frame("body", body, 4, 8_000),
        frame("diag", diag, 8, 20_000),
    ];
    let results = bus::analyze(&frames, &bus_cfg, &AnalysisConfig::default()).unwrap();
    // engine: blocked by the longest lower frame (extended 8 B = 160
    // bits), then its own 135 bits.
    assert_eq!(results[0].response.r_plus, Time::new(160 + 135));
    // body: blocked by diag, interfered once by engine.
    assert_eq!(results[1].response.r_plus, Time::new(160 + 135 + 95));
    // diag: no blocking, interference from both above.
    assert_eq!(results[2].response.r_plus, Time::new(135 + 95 + 160));
}

#[test]
fn standard_beats_extended_on_shared_prefix_in_analysis() {
    let bus_cfg = CanBusConfig::new(Time::new(1));
    let std_id = CanId::standard(0x123).unwrap();
    let ext_id = CanId::extended(0x123 << 18).unwrap();
    let frames = vec![
        frame("std", std_id, 1, 2_000),
        frame("ext", ext_id, 1, 2_000),
    ];
    let results = bus::analyze(&frames, &bus_cfg, &AnalysisConfig::default()).unwrap();
    // The standard frame wins arbitration: its worst case is blocking by
    // the extended frame (1 B extended = 54+8+13+⌊61/4⌋ = 90 bits) plus
    // its own 65 bits (34+8+13+⌊41/4⌋).
    assert_eq!(results[0].response.r_plus, Time::new(90 + 65));
    // The extended frame waits for the standard one.
    assert_eq!(results[1].response.r_plus, Time::new(65 + 90));
    // Same numbers here (2 frames), but the *best* cases differ and the
    // assignment is unambiguous: distinct priorities.
    assert_ne!(std_id.priority(), ext_id.priority());
}

#[test]
fn identifier_priorities_are_compatible_with_manual_ones() {
    // Mixing CanId-derived and manual priorities is possible as long as
    // the numeric spaces are kept apart deliberately.
    let manual = Priority::new(0);
    let derived = CanId::standard(1).unwrap().priority();
    assert!(manual.is_higher_than(derived));
}
