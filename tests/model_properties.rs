//! Property-based tests of the flat event-model layer: every model and
//! combinator must uphold the `EventModel` contract and the η/δ duality
//! of paper eqs. (1),(2).

use proptest::prelude::*;

use hem_repro::event_models::ops::{AndJoin, DminShaper, OrJoin, OutputModel};
use hem_repro::event_models::{
    check_consistency, check_super_additivity, convert, EventModel, EventModelExt, ModelRef,
    SporadicModel, StandardEventModel,
};
use hem_repro::time::Time;

fn sem_strategy() -> impl Strategy<Value = StandardEventModel> {
    (1i64..500, 0i64..800).prop_flat_map(|(p, j)| {
        (0i64..=p.min(60)).prop_map(move |d| {
            StandardEventModel::new(Time::new(p), Time::new(j), Time::new(d)).expect("valid params")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sem_satisfies_model_contract(m in sem_strategy()) {
        check_consistency(&m, 40).expect("consistent");
        // SEMs are exact distance functions: super-additive too.
        check_super_additivity(&m, 40).expect("super-additive");
    }

    #[test]
    fn sem_eta_delta_duality(m in sem_strategy(), dt in 0i64..5_000) {
        let dt = Time::new(dt);
        // Closed forms must equal the generic eq. (1)/(2) conversions.
        prop_assert_eq!(
            m.eta_plus(dt),
            convert::eta_plus_from_delta_min(&|n| m.delta_min(n), dt)
        );
        prop_assert_eq!(
            m.eta_minus(dt),
            convert::eta_minus_from_delta_plus(&|n| m.delta_plus(n), dt)
        );
        // η⁻ never exceeds η⁺.
        prop_assert!(m.eta_minus(dt) <= m.eta_plus(dt));
    }

    #[test]
    fn sem_delta_inversion_roundtrip(m in sem_strategy(), n in 2u64..30) {
        let eta_plus = |dt: Time| m.eta_plus(dt);
        let ub = m.delta_min(n) + Time::ONE;
        prop_assert_eq!(
            convert::delta_min_from_eta_plus(&eta_plus, n, ub),
            m.delta_min(n)
        );
        let eta_minus = |dt: Time| m.eta_minus(dt);
        prop_assert_eq!(
            convert::delta_plus_from_eta_minus(&eta_minus, n),
            m.delta_plus(n)
        );
    }

    #[test]
    fn or_join_matches_contribution_vectors(
        a in sem_strategy(),
        b in sem_strategy(),
        n in 2u64..10,
    ) {
        let or = OrJoin::new(vec![a.shared(), b.shared()]).expect("non-empty");
        // Reference: direct minimization over contribution vectors (3).
        let reference_min = (0..=n)
            .map(|ka| a.delta_min(ka).max(b.delta_min(n - ka)))
            .min()
            .expect("non-empty");
        prop_assert_eq!(or.delta_min(n), reference_min);
        // Reference for eq. (4).
        let reference_plus = (0..=(n - 2))
            .map(|ka| a.delta_plus(ka + 2).min(b.delta_plus(n - ka)))
            .max()
            .expect("non-empty");
        prop_assert_eq!(or.delta_plus(n), reference_plus);
    }

    #[test]
    fn or_join_is_consistent_model(a in sem_strategy(), b in sem_strategy()) {
        let or = OrJoin::new(vec![a.shared(), b.shared()]).expect("non-empty");
        check_consistency(&or, 15).expect("consistent");
        // The OR-combination is exact (eqs. (3),(4)): super-additive.
        check_super_additivity(&or, 15).expect("super-additive");
    }

    #[test]
    fn and_join_is_consistent_model(a in sem_strategy(), b in sem_strategy()) {
        let and = AndJoin::new(vec![a.shared(), b.shared()]).expect("non-empty");
        check_consistency(&and, 15).expect("consistent");
    }

    #[test]
    fn output_model_is_consistent_and_conservative(
        m in sem_strategy(),
        r_minus in 0i64..100,
        extra in 0i64..200,
    ) {
        let (rm, rp) = (Time::new(r_minus), Time::new(r_minus + extra));
        let out = OutputModel::new(m.shared(), rm, rp).expect("valid interval");
        check_consistency(&out, 25).expect("consistent");
        // Output can only admit more events per window than the input
        // plus the one extra event whose completion slides into it.
        for dt in [50i64, 500, 2_000] {
            let dt = Time::new(dt);
            prop_assert!(out.eta_plus(dt) <= m.eta_plus(dt + (rp - rm)) );
        }
    }

    #[test]
    fn output_matches_sem_closed_form(
        m in sem_strategy(),
        r_minus in 0i64..100,
        extra in 0i64..200,
    ) {
        let (rm, rp) = (Time::new(r_minus), Time::new(r_minus + extra));
        let generic = OutputModel::new(m.shared(), rm, rp).expect("valid");
        // The closed form only exists when the input rate can sustain the
        // minimum response time (r⁻ ≤ P); skip infeasible combinations.
        prop_assume!(rm <= m.period());
        let closed = m.propagated(rm, rp).expect("valid");
        for n in 2u64..20 {
            // The generic recursion is at least as tight as the closed
            // form for δ⁻ and identical for δ⁺.
            prop_assert!(generic.delta_min(n) >= closed.delta_min(n), "n = {}", n);
            prop_assert_eq!(generic.delta_plus(n), closed.delta_plus(n));
        }
    }

    #[test]
    fn shaper_enforces_distance_and_stays_consistent(
        m in sem_strategy(),
        d in 0i64..100,
    ) {
        let d = Time::new(d);
        let shaped = DminShaper::new(m.shared(), d).expect("non-negative");
        check_consistency(&shaped, 20).expect("consistent");
        for n in 2u64..15 {
            prop_assert!(shaped.delta_min(n) >= d * (n as i64 - 1));
            prop_assert!(shaped.delta_min(n) >= m.delta_min(n));
        }
    }

    #[test]
    fn sporadic_is_consistent(d in 1i64..500) {
        let m = SporadicModel::new(Time::new(d)).expect("positive");
        check_consistency(&m, 30).expect("consistent");
        prop_assert_eq!(m.eta_minus(Time::new(1_000_000)), 0);
    }

    #[test]
    fn max_simultaneous_matches_definition(m in sem_strategy()) {
        let k = m.max_simultaneous();
        prop_assert_eq!(m.delta_min(k), Time::ZERO);
        prop_assert!(m.delta_min(k + 1) > Time::ZERO);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Materializing any SEM into an explicit curve preserves all four
    /// characteristic functions (within and beyond the sampled prefix).
    #[test]
    fn curve_sampling_roundtrip(m in sem_strategy(), extra in 8u64..40) {
        use hem_repro::event_models::CurveModel;
        // The prefix must clear the SEM's irregular head: δ⁻ follows the
        // d_min line until (n−1) > J / (P − d_min).
        let head = if m.dmin() < m.period() {
            (m.jitter().ticks() / (m.period() - m.dmin()).ticks()) as u64
        } else {
            0
        };
        let prefix = extra + head;
        let curve = CurveModel::sample(&m, prefix, 1, m.period()).expect("samples");
        for n in 0..=(prefix * 2) {
            prop_assert_eq!(curve.delta_min(n), m.delta_min(n), "δ⁻({})", n);
            prop_assert_eq!(curve.delta_plus(n), m.delta_plus(n), "δ⁺({})", n);
        }
        for dt in (0..6_000).step_by(173) {
            let dt = Time::new(dt);
            prop_assert_eq!(curve.eta_plus(dt), m.eta_plus(dt));
            prop_assert_eq!(curve.eta_minus(dt), m.eta_minus(dt));
        }
    }

    /// Every concrete burst trace is admissible for its burst model.
    #[test]
    fn burst_model_covers_its_traces(
        period in 50i64..500,
        burst in 1u64..5,
        inner in 0i64..10,
        phase in 0i64..100,
    ) {
        use hem_repro::event_models::PeriodicBurstModel;
        prop_assume!(inner * (burst as i64 - 1) < period);
        let m = PeriodicBurstModel::new(Time::new(period), burst, Time::new(inner))
            .expect("valid");
        // Concrete trace: bursts from `phase`, 40 events.
        let mut trace = Vec::new();
        let mut t = Time::new(phase);
        'outer: loop {
            for o in 0..burst {
                trace.push(t + Time::new(inner) * o as i64);
                if trace.len() >= 40 {
                    break 'outer;
                }
            }
            t += Time::new(period);
        }
        for n in 2..=trace.len() {
            for w in trace.windows(n) {
                let span = w[n - 1] - w[0];
                prop_assert!(span >= m.delta_min(n as u64), "δ⁻({}) violated", n);
                prop_assert!(
                    hem_repro::time::TimeBound::from(span) <= m.delta_plus(n as u64),
                    "δ⁺({}) violated", n
                );
            }
        }
    }
}

#[test]
fn or_join_nests_associatively_in_eta() {
    // (a | b) | c and a | (b | c) describe the same stream: η⁺ must agree.
    let a: ModelRef = StandardEventModel::periodic(Time::new(100))
        .unwrap()
        .shared();
    let b: ModelRef = StandardEventModel::periodic(Time::new(150))
        .unwrap()
        .shared();
    let c: ModelRef = StandardEventModel::periodic(Time::new(70))
        .unwrap()
        .shared();
    let left = OrJoin::new(vec![
        OrJoin::new(vec![a.clone(), b.clone()]).unwrap().shared(),
        c.clone(),
    ])
    .unwrap();
    let right = OrJoin::new(vec![a, OrJoin::new(vec![b, c]).unwrap().shared()]).unwrap();
    for dt in (0..2000).step_by(37) {
        let dt = Time::new(dt);
        assert_eq!(left.eta_plus(dt), right.eta_plus(dt), "Δt = {dt}");
        assert_eq!(left.eta_minus(dt), right.eta_minus(dt), "Δt = {dt}");
    }
    for n in 2u64..25 {
        assert_eq!(left.delta_min(n), right.delta_min(n), "n = {n}");
        assert_eq!(left.delta_plus(n), right.delta_plus(n), "n = {n}");
    }
}

// ---------------------------------------------------------------------
// Named regressions triaged from `model_properties.proptest-regressions`.
// The shrunk cases proptest once recorded are pinned as deterministic
// tests so they run on every CI leg, not only when proptest replays its
// seed file.

/// Shrunk case `m = SEM{P=1, J=0, dmin=0}, r_minus = 5, extra = 0`: a
/// point response interval [5, 5] on the fastest possible input, where
/// the output model's window extension `rp - rm` collapses to zero.
#[test]
fn regression_output_model_point_interval_on_unit_period() {
    let m = StandardEventModel::new(Time::new(1), Time::new(0), Time::new(0)).expect("valid");
    let (rm, rp) = (Time::new(5), Time::new(5));
    let out = OutputModel::new(m.shared(), rm, rp).expect("valid interval");
    check_consistency(&out, 25).expect("consistent");
    for dt in [50i64, 500, 2_000] {
        let dt = Time::new(dt);
        assert!(
            out.eta_plus(dt) <= m.eta_plus(dt + (rp - rm)),
            "output admits more than input at Δt = {dt}"
        );
    }
}

/// Shrunk case `m = SEM{P=1, J=0, dmin=2}, dt = 2`, recorded before
/// `dmin ≤ period` became a constructor invariant; the surviving
/// boundary is `dmin == period`, where the d_min line and the periodic
/// term of δ⁻ coincide.
#[test]
fn regression_eta_delta_duality_at_dmin_boundary() {
    let m = StandardEventModel::new(Time::new(1), Time::new(0), Time::new(1)).expect("valid");
    for dt in 0i64..=10 {
        let dt = Time::new(dt);
        assert_eq!(
            m.eta_plus(dt),
            convert::eta_plus_from_delta_min(&|n| m.delta_min(n), dt),
            "η⁺ closed form diverges at Δt = {dt}"
        );
        assert_eq!(
            m.eta_minus(dt),
            convert::eta_minus_from_delta_plus(&|n| m.delta_plus(n), dt),
            "η⁻ closed form diverges at Δt = {dt}"
        );
        assert!(m.eta_minus(dt) <= m.eta_plus(dt));
    }
}

/// Shrunk case `a = SEM{1, 0, 2}, b = SEM{1, 0, 0}` (same pre-invariant
/// vintage as above, pinned at `dmin == period`): joining a
/// distance-dominated unit-period model with a free one.
#[test]
fn regression_joins_of_unit_period_extremes() {
    let a = StandardEventModel::new(Time::new(1), Time::new(0), Time::new(1)).expect("valid");
    let b = StandardEventModel::new(Time::new(1), Time::new(0), Time::new(0)).expect("valid");
    let or = OrJoin::new(vec![a.shared(), b.shared()]).expect("non-empty");
    check_consistency(&or, 15).expect("consistent");
    check_super_additivity(&or, 15).expect("super-additive");
    for n in 2u64..10 {
        let reference_min = (0..=n)
            .map(|ka| a.delta_min(ka).max(b.delta_min(n - ka)))
            .min()
            .expect("non-empty");
        assert_eq!(or.delta_min(n), reference_min, "δ⁻({n})");
        let reference_plus = (0..=(n - 2))
            .map(|ka| a.delta_plus(ka + 2).min(b.delta_plus(n - ka)))
            .max()
            .expect("non-empty");
        assert_eq!(or.delta_plus(n), reference_plus, "δ⁺({n})");
    }
    let and = AndJoin::new(vec![a.shared(), b.shared()]).expect("non-empty");
    check_consistency(&and, 15).expect("consistent");
}

/// Shrunk case `m = SEM{P=1, J=9, dmin=0}, prefix = 8`: the jitter head
/// (J / (P − dmin) = 9 steps) exceeds the requested sampling prefix, so
/// the curve's periodic extension must take over inside the irregular
/// region.
#[test]
fn regression_curve_sampling_with_jitter_dominated_head() {
    use hem_repro::event_models::CurveModel;
    let m = StandardEventModel::new(Time::new(1), Time::new(9), Time::new(0)).expect("valid");
    let head = (m.jitter().ticks() / (m.period() - m.dmin()).ticks()) as u64;
    let prefix = 8 + head;
    let curve = CurveModel::sample(&m, prefix, 1, m.period()).expect("samples");
    for n in 0..=(prefix * 2) {
        assert_eq!(curve.delta_min(n), m.delta_min(n), "δ⁻({n})");
        assert_eq!(curve.delta_plus(n), m.delta_plus(n), "δ⁺({n})");
    }
    for dt in (0..6_000).step_by(173) {
        let dt = Time::new(dt);
        assert_eq!(curve.eta_plus(dt), m.eta_plus(dt));
        assert_eq!(curve.eta_minus(dt), m.eta_minus(dt));
    }
}
