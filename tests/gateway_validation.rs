//! Multi-hop validation: a gateway topology analysed by the global
//! engine and executed by the network simulator — every observation must
//! stay within the analytic bounds, across both buses and both CPUs.

use hem_repro::analysis::Priority;
use hem_repro::autosar_com::{FrameType, TransferProperty};
use hem_repro::can::{CanBusConfig, FrameFormat};
use hem_repro::event_models::{EventModelExt, StandardEventModel};
use hem_repro::sim::network::run;
use hem_repro::sim::trace;
use hem_repro::system::{
    analyze, ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, SystemConfig, SystemSpec,
    TaskSpec,
};
use hem_repro::time::Time;

const SRC_PERIOD: i64 = 4_000;
const BG_PERIOD: i64 = 3_000;
const GW_CET: i64 = 150;
const BG_CET: i64 = 400;
const RX_CET: i64 = 250;

/// Analysis-side description: source → F_in (bus0) → gateway (cpu_gw,
/// sharing the CPU with a background task) → F_out (bus1, competing with
/// a periodic frame) → receiver (cpu_rx).
fn analysis_spec() -> SystemSpec {
    let src = |p: i64| {
        ActivationSpec::External(
            StandardEventModel::periodic(Time::new(p))
                .expect("valid")
                .shared(),
        )
    };
    SystemSpec::new()
        .cpu("cpu_gw")
        .cpu("cpu_rx")
        .bus("bus0", CanBusConfig::new(Time::new(1)))
        .bus("bus1", CanBusConfig::new(Time::new(1)))
        .frame(FrameSpec {
            name: "F_in".into(),
            bus: "bus0".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 4,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: vec![SignalSpec {
                name: "s".into(),
                transfer: TransferProperty::Triggering,
                source: src(SRC_PERIOD),
            }],
        })
        .task(TaskSpec {
            name: "gateway".into(),
            cpu: "cpu_gw".into(),
            bcet: Time::new(GW_CET),
            wcet: Time::new(GW_CET),
            priority: Priority::new(1),
            activation: ActivationSpec::Signal {
                frame: "F_in".into(),
                signal: "s".into(),
            },
        })
        .task(TaskSpec {
            name: "background".into(),
            cpu: "cpu_gw".into(),
            bcet: Time::new(BG_CET),
            wcet: Time::new(BG_CET),
            priority: Priority::new(2),
            activation: src(BG_PERIOD),
        })
        .frame(FrameSpec {
            name: "F_out".into(),
            bus: "bus1".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 4,
            format: FrameFormat::Standard,
            priority: Priority::new(2),
            signals: vec![SignalSpec {
                name: "s".into(),
                transfer: TransferProperty::Triggering,
                source: ActivationSpec::TaskOutput("gateway".into()),
            }],
        })
        .frame(FrameSpec {
            name: "F_noise".into(),
            bus: "bus1".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 8,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: vec![SignalSpec {
                name: "n".into(),
                transfer: TransferProperty::Triggering,
                source: src(2_500),
            }],
        })
        .task(TaskSpec {
            name: "receiver".into(),
            cpu: "cpu_rx".into(),
            bcet: Time::new(RX_CET),
            wcet: Time::new(RX_CET),
            priority: Priority::new(1),
            activation: ActivationSpec::Signal {
                frame: "F_out".into(),
                signal: "s".into(),
            },
        })
}

/// Behaviour side, derived mechanically from the same spec (only the
/// external traces are supplied).
fn net_system(horizon: Time) -> hem_repro::sim::network::NetSystem {
    use std::collections::BTreeMap;
    let mut traces: BTreeMap<String, Vec<Time>> = BTreeMap::new();
    traces.insert(
        "F_in/s".into(),
        trace::periodic(Time::new(SRC_PERIOD), horizon),
    );
    traces.insert(
        "F_noise/n".into(),
        trace::periodic(Time::new(2_500), horizon),
    );
    traces.insert(
        "task:background".into(),
        trace::periodic(Time::new(BG_PERIOD), horizon),
    );
    hem_repro::sim::from_spec::net_system_from_spec(&analysis_spec(), &traces)
        .expect("spec translates")
}

#[test]
fn observations_within_bounds_on_every_hop() {
    let results = analyze(
        &analysis_spec(),
        &SystemConfig::new(AnalysisMode::Hierarchical),
    )
    .expect("gateway system converges");
    let horizon = Time::new(400_000);
    let report = run(&net_system(horizon), horizon);

    for frame in ["F_in", "F_out", "F_noise"] {
        let bound = results.frame(frame).expect("analysed").response.r_plus;
        let observed = report.frame_worst_response[frame];
        assert!(
            observed <= bound,
            "{frame}: observed {observed} > bound {bound}"
        );
    }
    for task in ["gateway", "background", "receiver"] {
        let bound = results.task(task).expect("analysed").response.r_plus;
        let observed = report.task_worst_response[task];
        assert!(
            observed <= bound,
            "{task}: observed {observed} > bound {bound}"
        );
    }
}

#[test]
fn downstream_deliveries_respect_propagated_model() {
    let results = analyze(
        &analysis_spec(),
        &SystemConfig::new(AnalysisMode::Hierarchical),
    )
    .expect("converges");
    let horizon = Time::new(400_000);
    let report = run(&net_system(horizon), horizon);
    // The unpacked second-hop stream must cover the simulated deliveries.
    let model = results
        .unpacked_signal("F_out", "s")
        .expect("hierarchical mode stores signals");
    let deliveries = &report.deliveries["F_out/s"];
    assert!(deliveries.len() > 50, "enough samples");
    assert_eq!(
        trace::check_admissible(deliveries, model.as_ref()),
        None,
        "second-hop deliveries violate the propagated model"
    );
}
