//! Conservativeness on randomized *multi-hop* systems: random gateway
//! chains (bus → CPU → bus → CPU) are analysed by the global engine and
//! executed by the network simulator derived from the very same spec via
//! `hem_sim::from_spec`. Every observation must stay within its bound.

use std::collections::BTreeMap;

use proptest::prelude::*;

use hem_repro::analysis::Priority;
use hem_repro::autosar_com::{FrameType, TransferProperty};
use hem_repro::can::{CanBusConfig, FrameFormat};
use hem_repro::event_models::{EventModelExt, StandardEventModel};
use hem_repro::sim::from_spec::net_system_from_spec;
use hem_repro::sim::network::run;
use hem_repro::sim::trace;
use hem_repro::system::{
    analyze, ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, SystemConfig, SystemSpec,
    TaskSpec,
};
use hem_repro::time::Time;

/// A randomized two-hop chain: `lanes` parallel source→gateway→receiver
/// paths sharing bus0, one gateway CPU, bus1 and one receiver CPU.
#[derive(Debug, Clone)]
struct ChainCfg {
    /// Per lane: (source period, gateway CET, receiver CET).
    lanes: Vec<(i64, i64, i64)>,
}

fn chain_strategy() -> impl Strategy<Value = ChainCfg> {
    prop::collection::vec((4_000i64..12_000, 50i64..300, 50i64..300), 1..=3)
        .prop_map(|lanes| ChainCfg { lanes })
}

fn to_spec(cfg: &ChainCfg) -> SystemSpec {
    let mut spec = SystemSpec::new()
        .cpu("cpu_gw")
        .cpu("cpu_rx")
        .bus("bus0", CanBusConfig::new(Time::new(1)))
        .bus("bus1", CanBusConfig::new(Time::new(1)));
    for (i, (period, gw_cet, rx_cet)) in cfg.lanes.iter().enumerate() {
        spec = spec
            .frame(FrameSpec {
                name: format!("in{i}"),
                bus: "bus0".into(),
                frame_type: FrameType::Direct,
                payload_bytes: 4,
                format: FrameFormat::Standard,
                priority: Priority::new(i as u32 + 1),
                signals: vec![SignalSpec {
                    name: "s".into(),
                    transfer: TransferProperty::Triggering,
                    source: ActivationSpec::External(
                        StandardEventModel::periodic(Time::new(*period))
                            .expect("valid")
                            .shared(),
                    ),
                }],
            })
            .task(TaskSpec {
                name: format!("gw{i}"),
                cpu: "cpu_gw".into(),
                bcet: Time::new(*gw_cet),
                wcet: Time::new(*gw_cet),
                priority: Priority::new(i as u32 + 1),
                activation: ActivationSpec::Signal {
                    frame: format!("in{i}"),
                    signal: "s".into(),
                },
            })
            .frame(FrameSpec {
                name: format!("out{i}"),
                bus: "bus1".into(),
                frame_type: FrameType::Direct,
                payload_bytes: 2,
                format: FrameFormat::Standard,
                priority: Priority::new(i as u32 + 1),
                signals: vec![SignalSpec {
                    name: "s".into(),
                    transfer: TransferProperty::Triggering,
                    source: ActivationSpec::TaskOutput(format!("gw{i}")),
                }],
            })
            .task(TaskSpec {
                name: format!("rx{i}"),
                cpu: "cpu_rx".into(),
                bcet: Time::new(*rx_cet),
                wcet: Time::new(*rx_cet),
                priority: Priority::new(i as u32 + 1),
                activation: ActivationSpec::Signal {
                    frame: format!("out{i}"),
                    signal: "s".into(),
                },
            });
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn two_hop_chains_within_bounds(cfg in chain_strategy(), phase_seed in 0u64..100) {
        let spec = to_spec(&cfg);
        let results = match analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)) {
            Ok(r) => r,
            Err(_) => return Ok(()), // overloaded draw: nothing to check
        };
        let horizon = Time::new(200_000);
        let mut traces: BTreeMap<String, Vec<Time>> = BTreeMap::new();
        for (i, (period, _, _)) in cfg.lanes.iter().enumerate() {
            traces.insert(
                format!("in{i}/s"),
                trace::periodic_with_jitter(Time::new(*period), Time::ZERO, horizon,
                    phase_seed ^ i as u64),
            );
        }
        let net = net_system_from_spec(&spec, &traces).expect("translates");
        let report = run(&net, horizon);
        for (name, result) in results.frames() {
            let observed = report.frame_worst_response[name];
            prop_assert!(
                observed <= result.response.r_plus,
                "frame {}: {} > {}", name, observed, result.response.r_plus
            );
        }
        for (name, result) in results.tasks() {
            let observed = report.task_worst_response[name];
            prop_assert!(
                observed <= result.response.r_plus,
                "task {}: {} > {}", name, observed, result.response.r_plus
            );
        }
        // Second-hop deliveries must be admissible for every unpacked
        // downstream model.
        for i in 0..cfg.lanes.len() {
            let frame = format!("out{i}");
            let deliveries = &report.deliveries[&format!("{frame}/s")];
            if deliveries.len() < 2 {
                continue;
            }
            let model = results.unpacked_signal(&frame, "s").expect("stored");
            prop_assert_eq!(
                trace::check_admissible(deliveries, model.as_ref()),
                None,
                "lane {} second hop violates the propagated model", i
            );
        }
    }
}

/// The guard that keeps the property meaningful: most draws analysable.
#[test]
fn most_chain_draws_are_analysable() {
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    let mut ok = 0;
    for _ in 0..30 {
        let cfg = chain_strategy()
            .new_tree(&mut runner)
            .expect("strategy works")
            .current();
        if analyze(
            &to_spec(&cfg),
            &SystemConfig::new(AnalysisMode::Hierarchical),
        )
        .is_ok()
        {
            ok += 1;
        }
    }
    assert!(ok >= 20, "only {ok}/30 chains analysable");
}
