//! Property-based tests of the hierarchical event model: Def. 8 (pack),
//! Def. 9 (inner update) and Def. 10 (unpack) invariants, plus the
//! soundness of the unpacked models against behavioural simulation.

use proptest::prelude::*;

use hem_repro::analysis::Priority;
use hem_repro::autosar_com::{FrameType, TransferProperty};
use hem_repro::core::{HierarchicalStreamConstructor, PackConstructor, PackInput, StreamRole};
use hem_repro::event_models::ops::OrJoin;
use hem_repro::event_models::{
    check_consistency, EventModel, EventModelExt, ModelRef, StandardEventModel,
};
use hem_repro::sim::canbus::{self, QueuedFrame};
use hem_repro::sim::com::{self, ComSignal};
use hem_repro::sim::trace;
use hem_repro::time::{Time, TimeBound};

#[derive(Debug, Clone)]
struct SignalCfg {
    period: i64,
    pending: bool,
}

fn signals_strategy() -> impl Strategy<Value = Vec<SignalCfg>> {
    // 1–4 signals; the first one is always triggering.
    prop::collection::vec((200i64..3000, any::<bool>()), 1..=4).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (period, pending))| SignalCfg {
                period,
                pending: pending && i != 0,
            })
            .collect()
    })
}

fn build_hem(signals: &[SignalCfg]) -> hem_repro::core::HierarchicalEventModel {
    let inputs: Vec<PackInput> = signals
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let model = StandardEventModel::periodic(Time::new(s.period))
                .expect("positive period")
                .shared();
            let role = if s.pending {
                StreamRole::Pending
            } else {
                StreamRole::Triggering
            };
            PackInput::new(format!("s{i}"), model, role)
        })
        .collect();
    PackConstructor::new(inputs)
        .expect("first signal triggers")
        .construct()
        .expect("constructs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Def. 8: the outer stream equals the OR-combination of exactly the
    /// triggering inputs.
    #[test]
    fn outer_is_or_of_triggering(signals in signals_strategy()) {
        let hem = build_hem(&signals);
        let triggering: Vec<ModelRef> = signals
            .iter()
            .filter(|s| !s.pending)
            .map(|s| StandardEventModel::periodic(Time::new(s.period)).expect("valid").shared())
            .collect();
        let reference = OrJoin::new(triggering).expect("non-empty");
        for n in 2u64..12 {
            prop_assert_eq!(hem.outer().delta_min(n), reference.delta_min(n));
            prop_assert_eq!(hem.outer().delta_plus(n), reference.delta_plus(n));
        }
    }

    /// Eqs. (5),(6): triggering inner streams keep their own timing.
    #[test]
    fn triggering_inner_identity(signals in signals_strategy()) {
        let hem = build_hem(&signals);
        for (i, s) in signals.iter().enumerate() {
            if s.pending {
                continue;
            }
            let inner = hem.unpack(i).expect("in range");
            let original = StandardEventModel::periodic(Time::new(s.period)).expect("valid");
            for n in 2u64..10 {
                prop_assert_eq!(inner.delta_min(n), original.delta_min(n));
                prop_assert_eq!(inner.delta_plus(n), original.delta_plus(n));
            }
        }
    }

    /// Eqs. (7),(8): pending inner streams are frame-limited with
    /// unbounded δ⁺, and stay consistent models.
    #[test]
    fn pending_inner_bounds(signals in signals_strategy()) {
        let hem = build_hem(&signals);
        for (i, s) in signals.iter().enumerate() {
            if !s.pending {
                continue;
            }
            let inner = hem.unpack(i).expect("in range");
            prop_assert_eq!(inner.delta_plus(2), TimeBound::Infinite);
            check_consistency(inner.as_ref(), 10).expect("consistent");
            let frame_gap = hem.outer().delta_plus(2).expect_finite("periodic triggers");
            for n in 2u64..8 {
                // The frame-spacing bound.
                prop_assert!(inner.delta_min(n) >= hem.outer().delta_min(n));
                // The signal-spacing bound.
                let signal = StandardEventModel::periodic(Time::new(s.period)).expect("valid");
                prop_assert!(
                    inner.delta_min(n) >= (signal.delta_min(n) - frame_gap).clamp_non_negative()
                );
            }
        }
    }

    /// Def. 9: processing preserves consistency and the serialization
    /// floor; Def. 10: unpack returns exactly the stored inner models.
    #[test]
    fn process_and_unpack_invariants(
        signals in signals_strategy(),
        r_minus in 1i64..120,
        extra in 0i64..200,
    ) {
        let hem = build_hem(&signals);
        let (rm, rp) = (Time::new(r_minus), Time::new(r_minus + extra));
        let after = hem.process(rm, rp).expect("valid interval");
        prop_assert_eq!(after.inners().len(), hem.inners().len());
        check_consistency(after.outer().as_ref(), 10).expect("outer consistent");
        for (i, inner) in after.inners().iter().enumerate() {
            check_consistency(inner.model.as_ref(), 10).expect("inner consistent");
            // Serialization floor (Def. 9 second term).
            for n in 2u64..8 {
                prop_assert!(inner.model.delta_min(n) >= rm * (n as i64 - 1));
            }
            // Ψ_pa: unpack(i) = L(i).
            let unpacked = after.unpack(i).expect("in range");
            prop_assert_eq!(unpacked.delta_min(4), inner.model.delta_min(4));
        }
        // Names survive processing.
        for (a, b) in hem.inners().iter().zip(after.inners()) {
            prop_assert_eq!(&a.name, &b.name);
        }
    }

    /// Soundness against behaviour: simulate the COM layer + bus for one
    /// frame and check every per-signal delivery trace is admissible for
    /// the unpacked (post-transport) model.
    #[test]
    fn unpacked_models_cover_simulated_deliveries(
        signals in signals_strategy(),
        transmission in 20i64..150,
    ) {
        let horizon = Time::new(60_000);
        let hem = build_hem(&signals);
        // Behavioural side: COM layer then a sole frame on the bus.
        let com_signals: Vec<ComSignal> = signals
            .iter()
            .enumerate()
            .map(|(i, s)| ComSignal {
                name: format!("s{i}"),
                transfer: if s.pending {
                    TransferProperty::Pending
                } else {
                    TransferProperty::Triggering
                },
                writes: trace::periodic(Time::new(s.period), horizon),
            })
            .collect();
        let com_trace = com::simulate(FrameType::Direct, &com_signals, horizon);
        let tx = canbus::simulate(&[QueuedFrame {
            name: "F".into(),
            priority: Priority::new(1),
            transmission_time: Time::new(transmission),
            queued_at: com_trace.instances.iter().map(|i| i.queued_at).collect(),
        }]);
        // The frame is alone on the bus, but back-to-back queueing still
        // produces response times in [C, q·C]; take the observed range.
        let r_obs_min = tx.iter().map(|t| t.response()).min().unwrap_or(Time::new(transmission));
        let r_obs_max = tx.iter().map(|t| t.response()).max().unwrap_or(Time::new(transmission));
        let after = hem.process(r_obs_min, r_obs_max).expect("valid interval");
        // Analysis side: per-signal delivery traces must be admissible.
        for (i, _s) in signals.iter().enumerate() {
            let deliveries: Vec<Time> = tx
                .iter()
                .filter(|t| com_trace.instances[t.instance].carries(i))
                .map(|t| t.completed_at)
                .collect();
            if deliveries.len() < 2 {
                continue;
            }
            let model = after.unpack(i).expect("in range");
            let violation = trace::check_admissible(&deliveries, model.as_ref());
            prop_assert_eq!(
                violation, None,
                "signal s{} deliveries violate the unpacked model", i
            );
            // The additive-closure refinement must stay sound too (it
            // tightens Def. 9's output without crossing the behaviour).
            let closed = hem_repro::event_models::ops::AdditiveClosure::new(model.clone());
            prop_assert_eq!(
                trace::check_admissible(&deliveries, &closed),
                None,
                "signal s{} deliveries violate the closed model", i
            );
            for n in 2u64..10 {
                prop_assert!(closed.delta_min(n) >= model.delta_min(n));
            }
        }
    }
}

#[test]
fn flatten_discards_inner_structure() {
    let hem = build_hem(&[
        SignalCfg {
            period: 500,
            pending: false,
        },
        SignalCfg {
            period: 900,
            pending: true,
        },
    ]);
    let flat = hem.flatten();
    for n in 2u64..10 {
        assert_eq!(flat.delta_min(n), hem.outer().delta_min(n));
    }
}

/// Named regression triaged from `hem_properties.proptest-regressions`:
/// shrunk case `signals = [{379, triggering}, {669, triggering},
/// {200, pending}], r_minus = 90, extra = 0`. The pending signal is
/// written faster than either trigger, and the point response interval
/// [90, 90] makes the serialization floor `r⁻·(n−1)` bind exactly.
#[test]
fn regression_process_and_unpack_with_fast_pending_signal() {
    let signals = [
        SignalCfg {
            period: 379,
            pending: false,
        },
        SignalCfg {
            period: 669,
            pending: false,
        },
        SignalCfg {
            period: 200,
            pending: true,
        },
    ];
    let hem = build_hem(&signals);
    let (rm, rp) = (Time::new(90), Time::new(90));
    let after = hem.process(rm, rp).expect("valid interval");
    assert_eq!(after.inners().len(), hem.inners().len());
    check_consistency(after.outer().as_ref(), 10).expect("outer consistent");
    for (i, inner) in after.inners().iter().enumerate() {
        check_consistency(inner.model.as_ref(), 10).expect("inner consistent");
        // Serialization floor (Def. 9 second term).
        for n in 2u64..8 {
            assert!(
                inner.model.delta_min(n) >= rm * (n as i64 - 1),
                "signal {i}: serialization floor violated at n = {n}"
            );
        }
        // Ψ_pa: unpack(i) = L(i).
        let unpacked = after.unpack(i).expect("in range");
        assert_eq!(unpacked.delta_min(4), inner.model.delta_min(4));
    }
    for (a, b) in hem.inners().iter().zip(after.inners()) {
        assert_eq!(&a.name, &b.name);
    }
}
