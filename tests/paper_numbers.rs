//! Golden-number regression tests: the exact values recorded in
//! `EXPERIMENTS.md` for every reproduced table and figure. Any change to
//! the analysis that shifts these numbers must be deliberate (and update
//! both this file and `EXPERIMENTS.md`).

use hem_bench::paper_system::{analyze_mode, figure4, table3, PaperParams};
use hem_system::path::{analyze_path, signal_paths};
use hem_system::AnalysisMode;
use hem_time::Time;

#[test]
fn table3_values() {
    let rows = table3(&PaperParams::default()).expect("analyses converge");
    let expected = [("T1", 401i64, 240i64), ("T2", 1041, 560), ("T3", 1841, 960)];
    for (row, (task, flat, hem)) in rows.iter().zip(expected) {
        assert_eq!(row.task, task);
        assert_eq!(row.r_flat, Time::new(flat), "{task} flat");
        assert_eq!(row.r_hem, Time::new(hem), "{task} HEM");
    }
    // The reduction decimals that survive in the paper's scan.
    assert!((rows[1].reduction_percent() - 46.2).abs() < 0.05);
    assert!((rows[2].reduction_percent() - 47.9).abs() < 0.05);
}

#[test]
fn table3_literal_scale_values() {
    let rows = table3(&PaperParams::literal()).expect("analyses converge");
    assert_eq!(rows[0].r_flat, Time::new(24));
    assert_eq!(rows[0].r_hem, Time::new(24));
    assert_eq!(rows[1].r_flat, Time::new(56));
    assert_eq!(rows[1].r_hem, Time::new(56));
    assert_eq!(rows[2].r_flat, Time::new(242));
    assert_eq!(rows[2].r_hem, Time::new(120));
}

#[test]
fn figure4_breakpoints() {
    let p = PaperParams::default();
    let fig = figure4(&p, Time::new(20_000)).expect("analyses converge");
    let first = |steps: &[hem_event_models::sampling::EtaStep], k: usize| -> Vec<(i64, u64)> {
        steps
            .iter()
            .take(k)
            .map(|s| (s.at.ticks(), s.count))
            .collect()
    };
    assert_eq!(
        first(&fig.frame_f1, 5),
        vec![(1, 1), (80, 2), (2315, 3), (4315, 4), (4815, 5)]
    );
    assert_eq!(first(&fig.t1_input, 3), vec![(1, 1), (2236, 2), (4736, 3)]);
    assert_eq!(first(&fig.t2_input, 3), vec![(1, 1), (4236, 2), (8736, 3)]);
    assert_eq!(first(&fig.t3_input, 3), vec![(1, 1), (3236, 2), (9236, 3)]);
}

#[test]
fn frame_responses() {
    let hem = analyze_mode(&PaperParams::default(), AnalysisMode::Hierarchical).expect("converges");
    let f1 = hem.frame("F1").expect("present").response;
    let f2 = hem.frame("F2").expect("present").response;
    assert_eq!(f1.r_minus, Time::new(79));
    assert_eq!(f1.r_plus, Time::new(265));
    assert_eq!(f2.r_minus, Time::new(63));
    assert_eq!(f2.r_plus, Time::new(265));
}

#[test]
fn path_latency_values() {
    let p = PaperParams::default();
    let system = hem_bench::paper_system::spec(&p);
    let results = analyze_mode(&p, AnalysisMode::Hierarchical).expect("converges");
    let mut totals = std::collections::BTreeMap::new();
    for path in signal_paths(&system) {
        let lat = analyze_path(&system, &results, &path).expect("path analysable");
        totals.insert(path.task.clone(), (lat.total(), lat.guaranteed_delivery));
    }
    assert_eq!(totals["T1"], (Time::new(505), true));
    assert_eq!(totals["T2"], (Time::new(825), true));
    assert_eq!(totals["T3"], (Time::new(3911), false));
}

#[test]
fn bus_speed_sweep_values() {
    // Pin the Ext-B crossover: at scale 2 T1 gains nothing and T2 30 %.
    let rows = table3(&PaperParams {
        cpu_scale: 2,
        ..PaperParams::default()
    })
    .expect("converges");
    assert_eq!(rows[0].r_flat, Time::new(48));
    assert_eq!(rows[0].r_hem, Time::new(48));
    assert_eq!(rows[1].r_flat, Time::new(160));
    assert_eq!(rows[1].r_hem, Time::new(112));
    assert_eq!(rows[2].r_flat, Time::new(417));
    assert_eq!(rows[2].r_hem, Time::new(192));
}

#[test]
fn flatsem_t3_value() {
    let r = analyze_mode(&PaperParams::default(), AnalysisMode::FlatSem).expect("converges");
    assert_eq!(
        r.task("T3").expect("present").response.r_plus,
        Time::new(2401)
    );
}
