//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of `proptest 1.x`:
//! deterministic random generation of test inputs from composable
//! [`strategy::Strategy`] values, the [`proptest!`] / [`prop_assert!`] /
//! [`prop_oneof!`] macro family, integer-range / tuple / `Vec` / string
//! pattern strategies, and a [`test_runner::TestRunner`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the failing assertion (with
//!   `prop_assert*`'s formatted operands) via the panic message but the
//!   input is not minimized.
//! * **Deterministic.** Every run uses a fixed seed derived from the test
//!   case index, so failures reproduce without `proptest-regressions`
//!   files (which are ignored).
//! * Only the string-pattern subset used by this workspace is supported:
//!   concatenations of literals and `[...]` classes with optional
//!   `{n}` / `{n,m}` / `?` / `*` / `+` quantifiers.

#![forbid(unsafe_code)]

mod macros;

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The proptest prelude: everything tests typically import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}
