//! The `any::<T>()` entry point for types with a canonical strategy.

use rand::RngCore;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (`any::<bool>()`, `any::<u32>()`, ...).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Uniform booleans.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn gen_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::seed_from_u64(5);
        let s = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(s.gen_value(&mut rng))] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn any_int_spans_sign() {
        let mut rng = TestRng::seed_from_u64(6);
        let s = any::<i64>();
        let (mut neg, mut pos) = (false, false);
        for _ in 0..256 {
            let v = s.gen_value(&mut rng);
            neg |= v < 0;
            pos |= v > 0;
        }
        assert!(neg && pos);
    }
}
