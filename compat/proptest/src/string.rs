//! String pattern strategies: `"[a-z][a-z0-9_]{0,8}"` style generators.
//!
//! Supports the regex subset the workspace's tests use: literal
//! characters, `\`-escapes, `[...]` character classes with ranges, and the
//! quantifiers `{n}`, `{n,m}`, `?`, `*`, `+` (the unbounded ones are
//! capped at a small repeat count, which is what a *generator* wants).

use rand::Rng;

use crate::test_runner::TestRng;

/// Repeat cap for `*` and `+`.
const UNBOUNDED_CAP: usize = 8;

#[derive(Debug, Clone)]
enum Atom {
    Lit(char),
    /// Inclusive character ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on malformed patterns or regex features outside the supported
/// subset (alternation, groups, anchors, negated classes).
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let n = rng.gen_range(piece.min..=piece.max);
        for _ in 0..n {
            out.push(gen_atom(&piece.atom, rng));
        }
    }
    out
}

fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Lit(c) => *c,
        Atom::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut idx = rng.gen_range(0..total);
            for (lo, hi) in ranges {
                let len = *hi as u32 - *lo as u32 + 1;
                if idx < len {
                    return char::from_u32(*lo as u32 + idx)
                        .expect("class range stays within valid chars");
                }
                idx -= len;
            }
            unreachable!("index within total class size")
        }
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (class, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                class
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern `{pattern}`"));
                i += 1;
                Atom::Lit(c)
            }
            '(' | ')' | '|' | '^' | '$' | '.' => {
                panic!(
                    "unsupported regex feature `{}` in pattern `{pattern}`",
                    chars[i]
                )
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i, pattern);
        i = next;
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Atom, usize) {
    let mut ranges = Vec::new();
    assert!(
        chars.get(i) != Some(&'^'),
        "negated classes unsupported in pattern `{pattern}`"
    );
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 1;
            *chars
                .get(i)
                .unwrap_or_else(|| panic!("dangling escape in pattern `{pattern}`"))
        } else {
            chars[i]
        };
        i += 1;
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|c| *c != ']') {
            let hi = chars[i + 1];
            assert!(
                lo <= hi,
                "inverted class range `{lo}-{hi}` in pattern `{pattern}`"
            );
            ranges.push((lo, hi));
            i += 2;
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(
        chars.get(i) == Some(&']'),
        "unterminated class in pattern `{pattern}`"
    );
    assert!(!ranges.is_empty(), "empty class in pattern `{pattern}`");
    (Atom::Class(ranges), i + 1)
}

fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, UNBOUNDED_CAP, i + 1),
        Some('+') => (1, UNBOUNDED_CAP, i + 1),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|c| *c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern `{pattern}`"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or_else(|_| bad_quant(pattern)),
                    hi.trim().parse().unwrap_or_else(|_| bad_quant(pattern)),
                ),
                None => {
                    let n = body.trim().parse().unwrap_or_else(|_| bad_quant(pattern));
                    (n, n)
                }
            };
            assert!(min <= max, "inverted quantifier in pattern `{pattern}`");
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

fn bad_quant(pattern: &str) -> usize {
    panic!("malformed quantifier in pattern `{pattern}`")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(11)
    }

    #[test]
    fn identifier_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9_]{0,8}", &mut r);
            assert!((1..=9).contains(&s.len()), "bad len: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn literals_and_escapes() {
        let mut r = rng();
        assert_eq!(generate("abc", &mut r), "abc");
        assert_eq!(generate(r"a\[b\]", &mut r), "a[b]");
    }

    #[test]
    fn quantifiers() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("x{2,4}", &mut r);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| c == 'x'));
            let t = generate("y?z+", &mut r);
            assert!(t.len() >= 1 && t.len() <= 1 + UNBOUNDED_CAP);
        }
    }

    #[test]
    fn class_hits_all_members() {
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.extend(generate("[ab_0-1]", &mut r).chars());
        }
        assert_eq!(seen, ['a', 'b', '_', '0', '1'].into_iter().collect());
    }
}
