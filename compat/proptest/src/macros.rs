//! The `proptest!` / `prop_assert*` / `prop_assume!` / `prop_oneof!`
//! macro family.

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over many generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        #[test]
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case!(($config) (stringify!($name)) [] [] ($($params)*) $body);
        }
        $crate::__proptest_tests!(($config) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // Done munching: build the tuple strategy and run.
    (($config:expr) ($name:expr) [$($pats:tt)*] [$($strats:tt)*] () $body:block) => {
        $crate::test_runner::run_cases(
            $config,
            ($($strats)*),
            $name,
            |__proptest_value| {
                let ($($pats)*) = __proptest_value;
                $body
                ::core::result::Result::Ok(())
            },
        )
    };
    // Munch one `pat in strategy` with more parameters following.
    (($config:expr) ($name:expr) [$($pats:tt)*] [$($strats:tt)*]
     ($pat:pat in $strat:expr, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case!(
            ($config) ($name) [$($pats)* $pat,] [$($strats)* ($strat),] ($($rest)*) $body
        )
    };
    // Munch the final `pat in strategy` (no trailing comma).
    (($config:expr) ($name:expr) [$($pats:tt)*] [$($strats:tt)*]
     ($pat:pat in $strat:expr) $body:block) => {
        $crate::__proptest_case!(
            ($config) ($name) [$($pats)* $pat,] [$($strats)* ($strat),] () $body
        )
    };
}

/// Asserts a condition inside a `proptest!` body; on failure the case
/// fails (without panicking mid-generation).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+), __l, __r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}\n  both: `{:?}`",
            format!($($fmt)+), __l
        );
    }};
}

/// Rejects the current case as inapplicable (does not count as a
/// failure; another input is generated instead).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(format!($($fmt)+)),
            );
        }
    };
}

/// Uniform (or weighted, `weight => strategy`) choice between strategies
/// producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
