//! Collection strategies (`prop::collection::vec`).

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    /// Smallest admissible length.
    #[must_use]
    pub fn min(&self) -> usize {
        self.min
    }

    /// Largest admissible length.
    #[must_use]
    pub fn max_inclusive(&self) -> usize {
        self.max_inclusive
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_respect_size_range() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = vec(0i64..10, 2..=5);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }

    #[test]
    fn exact_and_exclusive_sizes() {
        let mut rng = TestRng::seed_from_u64(4);
        assert_eq!(vec(0u8..=1, 3).gen_value(&mut rng).len(), 3);
        let s = vec(0u8..=1, 0..4);
        for _ in 0..50 {
            assert!(s.gen_value(&mut rng).len() < 4);
        }
    }
}
