//! Test execution: configuration, case errors, and the runner.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Re-export so strategies can name the generator type.
pub type TestRng = StdRng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Maximum consecutive rejects (via `prop_assume!` / `prop_filter`)
    /// before the test aborts as unproductive.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases (everything else default).
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion (the test fails).
    Fail(String),
    /// The case was rejected as inapplicable (does not count as failure).
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Result of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives strategies: owns the RNG and the configuration.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// A runner with the given configuration and the fixed default seed.
    #[must_use]
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(0x5EED_CAFE_F00D_0001),
        }
    }

    /// A deterministic runner with default configuration (upstream
    /// compatibility: `TestRunner::deterministic()`).
    #[must_use]
    pub fn deterministic() -> Self {
        Self::new(ProptestConfig::default())
    }

    /// The runner's random generator.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// The runner's configuration.
    #[must_use]
    pub fn config(&self) -> &ProptestConfig {
        &self.config
    }
}

/// Drives one `proptest!` test: generates `config.cases` inputs from
/// `strategy` and runs `test` on each. Deterministic: the RNG seed is
/// derived from the test name, so every run generates the same inputs.
///
/// # Panics
///
/// Panics when a case fails, or when `max_global_rejects` consecutive
/// inputs are rejected (via `prop_assume!` or strategy filters).
pub fn run_cases<S: crate::strategy::Strategy>(
    config: ProptestConfig,
    strategy: S,
    test_name: &str,
    test: impl Fn(S::Value) -> TestCaseResult,
) {
    // FNV-1a over the test name decorrelates different tests while
    // keeping each one reproducible run-to-run.
    let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = TestRng::seed_from_u64(seed);

    let mut case: u32 = 0;
    let mut rejects: u32 = 0;
    while case < config.cases {
        let value = strategy.gen_value(&mut rng);
        match test(value) {
            Ok(()) => {
                case += 1;
                rejects = 0;
            }
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects < config.max_global_rejects,
                    "proptest `{test_name}`: {rejects} consecutive rejected inputs; \
                     the strategy or prop_assume! conditions are too restrictive"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{test_name}` failed at case {case}:\n{msg}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_cases_sets_cases() {
        assert_eq!(ProptestConfig::with_cases(24).cases, 24);
        assert!(ProptestConfig::default().cases > 0);
    }

    #[test]
    fn deterministic_runners_agree() {
        use rand::Rng;
        let mut a = TestRunner::deterministic();
        let mut b = TestRunner::deterministic();
        assert_eq!(a.rng().gen_range(0u64..1000), b.rng().gen_range(0u64..1000));
    }

    #[test]
    fn error_display() {
        assert!(TestCaseError::fail("boom").to_string().contains("boom"));
        assert!(TestCaseError::reject("nope").to_string().contains("nope"));
    }
}
