//! Strategies: composable recipes for generating random test values.

use std::rc::Rc;

use rand::{Rng, RngCore};

use crate::test_runner::{TestRng, TestRunner};

/// How many times `prop_filter` retries before giving up.
const FILTER_RETRIES: usize = 10_000;

/// A generated value with a frozen RNG snapshot, so [`ValueTree::current`]
/// can re-produce it without requiring `Clone` on the value type.
pub struct SnapshotTree<'a, S: Strategy + ?Sized> {
    strategy: &'a S,
    rng: TestRng,
}

/// A (non-shrinking) tree of generated values; only the current value is
/// ever exposed.
pub trait ValueTree {
    /// The generated type.
    type Value;
    /// The value this tree currently represents.
    fn current(&self) -> Self::Value;
}

impl<S: Strategy + ?Sized> ValueTree for SnapshotTree<'_, S> {
    type Value = S::Value;
    fn current(&self) -> S::Value {
        let mut rng = self.rng.clone();
        self.strategy.gen_value(&mut rng)
    }
}

/// A recipe for generating values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Produces a value tree (upstream-compatible entry point used with
    /// [`TestRunner`] directly).
    ///
    /// # Errors
    ///
    /// Never fails in this implementation; the `Result` mirrors the
    /// upstream signature.
    fn new_tree<'a>(&'a self, runner: &mut TestRunner) -> Result<SnapshotTree<'a, Self>, String> {
        let snapshot = runner.rng().clone();
        // Advance the runner so consecutive trees differ.
        let _ = runner.rng().next_u64();
        Ok(SnapshotTree {
            strategy: self,
            rng: snapshot,
        })
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generates an intermediate value, derives a second strategy from it,
    /// and generates the final value from that.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Discards generated values failing the predicate (regenerating up to
    /// an internal retry limit).
    fn prop_filter<R: Into<String>, F: Fn(&Self::Value) -> bool>(
        self,
        whence: R,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            reason: whence.into(),
            pred,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.gen_value(rng)),
        }
    }
}

/// A type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.gen_value(rng)).gen_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.source.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected {FILTER_RETRIES} consecutive values",
            self.reason
        );
    }
}

/// Uniform or weighted choice between several strategies of the same
/// value type (what [`prop_oneof!`](crate::prop_oneof) builds).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// A uniform union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        Self::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// A weighted union over `(weight, option)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or every weight is zero.
    #[must_use]
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
        let total_weight: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! requires a positive total weight"
        );
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, option) in &self.options {
            let weight = u64::from(*weight);
            if pick < weight {
                return option.gen_value(rng);
            }
            pick -= weight;
        }
        unreachable!("pick within total weight")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

impl Strategy for &str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRunner;

    fn rng() -> TestRng {
        use rand::SeedableRng;
        TestRng::seed_from_u64(99)
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        let s = (0i64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.gen_value(&mut r);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn tuples_and_just() {
        let mut r = rng();
        let s = (1u8..=3, Just("x"), 0usize..2);
        let (a, b, c) = s.gen_value(&mut r);
        assert!((1..=3).contains(&a));
        assert_eq!(b, "x");
        assert!(c < 2);
    }

    #[test]
    fn union_picks_all_arms_eventually() {
        let mut r = rng();
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.gen_value(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn filter_retries() {
        let mut r = rng();
        let s = (0i64..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(s.gen_value(&mut r) % 2, 0);
        }
    }

    #[test]
    fn flat_map_chains() {
        let mut r = rng();
        let s = (1i64..5).prop_flat_map(|n| (0i64..n).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = s.gen_value(&mut r);
            assert!(v < n);
        }
    }

    #[test]
    fn new_tree_current_is_stable() {
        let mut runner = TestRunner::deterministic();
        let s = 0i64..1_000_000;
        let tree = s.new_tree(&mut runner).unwrap();
        assert_eq!(tree.current(), tree.current());
    }

    #[test]
    fn consecutive_trees_differ() {
        let mut runner = TestRunner::deterministic();
        let s = 0i64..1_000_000_000;
        let a = s.new_tree(&mut runner).unwrap().current();
        let b = s.new_tree(&mut runner).unwrap().current();
        assert_ne!(a, b);
    }
}
