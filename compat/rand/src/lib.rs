//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of `rand 0.8`: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, [`rngs::StdRng`], and
//! integer/float range sampling. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic across platforms, which is exactly what the
//! simulator's seeded fault plans and trace generators need.
//!
//! Only the surface used by this workspace is provided; it is not a
//! general replacement for `rand`.

#![forbid(unsafe_code)]

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Samples a single value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples uniformly from a (half-open or inclusive) range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen_f64() < p
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's
    /// `StdRng`; the exact stream differs from upstream, which is fine —
    /// callers only rely on determinism per seed, not on a specific
    /// stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10i64..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(0usize..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
