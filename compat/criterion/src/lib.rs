//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of `criterion 0.5`:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark
//! is run for a short, fixed measurement window and a single summary line
//! is printed — enough to exercise the benchmarked code paths and get
//! rough numbers, with none of upstream's statistics.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Measurement window per benchmark.
const MEASUREMENT_WINDOW: Duration = Duration::from_millis(200);
/// Hard cap on iterations per benchmark (cheap routines would otherwise
/// spin for the full window).
const MAX_ITERS: u64 = 10_000;

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

/// Times a routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly for the measurement window and records
    /// the mean iteration time.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters += 1;
            self.total = start.elapsed();
            if self.total >= MEASUREMENT_WINDOW || self.iters >= MAX_ITERS {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            println!("{group}/{id}: no iterations recorded");
            return;
        }
        let mean = self.total / u32::try_from(self.iters).unwrap_or(u32::MAX);
        println!("{group}/{id}: {mean:?} mean over {} iterations", self.iters);
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op beyond upstream API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark (upstream `Criterion::bench_function`).
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Defines a benchmark-group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; accept and
            // ignore them.
            let _ = std::env::args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let data = vec![1u64, 2, 3];
        let mut sum = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(3), &data, |b, d| {
            b.iter(|| {
                sum = d.iter().sum();
                sum
            })
        });
        assert_eq!(sum, 6);
    }
}
