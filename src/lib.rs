//! Umbrella crate for the HEM reproduction workspace.
//!
//! This crate re-exports the workspace members so the root-level
//! `examples/` and `tests/` can use a single dependency. Library users
//! should depend on the individual crates (`hem-core`, `hem-analysis`, …)
//! directly.

pub use hem_analysis as analysis;
pub use hem_autosar_com as autosar_com;
pub use hem_can as can;
pub use hem_core as core;
pub use hem_event_models as event_models;
pub use hem_sim as sim;
pub use hem_system as system;
pub use hem_time as time;
