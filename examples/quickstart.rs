//! Quickstart: event models, stream combination, and busy-window
//! response-time analysis in a few lines.
//!
//! Run with `cargo run --example quickstart`.

use hem_repro::analysis::{spp, AnalysisConfig, AnalysisTask, Priority};
use hem_repro::event_models::ops::{OrJoin, OutputModel};
use hem_repro::event_models::{EventModel, EventModelExt, StandardEventModel};
use hem_repro::time::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe event streams with standard event models (P, J, d_min).
    let sensor = StandardEventModel::periodic(Time::new(100))?;
    let network = StandardEventModel::periodic_with_jitter(Time::new(150), Time::new(40))?;
    println!(
        "sensor:  δ⁻(2) = {}, η⁺(500) = {}",
        sensor.delta_min(2),
        sensor.eta_plus(Time::new(500))
    );
    println!(
        "network: δ⁻(2) = {}, η⁺(500) = {}",
        network.delta_min(2),
        network.eta_plus(Time::new(500))
    );

    // 2. Combine streams: a task activated by either input sees the
    //    OR-combination (paper eqs. (3),(4)).
    let combined = OrJoin::new(vec![sensor.shared(), network.shared()])?;
    println!(
        "combined: δ⁻(2) = {}, η⁺(500) = {}",
        combined.delta_min(2),
        combined.eta_plus(Time::new(500))
    );

    // 3. Analyse a small SPP-scheduled CPU.
    let tasks = vec![
        AnalysisTask::new(
            "ctrl",
            Time::new(10),
            Time::new(12),
            Priority::new(1),
            combined.shared(),
        ),
        AnalysisTask::new(
            "logger",
            Time::new(20),
            Time::new(25),
            Priority::new(2),
            StandardEventModel::periodic(Time::new(400))?.shared(),
        ),
    ];
    let results = spp::analyze(&tasks, &AnalysisConfig::default())?;
    for r in &results {
        println!(
            "{}: response {} (busy period spans {} activation(s))",
            r.name, r.response, r.busy_activations
        );
    }

    // 4. Derive the output stream of the analysed task (operation Θ_τ) —
    //    the input of whatever it feeds next.
    let ctrl = &results[0];
    let output = OutputModel::new(
        tasks[0].input.clone(),
        ctrl.response.r_minus,
        ctrl.response.r_plus,
    )?;
    println!(
        "ctrl output stream: δ⁻(2) = {} (input δ⁻(2) compressed by the response jitter {})",
        output.delta_min(2),
        ctrl.response.jitter()
    );
    Ok(())
}
