//! Analysis vs. behaviour: builds a two-frame CAN system, computes
//! response-time bounds with hierarchical event models, then runs the
//! discrete-event simulator on concrete traces and checks that every
//! observation stays within the analytic bounds.
//!
//! Run with `cargo run --example validate_with_simulation`.

use hem_repro::analysis::Priority;
use hem_repro::autosar_com::{FrameType, TransferProperty};
use hem_repro::can::{CanBusConfig, CanFrameConfig, FrameFormat};
use hem_repro::event_models::{EventModelExt, StandardEventModel};
use hem_repro::sim::com::ComSignal;
use hem_repro::sim::system::{run, SimActivation, SimCpuTask, SimFrame, SimSystem};
use hem_repro::sim::trace;
use hem_repro::system::{
    analyze, ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, SystemConfig, SystemSpec,
    TaskSpec,
};
use hem_repro::time::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (period_a, period_b) = (3000i64, 5000i64);
    let bus = CanBusConfig::new(Time::new(1));

    // --- Analysis side -------------------------------------------------
    let spec = SystemSpec::new()
        .cpu("rx")
        .bus("can", bus)
        .frame(FrameSpec {
            name: "FA".into(),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 8,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: vec![SignalSpec {
                name: "a".into(),
                transfer: TransferProperty::Triggering,
                source: ActivationSpec::External(
                    StandardEventModel::periodic(Time::new(period_a))?.shared(),
                ),
            }],
        })
        .frame(FrameSpec {
            name: "FB".into(),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 2,
            format: FrameFormat::Standard,
            priority: Priority::new(2),
            signals: vec![SignalSpec {
                name: "b".into(),
                transfer: TransferProperty::Triggering,
                source: ActivationSpec::External(
                    StandardEventModel::periodic(Time::new(period_b))?.shared(),
                ),
            }],
        })
        .task(TaskSpec {
            name: "handler_a".into(),
            cpu: "rx".into(),
            bcet: Time::new(200),
            wcet: Time::new(200),
            priority: Priority::new(1),
            activation: ActivationSpec::Signal {
                frame: "FA".into(),
                signal: "a".into(),
            },
        })
        .task(TaskSpec {
            name: "handler_b".into(),
            cpu: "rx".into(),
            bcet: Time::new(700),
            wcet: Time::new(700),
            priority: Priority::new(2),
            activation: ActivationSpec::Signal {
                frame: "FB".into(),
                signal: "b".into(),
            },
        });
    let bounds = analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical))?;

    // --- Behaviour side -------------------------------------------------
    let horizon = Time::new(1_000_000);
    let c = |payload| {
        bus.transmission_time(&CanFrameConfig::new(FrameFormat::Standard, payload).expect("≤ 8"))
            .r_plus
    };
    let sim = SimSystem {
        frames: vec![
            SimFrame {
                name: "FA".into(),
                priority: Priority::new(1),
                transmission_time: c(8),
                frame_type: FrameType::Direct,
                signals: vec![ComSignal {
                    name: "a".into(),
                    transfer: TransferProperty::Triggering,
                    writes: trace::periodic(Time::new(period_a), horizon),
                }],
            },
            SimFrame {
                name: "FB".into(),
                priority: Priority::new(2),
                transmission_time: c(2),
                frame_type: FrameType::Direct,
                signals: vec![ComSignal {
                    name: "b".into(),
                    transfer: TransferProperty::Triggering,
                    writes: trace::periodic(Time::new(period_b), horizon),
                }],
            },
        ],
        tasks: vec![
            SimCpuTask {
                name: "handler_a".into(),
                priority: Priority::new(1),
                execution_time: Time::new(200),
                activation: SimActivation::Delivery {
                    frame: "FA".into(),
                    signal: "a".into(),
                },
            },
            SimCpuTask {
                name: "handler_b".into(),
                priority: Priority::new(2),
                execution_time: Time::new(700),
                activation: SimActivation::Delivery {
                    frame: "FB".into(),
                    signal: "b".into(),
                },
            },
        ],
    };
    let report = run(&sim, horizon);

    // --- Comparison ------------------------------------------------------
    println!(
        "{:<10} {:>12} {:>12} {:>8}",
        "entity", "observed R", "bound R+", "slack"
    );
    let mut ok = true;
    for name in ["FA", "FB"] {
        let observed = report.frame_worst_response[name];
        let bound = bounds.frame(name).expect("analysed").response.r_plus;
        ok &= observed <= bound;
        println!(
            "{name:<10} {observed:>12} {bound:>12} {:>8}",
            bound - observed
        );
    }
    for name in ["handler_a", "handler_b"] {
        let observed = report.task_worst_response[name];
        let bound = bounds.task(name).expect("analysed").response.r_plus;
        ok &= observed <= bound;
        println!(
            "{name:<10} {observed:>12} {bound:>12} {:>8}",
            bound - observed
        );
    }
    println!();
    if ok {
        println!("OK: every observation is within its analytic bound.");
        Ok(())
    } else {
        Err("bound violated — analysis would be unsound".into())
    }
}
