//! The full life of a hierarchical event model, step by step:
//! pack (Ω_pa, Def. 8) → transport (Θ_τ + inner update B, Def. 9) →
//! unpack (Ψ_pa, Def. 10), printing the δ/η functions at each stage.
//!
//! Run with `cargo run --example hierarchy_lifecycle`.

use hem_repro::core::{HierarchicalStreamConstructor, PackConstructor, PackInput};
use hem_repro::event_models::{EventModel, EventModelExt, ModelRef, StandardEventModel};
use hem_repro::time::Time;

fn describe(label: &str, m: &ModelRef) {
    let eta: Vec<u64> = (1..=5).map(|k| m.eta_plus(Time::new(500 * k))).collect();
    println!(
        "  {label:<12} δ⁻(2) = {:>5}  δ⁻(3) = {:>5}  δ⁺(2) = {:>6}  η⁺(500·k) = {eta:?}",
        m.delta_min(2),
        m.delta_min(3),
        m.delta_plus(2),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three signals share one frame: two trigger transmission, one is a
    // pending value that rides along (AUTOSAR COM semantics, paper §4).
    let s1 = StandardEventModel::periodic(Time::new(2500))?.shared();
    let s2 = StandardEventModel::periodic(Time::new(4500))?.shared();
    let s3 = StandardEventModel::periodic(Time::new(6000))?.shared();

    println!("1. Signal streams written into the COM registers:");
    describe("s1 (trig)", &s1);
    describe("s2 (trig)", &s2);
    describe("s3 (pend)", &s3);

    // Pack: the outer stream is the OR-combination of the triggering
    // signals; the pending signal is resampled by the frame stream.
    let hem = PackConstructor::new(vec![
        PackInput::triggering("s1", s1),
        PackInput::triggering("s2", s2),
        PackInput::pending("s3", s3),
    ])?
    .construct()?;
    println!("\n2. After packing (Ω_pa): the bus sees the outer stream");
    describe("outer", hem.outer());
    for inner in hem.inners() {
        describe(&inner.name, &inner.model);
    }

    // Transport: the bus analysis yields the frame's response-time
    // interval; processing shifts the outer stream and adapts every
    // inner stream via the inner update function.
    let (r_minus, r_plus) = (Time::new(79), Time::new(170));
    let after = hem.process(r_minus, r_plus)?;
    println!("\n3. After bus transport (Θ_τ with r = [{r_minus}, {r_plus}], inner update B):");
    describe("outer", after.outer());
    for inner in after.inners() {
        describe(&inner.name, &inner.model);
    }

    // Unpack: each receiver task is activated by its own signal stream,
    // not by the total frame stream.
    println!("\n4. Unpacked activation streams for the receiver tasks (Ψ_pa):");
    let s1_rx = after.unpack_by_name("s1").expect("s1 present");
    let total = after.flatten();
    println!(
        "  total frame arrivals in 10000 ticks: {}   unpacked s1 arrivals: {}",
        total.eta_plus(Time::new(10_000)),
        s1_rx.eta_plus(Time::new(10_000)),
    );
    println!("  → activating the receiver by its signal instead of all frames removes the gap.");
    Ok(())
}
