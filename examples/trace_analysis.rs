//! Measurement-based CPA: record a trace from the simulator, fit a
//! conservative `TraceModel` around it, and analyse a consumer against
//! the *measured* stream — the workflow used when a source's formal
//! model is unknown but observations exist.
//!
//! Run with `cargo run --example trace_analysis`.

use hem_repro::analysis::{spp, AnalysisConfig, AnalysisTask, Priority};
use hem_repro::autosar_com::TransferProperty;
use hem_repro::event_models::{EventModel, EventModelExt, TraceModel};
use hem_repro::sim::canbus::{self, QueuedFrame};
use hem_repro::sim::com::{self, ComSignal};
use hem_repro::sim::trace;
use hem_repro::time::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. "Measure": simulate a jittery producer crossing a shared bus and
    //    record the delivery timestamps at the receiver.
    let horizon = Time::new(300_000);
    let writes = trace::periodic_with_jitter(Time::new(2_000), Time::new(600), horizon, 99);
    let com_trace = com::simulate(
        hem_repro::autosar_com::FrameType::Direct,
        &[ComSignal {
            name: "meas".into(),
            transfer: TransferProperty::Triggering,
            writes,
        }],
        horizon,
    );
    let tx = canbus::simulate(&[QueuedFrame {
        name: "F".into(),
        priority: Priority::new(1),
        transmission_time: Time::new(95),
        queued_at: com_trace.instances.iter().map(|i| i.queued_at).collect(),
    }]);
    let deliveries: Vec<Time> = tx.iter().map(|t| t.completed_at).collect();
    println!(
        "recorded {} deliveries over {horizon} ticks",
        deliveries.len()
    );

    // 2. Fit a conservative event model around the recording.
    let measured = TraceModel::from_timestamps(deliveries.clone())?;
    println!(
        "fitted trace model: δ⁻(2) = {}, δ⁻(5) = {}, η⁺(10000) = {}",
        measured.delta_min(2),
        measured.delta_min(5),
        measured.eta_plus(Time::new(10_000)),
    );

    // 3. Analyse the receiver CPU against the measured stream.
    let tasks = vec![
        AnalysisTask::new(
            "handler",
            Time::new(400),
            Time::new(400),
            Priority::new(1),
            measured.clone().shared(),
        ),
        AnalysisTask::new(
            "background",
            Time::new(900),
            Time::new(900),
            Priority::new(2),
            hem_repro::event_models::StandardEventModel::periodic(Time::new(10_000))?.shared(),
        ),
    ];
    let results = spp::analyze(&tasks, &AnalysisConfig::default())?;
    for r in &results {
        println!("{}: response {}", r.name, r.response);
    }

    // 4. Sanity: the recorded trace itself is admissible for the model
    //    it produced (the fit is genuinely conservative).
    assert_eq!(trace::check_admissible(&deliveries, &measured), None);
    println!("recorded trace is admissible for the fitted model ✓");
    Ok(())
}
