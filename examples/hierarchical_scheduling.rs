//! Hierarchical scheduling × hierarchical event streams: the paper's
//! introduction notes that local analysis was already extended to
//! hierarchical *schedulers* while event streams stayed flat. This
//! example combines both: the receiver tasks run inside a periodic
//! resource partition (Shin/Lee) *and* are activated by unpacked
//! hierarchical streams.
//!
//! Run with `cargo run --example hierarchical_scheduling`.

use hem_repro::analysis::resource::{analyze_on, PeriodicResource};
use hem_repro::analysis::{spp, AnalysisConfig, AnalysisTask, Priority};
use hem_repro::core::{HierarchicalStreamConstructor, PackConstructor, PackInput};
use hem_repro::event_models::{EventModelExt, StandardEventModel};
use hem_repro::time::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two signals packed into one frame (the paper's COM-layer setting).
    let hem = PackConstructor::new(vec![
        PackInput::triggering(
            "brake",
            StandardEventModel::periodic(Time::new(2500))?.shared(),
        ),
        PackInput::triggering(
            "steer",
            StandardEventModel::periodic(Time::new(4500))?.shared(),
        ),
    ])?
    .construct()?;

    // The frame crosses a CAN bus with response times [79, 170] ticks.
    let after_bus = hem.process(Time::new(79), Time::new(170))?;

    // Receiver tasks, activated by their unpacked signals.
    let tasks = vec![
        AnalysisTask::new(
            "brake_handler",
            Time::new(150),
            Time::new(150),
            Priority::new(1),
            after_bus.unpack_by_name("brake").expect("brake packed"),
        ),
        AnalysisTask::new(
            "steer_handler",
            Time::new(400),
            Time::new(400),
            Priority::new(2),
            after_bus.unpack_by_name("steer").expect("steer packed"),
        ),
    ];

    // The receiver ECU hosts several applications; ours only owns a
    // partition Γ = (Π = 1000, Θ) of the processor. How much allocation
    // does the application need?
    println!("Partition sizing for the receiver application (Π = 1000):");
    println!();
    println!(
        "{:>6} {:>6} | {:>16} {:>16}",
        "Θ", "util", "brake R+", "steer R+"
    );
    for theta in [300i64, 400, 500, 700, 1000] {
        let partition = PeriodicResource::new(Time::new(1000), Time::new(theta))?;
        match analyze_on(&tasks, &partition, &AnalysisConfig::default()) {
            Ok(results) => println!(
                "{:>6} {:>5.0}% | {:>16} {:>16}",
                theta,
                100.0 * partition.utilization(),
                results[0].response.r_plus,
                results[1].response.r_plus
            ),
            Err(_) => println!(
                "{:>6} {:>5.0}% | {:>16} {:>16}",
                theta,
                100.0 * partition.utilization(),
                "diverges",
                "diverges"
            ),
        }
    }
    println!();

    // Sanity: the full processor matches the classic dedicated analysis.
    let dedicated = spp::analyze(&tasks, &AnalysisConfig::default())?;
    let full = analyze_on(
        &tasks,
        &PeriodicResource::new(Time::new(1000), Time::new(1000))?,
        &AnalysisConfig::default(),
    )?;
    assert_eq!(dedicated, full);
    println!(
        "Θ = Π reproduces the dedicated-processor analysis exactly \
         (brake R+ = {}).",
        dedicated[0].response.r_plus
    );
    Ok(())
}
