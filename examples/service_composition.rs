//! Compositional resource budgeting with service curves: integrate an
//! application onto a CPU, then hand the *remaining* service to a future
//! component — without re-analysing the existing tasks when it arrives.
//!
//! Run with `cargo run --example service_composition`.

use std::sync::Arc;

use hem_repro::analysis::service::{fp_analyze, FullService, RateLatency, ServiceCurve};
use hem_repro::analysis::{AnalysisConfig, AnalysisTask, Priority};
use hem_repro::event_models::{EventModelExt, StandardEventModel};
use hem_repro::time::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The already-integrated application: three tasks by priority.
    let tasks = vec![
        AnalysisTask::new(
            "sensor",
            Time::new(120),
            Time::new(120),
            Priority::new(1),
            StandardEventModel::periodic(Time::new(1_000))?.shared(),
        ),
        AnalysisTask::new(
            "control",
            Time::new(300),
            Time::new(300),
            Priority::new(2),
            StandardEventModel::periodic_with_jitter(Time::new(2_000), Time::new(250))?.shared(),
        ),
        AnalysisTask::new(
            "logging",
            Time::new(500),
            Time::new(500),
            Priority::new(3),
            StandardEventModel::periodic(Time::new(5_000))?.shared(),
        ),
    ];

    let (results, remainder) =
        fp_analyze(&tasks, Arc::new(FullService), &AnalysisConfig::default())?;
    println!("Integrated application (service-curve chaining):");
    for r in &results {
        println!("  {:<8} response {}", r.name, r.response);
    }

    // What is left for a future component? Summarize the remainder as a
    // rate-latency contract it can be given without knowing our tasks.
    println!();
    println!("Remaining service after the application:");
    for dt in [500i64, 1_000, 2_000, 5_000, 10_000, 50_000] {
        let dt = Time::new(dt);
        println!("  β'({dt:>6}) = {:>6}", remainder.provide(dt));
    }

    // Fit a conservative rate-latency contract under the remainder: take
    // the measured long-run rate, then push the latency out until the
    // rate line stays below the (staircase-shaped) remainder everywhere:
    // L ≥ Δ − β'(Δ)·den/num for all Δ.
    let long = Time::new(200_000);
    let supplied = remainder.provide(long);
    let num = supplied.ticks();
    let den = long.ticks();
    let mut latency = Time::ZERO;
    for dt in 0..=20_000i64 {
        let needed = dt - remainder.provide(Time::new(dt)).ticks() * den / num;
        latency = latency.max(Time::new(needed));
    }
    let contract = RateLatency::new(latency, num, den)?;
    println!();
    println!(
        "Conservative contract for the next component: rate {num}/{den} \
         (≈ {:.1} % of the CPU) after a latency of {latency} ticks.",
        100.0 * num as f64 / den as f64
    );

    // Sanity: the contract never promises more than the true remainder.
    for dt in (0..20_000).step_by(613) {
        let dt = Time::new(dt);
        assert!(
            contract.provide(dt) <= remainder.provide(dt),
            "contract over-promises at {dt}"
        );
    }
    println!("contract verified ≤ true remainder on a sample grid ✓");
    Ok(())
}
