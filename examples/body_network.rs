//! A larger case study: an automotive body network with two CAN buses,
//! a gateway ECU, six frames and nine tasks — the kind of integration
//! scenario the paper's introduction motivates. Shows the analysis
//! scaling beyond the paper's minimal example and prints a full system
//! report: frame responses, task responses flat vs. HEM, end-to-end
//! latencies.
//!
//! Run with `cargo run --example body_network --release`.

use hem_repro::analysis::Priority;
use hem_repro::autosar_com::{FrameType, TransferProperty};
use hem_repro::can::{CanBusConfig, FrameFormat};
use hem_repro::event_models::{EventModelExt, StandardEventModel};
use hem_repro::system::path::{analyze_path, signal_paths};
use hem_repro::system::{
    analyze, ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, SystemConfig, SystemSpec,
    TaskSpec,
};
use hem_repro::time::Time;

fn external(period: i64) -> ActivationSpec {
    ActivationSpec::External(
        StandardEventModel::periodic(Time::new(period))
            .expect("positive period")
            .shared(),
    )
}

fn signal(name: &str, transfer: TransferProperty, source: ActivationSpec) -> SignalSpec {
    SignalSpec {
        name: name.into(),
        transfer,
        source,
    }
}

fn frame(name: &str, bus: &str, payload: u8, prio: u32, signals: Vec<SignalSpec>) -> FrameSpec {
    FrameSpec {
        name: name.into(),
        bus: bus.into(),
        frame_type: FrameType::Direct,
        payload_bytes: payload,
        format: FrameFormat::Standard,
        priority: Priority::new(prio),
        signals,
    }
}

fn task(name: &str, cpu: &str, cet: i64, prio: u32, activation: ActivationSpec) -> TaskSpec {
    TaskSpec {
        name: name.into(),
        cpu: cpu.into(),
        bcet: Time::new(cet),
        wcet: Time::new(cet),
        priority: Priority::new(prio),
        activation,
    }
}

fn sig(frame: &str, signal: &str) -> ActivationSpec {
    ActivationSpec::Signal {
        frame: frame.into(),
        signal: signal.into(),
    }
}

fn body_network() -> SystemSpec {
    use TransferProperty::{Pending, Triggering};
    SystemSpec::new()
        .cpu("gateway")
        .cpu("body")
        .cpu("dash")
        .bus("powertrain_can", CanBusConfig::new(Time::new(1)))
        .bus("body_can", CanBusConfig::new(Time::new(2))) // slower body bus
        // --- powertrain bus ------------------------------------------
        .frame(frame(
            "engine",
            "powertrain_can",
            8,
            1,
            vec![
                signal("rpm", Triggering, external(1_000)),
                signal("coolant", Pending, external(10_000)),
            ],
        ))
        .frame(frame(
            "vehicle",
            "powertrain_can",
            4,
            2,
            vec![
                signal("speed", Triggering, external(2_000)),
                signal("odometer", Pending, external(20_000)),
            ],
        ))
        .frame(frame(
            "brakes",
            "powertrain_can",
            2,
            3,
            vec![signal("pedal", Triggering, external(5_000))],
        ))
        // --- gateway ECU ----------------------------------------------
        .task(task("gw_speed", "gateway", 150, 1, sig("vehicle", "speed")))
        .task(task("gw_rpm", "gateway", 120, 2, sig("engine", "rpm")))
        .task(task(
            "gw_diag",
            "gateway",
            400,
            3,
            ActivationSpec::AnyOf(vec![sig("engine", "coolant"), sig("vehicle", "odometer")]),
        ))
        // --- body bus (gateway re-publishes a packed cluster frame) ----
        .frame(frame(
            "dash_cluster",
            "body_can",
            4,
            1,
            vec![
                signal(
                    "speed",
                    Triggering,
                    ActivationSpec::TaskOutput("gw_speed".into()),
                ),
                signal(
                    "rpm",
                    Triggering,
                    ActivationSpec::TaskOutput("gw_rpm".into()),
                ),
            ],
        ))
        .frame(frame(
            "body_misc",
            "body_can",
            6,
            3,
            vec![
                signal("doors", Triggering, external(15_000)),
                signal("lights", Pending, external(30_000)),
            ],
        ))
        // --- consumers -------------------------------------------------
        .task(task("speedo", "dash", 300, 1, sig("dash_cluster", "speed")))
        .task(task("tacho", "dash", 250, 2, sig("dash_cluster", "rpm")))
        .task(task("warnings", "dash", 500, 3, sig("body_misc", "lights")))
        .task(task("door_ctrl", "body", 800, 1, sig("body_misc", "doors")))
        .task(task(
            "light_ctrl",
            "body",
            600,
            2,
            sig("body_misc", "lights"),
        ))
        .task(task("brake_log", "body", 350, 3, sig("brakes", "pedal")))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = body_network();
    let hier = analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical))?;
    let flat = analyze(&spec, &SystemConfig::new(AnalysisMode::Flat))?;

    println!("== Frames ({} global iterations) ==", hier.iterations());
    for (name, r) in hier.frames() {
        println!("  {name:<12} response {}", r.response);
    }
    println!();
    println!("== Tasks: flat vs. hierarchical ==");
    for (name, r) in hier.tasks() {
        let rf = flat.task(name).expect("present").response.r_plus;
        let rh = r.response.r_plus;
        let red = 100.0 * (rf - rh).ticks() as f64 / rf.ticks().max(1) as f64;
        println!("  {name:<12} flat {rf:>6}   HEM {rh:>6}   ({red:>5.1}% reduction)");
    }
    println!();
    println!("== End-to-end signal latencies (HEM) ==");
    for p in signal_paths(&spec) {
        if let Ok(lat) = analyze_path(&spec, &hier, &p) {
            println!(
                "  {:<24} total {:>6}  (sampling {} + transport {} + reaction {})",
                format!("{}/{}→{}", p.frame, p.signal, p.task),
                lat.total(),
                lat.sampling,
                lat.transport,
                lat.reaction
            );
        }
    }
    Ok(())
}
