//! The paper's Fig. 2 system end to end: four sources, an AUTOSAR COM
//! layer packing them into two CAN frames, and a receiver CPU with three
//! tasks — analysed once with flat event streams and once with
//! hierarchical event models.
//!
//! Run with `cargo run --example autosar_gateway`.

use hem_repro::analysis::Priority;
use hem_repro::autosar_com::{FrameType, TransferProperty};
use hem_repro::can::{CanBusConfig, FrameFormat};
use hem_repro::event_models::{EventModelExt, StandardEventModel};
use hem_repro::system::{
    analyze, ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, SystemConfig, SystemSpec,
    TaskSpec,
};
use hem_repro::time::Time;

fn paper_spec() -> Result<SystemSpec, Box<dyn std::error::Error>> {
    // One paper time unit = 10 CAN bit times (see DESIGN.md).
    let scale = 10;
    let source = |period: i64| -> Result<ActivationSpec, Box<dyn std::error::Error>> {
        Ok(ActivationSpec::External(
            StandardEventModel::periodic(Time::new(period * scale))?.shared(),
        ))
    };
    Ok(SystemSpec::new()
        .cpu("cpu1")
        .bus("can", CanBusConfig::new(Time::new(1)))
        .frame(FrameSpec {
            name: "F1".into(),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 4,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: vec![
                SignalSpec {
                    name: "s1".into(),
                    transfer: TransferProperty::Triggering,
                    source: source(250)?,
                },
                SignalSpec {
                    name: "s2".into(),
                    transfer: TransferProperty::Triggering,
                    source: source(450)?,
                },
                SignalSpec {
                    name: "s3".into(),
                    transfer: TransferProperty::Pending,
                    source: source(600)?,
                },
            ],
        })
        .frame(FrameSpec {
            name: "F2".into(),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 2,
            format: FrameFormat::Standard,
            priority: Priority::new(2),
            signals: vec![SignalSpec {
                name: "s4".into(),
                transfer: TransferProperty::Triggering,
                source: source(400)?,
            }],
        })
        .task(TaskSpec {
            name: "T1".into(),
            cpu: "cpu1".into(),
            bcet: Time::new(24 * scale),
            wcet: Time::new(24 * scale),
            priority: Priority::new(1),
            activation: ActivationSpec::Signal {
                frame: "F1".into(),
                signal: "s1".into(),
            },
        })
        .task(TaskSpec {
            name: "T2".into(),
            cpu: "cpu1".into(),
            bcet: Time::new(32 * scale),
            wcet: Time::new(32 * scale),
            priority: Priority::new(2),
            activation: ActivationSpec::Signal {
                frame: "F1".into(),
                signal: "s2".into(),
            },
        })
        .task(TaskSpec {
            name: "T3".into(),
            cpu: "cpu1".into(),
            bcet: Time::new(40 * scale),
            wcet: Time::new(40 * scale),
            priority: Priority::new(3),
            activation: ActivationSpec::Signal {
                frame: "F1".into(),
                signal: "s3".into(),
            },
        }))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = paper_spec()?;
    let flat = analyze(&spec, &SystemConfig::new(AnalysisMode::Flat))?;
    let hier = analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical))?;

    println!("CAN frames (SPNP arbitration):");
    for (name, r) in hier.frames() {
        println!("  {name}: response {}", r.response);
    }
    println!();
    println!("CPU1 tasks (SPP):  flat R+  vs  HEM R+");
    for task in ["T1", "T2", "T3"] {
        let rf = flat.task(task).expect("analysed").response.r_plus;
        let rh = hier.task(task).expect("analysed").response.r_plus;
        let red = 100.0 * (rf - rh).ticks() as f64 / rf.ticks() as f64;
        println!("  {task}: {rf:>6}  vs  {rh:>6}   ({red:.1}% reduction)");
    }
    println!();
    println!(
        "Flat analysis activates every task on every frame arrival; the \
         hierarchical model unpacks per-signal streams after the bus, \
         removing that over-estimation (paper Table 3)."
    );
    Ok(())
}
