//! Assigning CAN identifiers with Audsley's optimal priority assignment:
//! given frames with transmission deadlines, find an ID order that meets
//! all of them — including a case where the deadline-monotonic heuristic
//! fails but OPA succeeds.
//!
//! Run with `cargo run --example priority_assignment`.

use hem_repro::analysis::assignment::{
    audsley, deadline_monotonic, order_is_feasible, DeadlineTask, Scheduling,
};
use hem_repro::analysis::AnalysisConfig;
use hem_repro::event_models::{EventModelExt, StandardEventModel};
use hem_repro::time::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = AnalysisConfig::default();

    // Three frames competing for the bus. "fast" has an arbitrary
    // deadline (longer than its period, so several instances queue) —
    // the configuration where deadline-monotonic ID assignment is known
    // to be non-optimal. Wire times in bit ticks: 50, 40 and 90.
    let mk =
        |name: &str, c: i64, p: i64, d: i64| -> Result<DeadlineTask, Box<dyn std::error::Error>> {
            Ok(DeadlineTask::new(
                name,
                Time::new(c),
                Time::new(c),
                Time::new(d),
                StandardEventModel::periodic(Time::new(p))?.shared(),
            ))
        };
    let frames = vec![
        mk("fast", 50, 130, 190)?, // D > P: instances queue
        mk("mid", 40, 200, 191)?,
        mk("slow", 90, 400, 193)?,
    ];

    println!("Frames (CAN, 1 tick per bit):");
    for f in &frames {
        println!(
            "  {:<10} wire [{}, {}]  deadline {}",
            f.name, f.bcet, f.wcet, f.deadline
        );
    }
    println!();

    let dm = deadline_monotonic(&frames);
    let dm_ok = order_is_feasible(&frames, &dm, Scheduling::NonPreemptive, &cfg)?;
    println!(
        "deadline-monotonic order: {:?} → {}",
        dm,
        if dm_ok { "feasible" } else { "INFEASIBLE" }
    );

    match audsley(&frames, Scheduling::NonPreemptive, &cfg)? {
        Some(order) => {
            let ok = order_is_feasible(&frames, &order, Scheduling::NonPreemptive, &cfg)?;
            println!(
                "Audsley (OPA) order:      {order:?} → {}",
                if ok { "feasible" } else { "bug!" }
            );
            println!();
            println!("Assign CAN IDs in that order (lowest ID = first entry).");
        }
        None => println!("no static ID assignment can meet these deadlines"),
    }
    Ok(())
}
