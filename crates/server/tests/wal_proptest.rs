//! Property tests for WAL recovery (ISSUE 6 satellite).
//!
//! The contract under test: for *any* byte-level damage to a log image
//! — truncation at an arbitrary offset, bit flips at arbitrary
//! positions, appended garbage, or combinations — recovery yields
//! either a **prefix** of the originally appended records or an
//! explicit [`WalError`], and never panics or invents records. This is
//! the exact corruption model of `kill -9` mid-write plus disk-level
//! bit rot, and it is what makes the "replay the log → identical
//! state" recovery story sound: a recovered log can be *shorter* than
//! what was acknowledged, never *different*.

use std::path::Path;
use std::sync::Arc;

use proptest::prelude::*;

use hem_server::checkpoint;
use hem_server::event::{LogEntry, SessionEvent};
use hem_server::session;
use hem_server::storage::{ChaosOptions, ChaosStorage};
use hem_server::wal::{encode_record, scan, Wal};
use hem_server::{RealStorage, Storage};

/// Deterministic helper RNG (same idiom as the system-level proptest
/// suites: the proptest case provides coarse randomness, this expands
/// it).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.0 = x;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A log of `n` realistic entry payloads (what sessions actually
/// append), plus some adversarially shaped ones: empty payloads and
/// payloads containing header-like byte runs.
fn payloads(rng: &mut Rng, n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| match rng.pick(4) {
            0 => Vec::new(),
            1 => {
                // Bytes that could be mistaken for a plausible header.
                let mut v = (7u32).to_le_bytes().to_vec();
                v.extend_from_slice(&(rng.next() as u32).to_le_bytes());
                v.extend_from_slice(b"payload");
                v
            }
            _ => LogEntry::new(
                i as u64,
                SessionEvent::SetTask {
                    task: format!("t{}", rng.pick(8)),
                    bcet: None,
                    wcet: Some(10 + rng.pick(1000) as i64),
                    priority: Some(rng.pick(16) as u32),
                },
            )
            .canonical_json()
            .into_bytes(),
        })
        .collect()
}

fn image(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for p in payloads {
        out.extend_from_slice(&encode_record(p).expect("bounded payload"));
    }
    out
}

fn is_prefix(recovered: &[Vec<u8>], original: &[Vec<u8>]) -> bool {
    recovered.len() <= original.len() && recovered.iter().zip(original).all(|(r, o)| r == o)
}

/// A contiguous entry log seq `0..=n` of decodable [`LogEntry`]s (what
/// checkpoints and WAL tails actually hold).
fn log_entries(rng: &mut Rng, n: u64) -> Vec<LogEntry> {
    (0..=n)
        .map(|seq| {
            LogEntry::new(
                seq,
                SessionEvent::SetTask {
                    task: format!("t{}", rng.pick(6)),
                    bcet: None,
                    wcet: Some(10 + rng.pick(500) as i64),
                    priority: Some(rng.pick(8) as u32),
                },
            )
        })
        .collect()
}

/// Which on-disk file the checkpoint-recovery proptest damages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Target {
    None,
    Wal,
    NewestCkpt,
    OlderCkpt,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation at *any* byte offset recovers a prefix.
    #[test]
    fn truncation_recovers_a_prefix(seed in 0u64..1 << 48, n in 0usize..12) {
        let mut rng = Rng(seed ^ 0x7A11);
        let originals = payloads(&mut rng, n);
        let img = image(&originals);
        let cut = (rng.pick(img.len() as u64 + 1)) as usize;
        let scanned = scan(&img[..cut]);
        prop_assert!(is_prefix(&scanned.records, &originals),
            "truncation at {cut} produced a non-prefix");
        // A cut strictly inside the image must flag corruption unless it
        // landed exactly on a record boundary.
        if cut == img.len() {
            prop_assert_eq!(scanned.corruption, None);
        }
        prop_assert!(scanned.valid_len <= cut as u64);
    }

    /// Bit flips anywhere yield a prefix — the flipped record (and its
    /// successors) are discarded, never silently altered.
    #[test]
    fn bit_flips_recover_a_prefix(seed in 0u64..1 << 48, n in 1usize..12, flips in 1usize..6) {
        let mut rng = Rng(seed ^ 0xB1F5);
        let originals = payloads(&mut rng, n);
        let mut img = image(&originals);
        prop_assume!(!img.is_empty());
        for _ in 0..flips {
            let byte = rng.pick(img.len() as u64) as usize;
            let bit = rng.pick(8) as u8;
            img[byte] ^= 1 << bit;
        }
        let scanned = scan(&img);
        // Every recovered record must be one of the originals, in
        // order, from the start: a strict prefix property. (A flip can
        // corrupt record k; nothing after k may survive, because scan
        // stops at the first damage.)
        prop_assert!(is_prefix(&scanned.records, &originals),
            "bit flips produced a non-prefix of the original log");
    }

    /// Arbitrary garbage appended after a valid log never destroys the
    /// valid records, and scanning arbitrary garbage alone never
    /// panics.
    #[test]
    fn appended_garbage_keeps_the_log(seed in 0u64..1 << 48, n in 0usize..8, garbage_len in 0usize..64) {
        let mut rng = Rng(seed ^ 0x6A5B);
        let originals = payloads(&mut rng, n);
        let mut img = image(&originals);
        let garbage: Vec<u8> = (0..garbage_len).map(|_| rng.next() as u8).collect();
        img.extend_from_slice(&garbage);
        let scanned = scan(&img);
        // Garbage may *accidentally* parse as further records (it is
        // random bytes), but the real records must all survive.
        prop_assert!(scanned.records.len() >= originals.len(),
            "appended garbage destroyed valid records");
        for (r, o) in scanned.records.iter().zip(&originals) {
            prop_assert_eq!(r, o);
        }
        // Pure garbage scans are total as well.
        let _ = scan(&garbage);
    }

    /// End-to-end through the filesystem: write, damage, reopen — the
    /// file recovers to a prefix and is immediately appendable again,
    /// and a second reopen sees the prefix plus the new record (the
    /// torn tail was truncated away, not resurrected).
    #[test]
    fn damaged_file_recovers_and_accepts_appends(seed in 0u64..1 << 48, n in 1usize..8) {
        let mut rng = Rng(seed ^ 0xF11E);
        let originals = payloads(&mut rng, n);
        let dir = std::env::temp_dir()
            .join(format!("hem-wal-prop-{}-{}", std::process::id(), seed & 0xffff_ffff));
        std::fs::create_dir_all(&dir).expect("mk tempdir");
        let path = dir.join("prop.wal");
        let _ = std::fs::remove_file(&path);
        let storage: Arc<dyn Storage> = Arc::new(RealStorage);
        {
            let mut rec = Wal::open(storage.clone(), &path).expect("fresh open");
            for p in &originals {
                rec.wal.append(p, false).expect("append");
            }
        }
        // Damage: truncate, flip a bit, or both.
        let mut img = std::fs::read(&path).expect("read image");
        if rng.pick(2) == 0 && !img.is_empty() {
            img.truncate(rng.pick(img.len() as u64 + 1) as usize);
        }
        if rng.pick(2) == 0 && !img.is_empty() {
            let byte = rng.pick(img.len() as u64) as usize;
            img[byte] ^= 1 << rng.pick(8);
        }
        std::fs::write(&path, &img).expect("write damage");

        let recovered = Wal::open(storage.clone(), &path).expect("recovery open");
        prop_assert!(is_prefix(&recovered.records, &originals));
        let before = recovered.records.clone();
        let mut wal = recovered.wal;
        wal.append(b"after-recovery", true).expect("append after recovery");
        drop(wal);

        let reread = Wal::open(storage.clone(), &path).expect("second open");
        prop_assert_eq!(reread.records.len(), before.len() + 1);
        prop_assert!(!reread.torn, "append after recovery left a torn file");
        prop_assert_eq!(reread.records.last().expect("appended"), &b"after-recovery".to_vec());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Checkpoint + WAL-tail recovery under damage (ISSUE 7 satellite):
    /// for arbitrary truncation or bit flips of *either* file — and
    /// across generation rollbacks — `recover_log` yields entries
    /// bit-identical to a prefix of the full-log replay, recovers the
    /// *complete* history whenever an undamaged candidate chain covers
    /// it, and refuses with an explicit error (never invented records)
    /// when none does.
    #[test]
    fn checkpoint_and_tail_recovery_matches_full_replay(seed in 0u64..1 << 48, n in 1u64..14) {
        let mut rng = Rng(seed ^ 0xC4E7);
        let full = log_entries(&mut rng, n); // seqs 0..=n
        let storage: Arc<dyn Storage> =
            Arc::new(ChaosStorage::new(ChaosOptions::quiet(seed)));
        let dir = Path::new("data");
        let name = "s";

        // Generation chain: gen 1 always exists; sometimes a newer
        // gen 2 covering at least as much (the rollback candidate).
        let b1 = rng.pick(n + 1);
        checkpoint::write(&storage, dir, name, 1, &full[..=b1 as usize]).expect("gen 1");
        let two_gens = rng.pick(2) == 0;
        let b2 = if two_gens { b1 + rng.pick(n - b1 + 1) } else { b1 };
        if two_gens {
            checkpoint::write(&storage, dir, name, 2, &full[..=b2 as usize]).expect("gen 2");
        }
        let newest_gen = if two_gens { 2 } else { 1 };
        let newest_base = b2;

        // WAL tail: starts anywhere that splices with the newest
        // generation (including a stale overlap all the way back to
        // seq 0), runs to the end of history.
        let s = rng.pick(newest_base + 2) as usize; // 0..=newest_base+1
        let wal_file = session::wal_path(dir, name);
        let mut wal_img = Vec::new();
        for entry in &full[s..] {
            wal_img.extend_from_slice(
                &encode_record(entry.canonical_json().as_bytes()).expect("bounded"),
            );
        }
        storage.write(&wal_file, &wal_img).expect("wal image");

        // Damage exactly one file (or none): truncate strictly inside
        // it, or flip one bit. Either guarantees a checkpoint file no
        // longer validates and a WAL recovers a (possibly shorter)
        // prefix.
        let mut target = match rng.pick(4) {
            0 => Target::None,
            1 => Target::Wal,
            _ if rng.pick(2) == 0 && two_gens => Target::OlderCkpt,
            _ => Target::NewestCkpt,
        };
        let damage_path = match target {
            Target::None => None,
            Target::Wal => Some(wal_file.clone()),
            Target::NewestCkpt => Some(checkpoint::generation_path(dir, name, newest_gen)),
            Target::OlderCkpt => Some(checkpoint::generation_path(dir, name, 1)),
        };
        if let Some(path) = damage_path {
            let mut bytes = storage.read(&path).expect("read target");
            if bytes.is_empty() {
                target = Target::None; // an empty WAL has nothing to damage
            } else {
                if rng.pick(2) == 0 {
                    bytes.truncate(rng.pick(bytes.len() as u64) as usize);
                } else {
                    let byte = rng.pick(bytes.len() as u64) as usize;
                    bytes[byte] ^= 1 << rng.pick(8);
                }
                storage.write(&path, &bytes).expect("write damage");
            }
        }

        let result = checkpoint::recover_log(&storage, dir, name);

        // Universal invariant first: whatever comes back is
        // bit-identical to a prefix of the full replay.
        if let Ok(rec) = &result {
            prop_assert!(rec.entries.len() <= full.len(), "recovery invented records");
            for (r, o) in rec.entries.iter().zip(&full) {
                prop_assert_eq!(r.canonical_json(), o.canonical_json());
                prop_assert_eq!(r.id, o.id);
            }
        }

        match target {
            Target::None => {
                // Undamaged: complete history through the newest gen.
                let rec = result.expect("undamaged state must recover");
                prop_assert_eq!(rec.entries.len(), full.len());
                prop_assert_eq!(rec.checkpoint, Some(newest_gen));
            }
            Target::Wal => {
                // The checkpoint bounds the loss: everything through
                // the newest base survives no matter what the WAL lost.
                let rec = result.expect("checkpoint must bound wal damage");
                prop_assert!(rec.entries.len() as u64 >= newest_base + 1,
                    "wal damage reached below the newest checkpoint base");
                prop_assert_eq!(rec.checkpoint, Some(newest_gen));
            }
            Target::NewestCkpt => {
                // Generation rollback: the damaged newest gen must be
                // rejected whole. Recovery succeeds iff the older gen
                // (or the WAL alone) still covers a contiguous history.
                let older_covers = two_gens && (s as u64) <= b1 + 1;
                if older_covers || s == 0 {
                    let rec = result.expect("rollback candidate must recover");
                    prop_assert_eq!(rec.entries.len(), full.len(),
                        "rollback chain covered the history but lost entries");
                    prop_assert_ne!(rec.checkpoint, Some(newest_gen));
                } else {
                    let err = result.expect_err("gapped history must refuse");
                    prop_assert_eq!(err.kind(), "corrupt_log");
                }
            }
            Target::OlderCkpt => {
                // The newest gen is intact and splices with the tail:
                // damage to a superseded generation is irrelevant.
                let rec = result.expect("newest generation must recover");
                prop_assert_eq!(rec.entries.len(), full.len());
                prop_assert_eq!(rec.checkpoint, Some(newest_gen));
            }
        }
    }
}
