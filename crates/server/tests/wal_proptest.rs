//! Property tests for WAL recovery (ISSUE 6 satellite).
//!
//! The contract under test: for *any* byte-level damage to a log image
//! — truncation at an arbitrary offset, bit flips at arbitrary
//! positions, appended garbage, or combinations — recovery yields
//! either a **prefix** of the originally appended records or an
//! explicit [`WalError`], and never panics or invents records. This is
//! the exact corruption model of `kill -9` mid-write plus disk-level
//! bit rot, and it is what makes the "replay the log → identical
//! state" recovery story sound: a recovered log can be *shorter* than
//! what was acknowledged, never *different*.

use proptest::prelude::*;

use hem_server::event::{LogEntry, SessionEvent};
use hem_server::wal::{encode_record, scan, Wal};

/// Deterministic helper RNG (same idiom as the system-level proptest
/// suites: the proptest case provides coarse randomness, this expands
/// it).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.0 = x;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A log of `n` realistic entry payloads (what sessions actually
/// append), plus some adversarially shaped ones: empty payloads and
/// payloads containing header-like byte runs.
fn payloads(rng: &mut Rng, n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| match rng.pick(4) {
            0 => Vec::new(),
            1 => {
                // Bytes that could be mistaken for a plausible header.
                let mut v = (7u32).to_le_bytes().to_vec();
                v.extend_from_slice(&(rng.next() as u32).to_le_bytes());
                v.extend_from_slice(b"payload");
                v
            }
            _ => LogEntry::new(
                i as u64,
                SessionEvent::SetTask {
                    task: format!("t{}", rng.pick(8)),
                    bcet: None,
                    wcet: Some(10 + rng.pick(1000) as i64),
                    priority: Some(rng.pick(16) as u32),
                },
            )
            .canonical_json()
            .into_bytes(),
        })
        .collect()
}

fn image(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for p in payloads {
        out.extend_from_slice(&encode_record(p).expect("bounded payload"));
    }
    out
}

fn is_prefix(recovered: &[Vec<u8>], original: &[Vec<u8>]) -> bool {
    recovered.len() <= original.len() && recovered.iter().zip(original).all(|(r, o)| r == o)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation at *any* byte offset recovers a prefix.
    #[test]
    fn truncation_recovers_a_prefix(seed in 0u64..1 << 48, n in 0usize..12) {
        let mut rng = Rng(seed ^ 0x7A11);
        let originals = payloads(&mut rng, n);
        let img = image(&originals);
        let cut = (rng.pick(img.len() as u64 + 1)) as usize;
        let scanned = scan(&img[..cut]);
        prop_assert!(is_prefix(&scanned.records, &originals),
            "truncation at {cut} produced a non-prefix");
        // A cut strictly inside the image must flag corruption unless it
        // landed exactly on a record boundary.
        if cut == img.len() {
            prop_assert_eq!(scanned.corruption, None);
        }
        prop_assert!(scanned.valid_len <= cut as u64);
    }

    /// Bit flips anywhere yield a prefix — the flipped record (and its
    /// successors) are discarded, never silently altered.
    #[test]
    fn bit_flips_recover_a_prefix(seed in 0u64..1 << 48, n in 1usize..12, flips in 1usize..6) {
        let mut rng = Rng(seed ^ 0xB1F5);
        let originals = payloads(&mut rng, n);
        let mut img = image(&originals);
        prop_assume!(!img.is_empty());
        for _ in 0..flips {
            let byte = rng.pick(img.len() as u64) as usize;
            let bit = rng.pick(8) as u8;
            img[byte] ^= 1 << bit;
        }
        let scanned = scan(&img);
        // Every recovered record must be one of the originals, in
        // order, from the start: a strict prefix property. (A flip can
        // corrupt record k; nothing after k may survive, because scan
        // stops at the first damage.)
        prop_assert!(is_prefix(&scanned.records, &originals),
            "bit flips produced a non-prefix of the original log");
    }

    /// Arbitrary garbage appended after a valid log never destroys the
    /// valid records, and scanning arbitrary garbage alone never
    /// panics.
    #[test]
    fn appended_garbage_keeps_the_log(seed in 0u64..1 << 48, n in 0usize..8, garbage_len in 0usize..64) {
        let mut rng = Rng(seed ^ 0x6A5B);
        let originals = payloads(&mut rng, n);
        let mut img = image(&originals);
        let garbage: Vec<u8> = (0..garbage_len).map(|_| rng.next() as u8).collect();
        img.extend_from_slice(&garbage);
        let scanned = scan(&img);
        // Garbage may *accidentally* parse as further records (it is
        // random bytes), but the real records must all survive.
        prop_assert!(scanned.records.len() >= originals.len(),
            "appended garbage destroyed valid records");
        for (r, o) in scanned.records.iter().zip(&originals) {
            prop_assert_eq!(r, o);
        }
        // Pure garbage scans are total as well.
        let _ = scan(&garbage);
    }

    /// End-to-end through the filesystem: write, damage, reopen — the
    /// file recovers to a prefix and is immediately appendable again,
    /// and a second reopen sees the prefix plus the new record (the
    /// torn tail was truncated away, not resurrected).
    #[test]
    fn damaged_file_recovers_and_accepts_appends(seed in 0u64..1 << 48, n in 1usize..8) {
        let mut rng = Rng(seed ^ 0xF11E);
        let originals = payloads(&mut rng, n);
        let dir = std::env::temp_dir()
            .join(format!("hem-wal-prop-{}-{}", std::process::id(), seed & 0xffff_ffff));
        std::fs::create_dir_all(&dir).expect("mk tempdir");
        let path = dir.join("prop.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut rec = Wal::open(&path).expect("fresh open");
            for p in &originals {
                rec.wal.append(p).expect("append");
            }
        }
        // Damage: truncate, flip a bit, or both.
        let mut img = std::fs::read(&path).expect("read image");
        if rng.pick(2) == 0 && !img.is_empty() {
            img.truncate(rng.pick(img.len() as u64 + 1) as usize);
        }
        if rng.pick(2) == 0 && !img.is_empty() {
            let byte = rng.pick(img.len() as u64) as usize;
            img[byte] ^= 1 << rng.pick(8);
        }
        std::fs::write(&path, &img).expect("write damage");

        let recovered = Wal::open(&path).expect("recovery open");
        prop_assert!(is_prefix(&recovered.records, &originals));
        let before = recovered.records.clone();
        let mut wal = recovered.wal;
        wal.append(b"after-recovery").expect("append after recovery");
        drop(wal);

        let reread = Wal::open(&path).expect("second open");
        prop_assert_eq!(reread.records.len(), before.len() + 1);
        prop_assert!(!reread.torn, "append after recovery left a torn file");
        prop_assert_eq!(reread.records.last().expect("appended"), &b"after-recovery".to_vec());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
