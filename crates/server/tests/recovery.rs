//! Crash-recovery bit-identity, in process.
//!
//! The serving layer's central promise: a session that crashes at any
//! point — torn WAL tail included — recovers to a materialized
//! analysis **byte-identical** to an uninterrupted session with the
//! same history. These tests exercise the promise without spawning
//! processes (the `server_smoke` binary and CI job do the real
//! `kill -9`); here the "crash" is dropping the core and damaging the
//! WAL on disk, which reaches the same recovery code.

use hem_obs::json::{self, JsonValue};
use hem_server::ServerCore;
use std::path::{Path, PathBuf};

const SCENARIO: &str = "\
cpu cpu0
cpu cpu1
bus can0 bit_time=1
bus can1 bit_time=1
frame F0 bus=can0 type=direct payload=4 prio=1
  signal s0 triggering periodic:500
frame F1 bus=can1 type=direct payload=4 prio=1
  signal s1 triggering periodic:700
task t0 cpu=cpu0 cet=30 prio=1 activation=F0/s0
task t1 cpu=cpu1 cet=40 prio=1 activation=F1/s1
";

fn mutations() -> Vec<&'static str> {
    vec![
        r#"{"type":"set_task","task":"t0","wcet":35}"#,
        r#"{"type":"set_source","frame":"F0","signal":"s0","period":450,"jitter":10}"#,
        r#"{"type":"set_bus","bus":"can0","bit_time":2}"#,
        r#"{"type":"set_task","task":"t1","wcet":45}"#,
        r#"{"type":"set_payload","frame":"F1","payload":6}"#,
        r#"{"type":"set_source","frame":"F1","signal":"s1","period":650,"jitter":0}"#,
    ]
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hem-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mk tempdir");
    dir
}

fn open_line(session: &str) -> String {
    let mut line = format!("{{\"op\":\"open\",\"session\":\"{session}\",\"scenario\":");
    json::write_escaped(&mut line, SCENARIO);
    line.push('}');
    line
}

fn ok(core: &ServerCore, line: &str) -> (String, JsonValue) {
    let response = core.handle_line(line);
    let value = json::parse(&response).expect("valid response JSON");
    assert!(
        matches!(value.get("ok"), Some(JsonValue::Bool(true))),
        "request {line} failed: {response}"
    );
    (response, value)
}

/// Drives a full uninterrupted session and returns the final `result`
/// response line.
fn uninterrupted_reference(dir: &Path) -> String {
    let core = ServerCore::new(dir, false).expect("core");
    ok(&core, &open_line("s"));
    for (i, event) in mutations().iter().enumerate() {
        ok(
            &core,
            &format!(
                r#"{{"op":"mutate","session":"s","seq":{},"event":{event}}}"#,
                i + 1
            ),
        );
    }
    ok(&core, r#"{"op":"analyze","session":"s"}"#);
    ok(&core, r#"{"op":"result","session":"s"}"#).0
}

#[test]
fn torn_wal_recovery_is_bit_identical_to_uninterrupted_run() {
    let ref_dir = tempdir("reference");
    let reference = uninterrupted_reference(&ref_dir);

    // Crash run: apply three mutations (analyzing along the way so a
    // warm snapshot exists), then "crash" and tear the WAL tail.
    let crash_dir = tempdir("crash");
    {
        let core = ServerCore::new(&crash_dir, false).expect("core");
        ok(&core, &open_line("s"));
        for (i, event) in mutations().iter().take(3).enumerate() {
            ok(
                &core,
                &format!(
                    r#"{{"op":"mutate","session":"s","seq":{},"event":{event}}}"#,
                    i + 1
                ),
            );
        }
        ok(&core, r#"{"op":"analyze","session":"s"}"#);
        // Core dropped here: the process "dies".
    }
    let wal = crash_dir.join("s.wal");
    let len = std::fs::metadata(&wal).expect("wal exists").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .expect("open wal");
    file.set_len(len - 2).expect("tear tail"); // torn write: seq 3's record is damaged
    drop(file);

    // Recovery run on the crashed directory.
    let core = ServerCore::new(&crash_dir, false).expect("core");
    let (_, opened) = ok(&core, &open_line("s"));
    assert!(matches!(
        opened.get("recovered"),
        Some(JsonValue::Bool(true))
    ));
    assert!(matches!(opened.get("torn"), Some(JsonValue::Bool(true))));
    // Only seqs 0..=2 survived the torn tail.
    assert_eq!(opened.get("seq").and_then(JsonValue::as_f64), Some(2.0));

    // Idempotent resend of the full history: survivors ack as
    // duplicates, the torn-off tail re-applies.
    let mut duplicates = 0;
    for (i, event) in mutations().iter().enumerate() {
        let (_, ack) = ok(
            &core,
            &format!(
                r#"{{"op":"mutate","session":"s","seq":{},"event":{event}}}"#,
                i + 1
            ),
        );
        if matches!(ack.get("duplicate"), Some(JsonValue::Bool(true))) {
            duplicates += 1;
        }
    }
    assert_eq!(
        duplicates, 2,
        "seqs 1-2 survived, 3 was torn, 4-6 were never written"
    );

    ok(&core, r#"{"op":"analyze","session":"s"}"#);
    let recovered = ok(&core, r#"{"op":"result","session":"s"}"#).0;
    assert_eq!(
        recovered, reference,
        "recovered materialized result must be byte-identical to the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

#[test]
fn clean_restart_recovers_without_resend() {
    let ref_dir = tempdir("clean-ref");
    let reference = uninterrupted_reference(&ref_dir);

    // Same history, clean shutdown (no torn tail), fresh core: the
    // session must come back purely from its WAL via open, with no
    // resends needed, and analyze to the identical result.
    let dir = tempdir("clean-restart");
    {
        let core = ServerCore::new(&dir, false).expect("core");
        ok(&core, &open_line("s"));
        for (i, event) in mutations().iter().enumerate() {
            ok(
                &core,
                &format!(
                    r#"{{"op":"mutate","session":"s","seq":{},"event":{event}}}"#,
                    i + 1
                ),
            );
        }
        // No analyze before the "restart": materialization is a cache,
        // not state.
    }
    let core = ServerCore::new(&dir, false).expect("core");
    let (_, opened) = ok(&core, &open_line("s"));
    assert!(matches!(
        opened.get("recovered"),
        Some(JsonValue::Bool(true))
    ));
    assert!(matches!(opened.get("torn"), Some(JsonValue::Bool(false))));
    assert_eq!(opened.get("seq").and_then(JsonValue::as_f64), Some(6.0));
    ok(&core, r#"{"op":"analyze","session":"s"}"#);
    let recovered = ok(&core, r#"{"op":"result","session":"s"}"#).0;
    assert_eq!(recovered, reference);

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
