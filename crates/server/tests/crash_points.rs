//! Full crash-point enumeration of the scripted chaos workload.
//!
//! Every storage operation index of the workload is a tested crash
//! point: the disk crashes there, power-cycles into its durable image
//! plus deterministic debris, and a fresh server must recover a valid
//! prefix, keep every acknowledged mutation, absorb a full resend
//! idempotently, and converge to the bit-identical reference result.
//! The CI `chaos` job runs the larger `standard()` script via the
//! `crash_enum` binary; this tier-1 test enumerates the `quick()`
//! script completely.

use hem_server::chaos::{enumerate_crash_points, reference_run, WorkloadSpec};

#[test]
fn every_crash_point_of_the_quick_workload_recovers() {
    let spec = WorkloadSpec::quick();
    let report = enumerate_crash_points(&spec, None).expect("all crash points must recover");
    assert_eq!(
        report.tested, report.total_ops,
        "enumeration covers every op"
    );
    assert!(
        report.total_ops > 50,
        "the quick workload must still exercise a substantial op space, got {}",
        report.total_ops
    );
    assert!(
        report.with_checkpoint > 0,
        "some crash points must recover through a durable checkpoint"
    );
    assert!(
        report.torn_recoveries > 0,
        "some crash points must exercise torn-tail truncation"
    );
    assert_eq!(
        report.max_recovered, spec.mutations,
        "late crash points recover the full history"
    );
    assert_eq!(
        report.min_recovered, 0,
        "early crash points recover an empty session"
    );
}

#[test]
fn reference_run_checkpoints_and_compacts() {
    // The workload must actually cross the checkpoint threshold —
    // otherwise the enumeration never lands inside the checkpoint
    // protocol and "passes" vacuously.
    let spec = WorkloadSpec::quick();
    let (_, total_ops) = reference_run(&spec).expect("reference");
    // open (read+list+append+sync) + mutations (append+sync each) +
    // analyses (no storage ops): anything beyond ~2 ops per mutation
    // is checkpoint traffic.
    assert!(
        total_ops > 2 * spec.mutations + 8,
        "expected checkpoint traffic beyond bare appends, got {total_ops} ops"
    );
}
