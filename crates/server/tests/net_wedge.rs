//! Transport regression test (ISSUE 7 satellite): a peer that sends
//! requests but never reads responses must not wedge a connection slot
//! forever.
//!
//! Without a write deadline, the server's response `write` blocks once
//! both socket buffers fill, pinning the connection thread — and with
//! it a `max_connections` slot — for as long as the malicious peer
//! keeps the socket open. With the deadline, the blocked write times
//! out, the connection is dropped, and the slot is freed for the next
//! client.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hem_server::net::{serve, NetConfig};
use hem_server::{ServerCore, WorkQueue};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hem-net-wedge-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mk tempdir");
    dir
}

#[test]
fn non_reading_peer_frees_its_connection_slot() {
    let dir = tempdir("slot");
    let core = Arc::new(ServerCore::new(&dir, false).expect("core"));
    let queue = Arc::new(WorkQueue::new(core, 64, 2));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let config = NetConfig {
        max_connections: 1,
        write_timeout: Some(Duration::from_millis(500)),
    };
    std::thread::spawn(move || {
        let _ = serve(listener, queue, config);
    });

    // Wedge the single slot: flood requests and never read a byte of
    // the responses. The server answers each line; once its writes fill
    // both socket buffers they block, and the write deadline must kill
    // the connection. Our own sends eventually block too (the server
    // stops reading while its writer is stuck), so we write with a
    // client-side timeout and stop at the first error.
    let wedge = TcpStream::connect(addr).expect("connect wedge");
    wedge
        .set_write_timeout(Some(Duration::from_millis(500)))
        .expect("client write timeout");
    let mut wedge_writer = &wedge;
    let flood_guard = Instant::now();
    while flood_guard.elapsed() < Duration::from_secs(20) {
        if wedge_writer.write_all(b"{\"op\":\"stats\"}\n").is_err() {
            break;
        }
    }

    // Keep the wedge socket open (a real misbehaving peer would) and
    // require a fresh client to be served within a bounded time —
    // proof the deadline freed the slot rather than leaking it.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut served = false;
    while Instant::now() < deadline {
        if let Ok(probe) = TcpStream::connect(addr) {
            probe
                .set_read_timeout(Some(Duration::from_secs(2)))
                .expect("probe read timeout");
            let mut writer = &probe;
            if writer.write_all(b"{\"op\":\"stats\"}\n").is_ok() {
                let mut response = String::new();
                let mut reader = BufReader::new(&probe);
                if reader.read_line(&mut response).is_ok() && response.contains("\"ok\":true") {
                    served = true;
                    break;
                }
                // A shed line means the slot is still held; retry.
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    drop(wedge);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        served,
        "connection slot was never freed: the write deadline did not fire"
    );
}
