//! Tier-1: the flight-recorder dump and the trace export stay valid
//! and **byte-deterministic** under chaos — injected storage faults, a
//! mid-workload crash, power-cycle, and WAL recovery. Running the same
//! scripted workload twice (fresh chaos disk, same seed) must produce
//! bit-identical artifacts; nothing in either file may depend on
//! wall-clock time, thread scheduling, or `HEM_THREADS` (the CI matrix
//! runs this test under both legs and the bytes must agree).

use std::path::PathBuf;
use std::sync::Arc;

use hem_obs::json::{self, JsonValue};
use hem_server::chaos::{event_json, SCENARIO, SESSION};
use hem_server::{ChaosOptions, ChaosStorage, CoreOptions, ServerCore, Storage};

const DATA_DIR: &str = "chaos-data";
const TRACE_FILE: &str = "chaos-data/trace.json";
const SEED: u64 = 0xF11E;
const MUTATIONS: u64 = 16;
/// Storage-op index the disk is armed to crash at once the first half
/// of the workload is in — far enough in for checkpoints to exist.
const CRASH_AT_EXTRA_OPS: u64 = 12;

fn open_line() -> String {
    let mut line = format!("{{\"op\":\"open\",\"session\":\"{SESSION}\",\"scenario\":");
    json::write_escaped(&mut line, SCENARIO);
    line.push('}');
    line
}

fn mutate_line(i: u64) -> String {
    format!(
        "{{\"op\":\"mutate\",\"session\":\"{SESSION}\",\"seq\":{i},\"event\":{}}}",
        event_json(i)
    )
}

fn core_on(storage: &ChaosStorage) -> ServerCore {
    // The data-dir creation itself can hit an injected fault; retries
    // consume deterministic op indices, so the run stays reproducible.
    for _ in 0..8 {
        let storage: Arc<dyn Storage> = Arc::new(storage.clone());
        if let Ok(core) = ServerCore::with_options(
            CoreOptions::new(PathBuf::from(DATA_DIR))
                .storage(storage)
                .checkpoint_bytes(500)
                .test_ops(true)
                .trace_out(PathBuf::from(TRACE_FILE)),
        ) {
            return core;
        }
    }
    panic!("chaos disk refused the data dir eight times");
}

/// Reads a file off the chaos disk, retrying past injected faults
/// (each attempt consumes a deterministic op index).
fn read_retrying(storage: &Arc<dyn Storage>, path: &PathBuf, what: &str) -> String {
    for _ in 0..8 {
        if let Ok(bytes) = storage.read(path) {
            return String::from_utf8(bytes).expect("artifact is utf-8");
        }
    }
    panic!("chaos disk refused to read {what} eight times");
}

/// One full scripted run: faulty first life, armed crash, power-cycle,
/// recovering second life. Returns `(flight_dump, trace_json,
/// recovery_dump, recovered_seq)` — the recovery dump is the
/// `flight.jsonl` captured right after the recovering open, before
/// later requests overwrite it at shutdown.
fn scripted_run() -> (String, String, String, u64) {
    let disk = ChaosStorage::new(ChaosOptions {
        seed: SEED,
        crash_at_op: None,
        fault_every: 7,
    });

    // First life: open (retried past injected faults), a mutation
    // stream where some appends fail on the faulty disk, one isolated
    // panic, then a crash armed a few ops ahead.
    let first = core_on(&disk);
    for _ in 0..8 {
        if first.handle_line(&open_line()).starts_with("{\"ok\":true") {
            break;
        }
    }
    for i in 1..=MUTATIONS {
        let _ = first.handle_line(&mutate_line(i));
        if i % 4 == 0 {
            let _ = first.handle_line(&format!("{{\"op\":\"analyze\",\"session\":\"{SESSION}\"}}"));
        }
    }
    let _ = first.handle_line(&format!(
        "{{\"op\":\"debug_panic\",\"session\":\"{SESSION}\"}}"
    ));
    disk.set_crash_at_op(Some(disk.ops() + CRASH_AT_EXTRA_OPS));
    for i in 1..=MUTATIONS {
        let _ = first.handle_line(&mutate_line(i));
        if disk.crashed() {
            break;
        }
    }
    assert!(disk.crashed(), "the armed crash point was never reached");
    drop(first); // shutdown dump on a crashed disk: swallowed

    // Second life: recover on the power-cycled disk.
    disk.power_cycle();
    let second = core_on(&disk);
    let mut opened = second.handle_line(&open_line());
    for _ in 0..8 {
        if opened.starts_with("{\"ok\":true") {
            break;
        }
        // A transient injected fault — not the recovery under test.
        opened = second.handle_line(&open_line());
    }
    let parsed = json::parse(&opened).expect("open response parses");
    assert!(
        matches!(parsed.get("recovered"), Some(JsonValue::Bool(true))),
        "recovery expected after the crash, got {opened}"
    );
    let recovered_seq = parsed
        .get("seq")
        .and_then(JsonValue::as_f64)
        .map(|n| n as u64)
        .expect("open response carries a seq");
    let storage: Arc<dyn Storage> = Arc::new(disk.clone());
    let recovery_dump = read_retrying(
        &storage,
        &PathBuf::from(DATA_DIR).join(hem_server::FLIGHT_FILE),
        "the wal-recovery flight dump",
    );
    // Resend the tail and finish cleanly so the shutdown dump has a
    // rich ring behind it.
    for i in 1..=MUTATIONS {
        let _ = second.handle_line(&mutate_line(i));
    }
    let _ = second.handle_line(&format!("{{\"op\":\"analyze\",\"session\":\"{SESSION}\"}}"));
    let _ = second.handle_line(&format!("{{\"op\":\"result\",\"session\":\"{SESSION}\"}}"));
    drop(second); // shutdown dump

    let dump = read_retrying(
        &storage,
        &PathBuf::from(DATA_DIR).join(hem_server::FLIGHT_FILE),
        "the shutdown flight dump",
    );
    let trace = read_retrying(&storage, &PathBuf::from(TRACE_FILE), "the trace export");
    (dump, trace, recovery_dump, recovered_seq)
}

#[test]
fn chaos_flight_dump_and_trace_are_valid_and_byte_deterministic() {
    let (dump_a, trace_a, recovery_a, seq_a) = scripted_run();
    let (dump_b, trace_b, recovery_b, seq_b) = scripted_run();

    // Byte-identical across runs: nothing in either artifact may come
    // from a wall clock, an RNG, or scheduling.
    assert_eq!(dump_a, dump_b, "flight dump must be byte-deterministic");
    assert_eq!(trace_a, trace_b, "trace export must be byte-deterministic");
    assert_eq!(recovery_a, recovery_b);
    assert_eq!(seq_a, seq_b);

    // The dump is valid JSONL with the header first.
    json::validate_jsonl(&dump_a).expect("flight dump is valid JSONL");
    let mut lines = dump_a.lines();
    let header = lines.next().expect("dump has a header");
    assert!(header.starts_with("{\"type\":\"flight_header\",\"reason\":\"shutdown\""));

    // Every record is well-formed, spans are balanced (2 ticks per
    // span, so every request's tick count is even and at least 2), and
    // the chaos faults actually left failed requests behind.
    let mut outcomes = Vec::new();
    for line in lines {
        let record = json::parse(line).expect("record parses");
        let ticks = record
            .get("ticks")
            .and_then(JsonValue::as_f64)
            .expect("record has ticks") as u64;
        assert!(ticks >= 2 && ticks % 2 == 0, "unbalanced spans: {line}");
        outcomes.push(
            record
                .get("outcome")
                .and_then(JsonValue::as_str)
                .expect("record has an outcome")
                .to_string(),
        );
    }
    assert!(
        outcomes.iter().any(|o| o.starts_with("error:")),
        "chaos faults should leave failed requests in the ring"
    );
    assert!(outcomes.iter().any(|o| o == "ok_duplicate"));

    // The wal-recovery dump's last record is the recovering open, and
    // the seq it acknowledged is the recovered WAL tail.
    json::validate_jsonl(&recovery_a).expect("recovery dump is valid JSONL");
    assert!(recovery_a.starts_with("{\"type\":\"flight_header\",\"reason\":\"wal_recovery\""));
    let last = json::parse(recovery_a.lines().last().expect("records")).expect("parses");
    assert_eq!(last.get("op").and_then(JsonValue::as_str), Some("open"));
    assert_eq!(
        last.get("outcome").and_then(JsonValue::as_str),
        Some("ok_recovered")
    );
    assert_eq!(
        last.get("seq")
            .and_then(JsonValue::as_f64)
            .map(|n| n as u64),
        Some(seq_a)
    );

    // The trace is one valid Chrome-trace JSON document whose complete
    // slices all carry the deterministic tick timestamps.
    let trace = json::parse(&trace_a).expect("trace export is valid JSON");
    let Some(JsonValue::Array(events)) = trace.get("traceEvents") else {
        panic!("trace export lacks traceEvents");
    };
    assert!(!events.is_empty(), "trace export has no events");
    let mut roots = 0usize;
    for event in events {
        let Some(phase) = event.get("ph").and_then(JsonValue::as_str) else {
            panic!("trace event lacks a phase");
        };
        if phase == "X" {
            assert!(event.get("ts").is_some() && event.get("dur").is_some());
            if let Some(args) = event.get("args") {
                if args.get("trace_id").is_some() {
                    roots += 1;
                }
            }
        }
    }
    assert!(roots > 0, "no root request spans carrying trace ids");
}

#[test]
fn debug_dump_op_reports_the_live_ring() {
    let disk = ChaosStorage::new(ChaosOptions::quiet(SEED));
    let core = core_on(&disk);
    assert!(core.handle_line(&open_line()).starts_with("{\"ok\":true"));
    let _ = core.handle_line(&mutate_line(1));
    let response = core.handle_line("{\"op\":\"debug_dump\"}");
    let parsed = json::parse(&response).expect("debug_dump response parses");
    assert!(matches!(parsed.get("ok"), Some(JsonValue::Bool(true))));
    assert_eq!(
        parsed.get("recorded").and_then(JsonValue::as_f64),
        Some(2.0)
    );
    let Some(JsonValue::Array(records)) = parsed.get("records") else {
        panic!("debug_dump lacks records");
    };
    assert_eq!(records.len(), 2);
    assert_eq!(
        records[0].get("op").and_then(JsonValue::as_str),
        Some("open")
    );
}

#[test]
fn metrics_op_exposes_snapshot_and_prometheus_text() {
    let disk = ChaosStorage::new(ChaosOptions::quiet(SEED));
    let core = core_on(&disk);
    assert!(core.handle_line(&open_line()).starts_with("{\"ok\":true"));
    let _ = core.handle_line(&mutate_line(1));
    let response = core.handle_line("{\"op\":\"metrics\"}");
    let parsed = json::parse(&response).expect("metrics response parses");
    assert!(matches!(parsed.get("ok"), Some(JsonValue::Bool(true))));
    let snapshot = parsed.get("snapshot").expect("metrics carries a snapshot");
    let gauges = snapshot.get("gauges").expect("snapshot carries gauges");
    assert_eq!(
        gauges.get("sessions_live").and_then(JsonValue::as_f64),
        Some(1.0)
    );
    let exposition = parsed
        .get("exposition")
        .and_then(JsonValue::as_str)
        .expect("metrics carries a text exposition");
    assert!(exposition.contains("# TYPE sessions_live gauge"));
    assert!(exposition.contains("service_us"));
}
