//! In-process protocol tests: everything the wire serves, without the
//! wire.
//!
//! [`ServerCore::handle_line`] is the complete server logic; these
//! tests drive it directly so failures point at protocol/session code,
//! not sockets. The TCP path is exercised by the `server_smoke` binary
//! and the CI smoke job.

use hem_obs::json::{self, JsonValue};
use hem_server::{ServerCore, WorkQueue};
use std::path::PathBuf;
use std::sync::Arc;

const SCENARIO: &str = "\
cpu cpu0
cpu cpu1
bus can0 bit_time=1
bus can1 bit_time=1
frame F0 bus=can0 type=direct payload=4 prio=1
  signal s0 triggering periodic:500
frame F1 bus=can1 type=direct payload=4 prio=1
  signal s1 triggering periodic:700
task t0 cpu=cpu0 cet=30 prio=1 activation=F0/s0
task t1 cpu=cpu1 cet=40 prio=1 activation=F1/s1
";

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hem-proto-{}-{}-{tag}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mk tempdir");
    dir
}

fn open_line(session: &str) -> String {
    let mut line = format!("{{\"op\":\"open\",\"session\":\"{session}\",\"scenario\":");
    json::write_escaped(&mut line, SCENARIO);
    line.push('}');
    line
}

fn get_bool(v: &JsonValue, key: &str) -> Option<bool> {
    match v.get(key) {
        Some(JsonValue::Bool(b)) => Some(*b),
        _ => None,
    }
}

fn ok(core: &ServerCore, line: &str) -> JsonValue {
    let response = core.handle_line(line);
    let value = json::parse(&response).expect("response is valid JSON");
    assert_eq!(
        get_bool(&value, "ok"),
        Some(true),
        "request {line} failed: {response}"
    );
    value
}

fn fail(core: &ServerCore, line: &str) -> (String, JsonValue) {
    let response = core.handle_line(line);
    let value = json::parse(&response).expect("response is valid JSON");
    assert_eq!(
        get_bool(&value, "ok"),
        Some(false),
        "expected failure: {response}"
    );
    let kind = value
        .get("error")
        .and_then(JsonValue::as_str)
        .expect("failures carry an error kind")
        .to_string();
    (kind, value)
}

#[test]
fn open_mutate_analyze_round_trip() {
    let dir = tempdir("round-trip");
    let core = ServerCore::new(&dir, false).expect("core");
    let opened = ok(&core, &open_line("s1"));
    assert_eq!(opened.get("seq").and_then(JsonValue::as_f64), Some(0.0));
    assert_eq!(get_bool(&opened, "recovered"), Some(false));

    let ack = ok(
        &core,
        r#"{"op":"mutate","session":"s1","event":{"type":"set_task","task":"t0","wcet":35}}"#,
    );
    assert_eq!(ack.get("seq").and_then(JsonValue::as_f64), Some(1.0));
    assert_eq!(get_bool(&ack, "duplicate"), Some(false));

    let analyzed = ok(&core, r#"{"op":"analyze","session":"s1"}"#);
    assert_eq!(get_bool(&analyzed, "stale"), Some(false));
    let result = analyzed.get("result").expect("result body");
    assert_eq!(get_bool(result, "complete"), Some(true));
    let t0 = result
        .get("tasks")
        .and_then(|t| t.get("t0"))
        .expect("t0 entry");
    assert_eq!(
        t0.get("status").and_then(JsonValue::as_str),
        Some("converged")
    );
    assert!(
        t0.get("r_plus")
            .and_then(JsonValue::as_f64)
            .expect("r_plus")
            >= 35.0
    );

    // `result` replays the materialized body without recomputing.
    let cached = ok(&core, r#"{"op":"result","session":"s1"}"#);
    assert_eq!(get_bool(&cached, "stale"), Some(false));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resends_are_idempotent_and_conflicts_are_rejected() {
    let dir = tempdir("idempotent");
    let core = ServerCore::new(&dir, false).expect("core");
    ok(&core, &open_line("s1"));

    let event = r#"{"type":"set_bus","bus":"can0","bit_time":2}"#;
    let first = ok(
        &core,
        &format!(r#"{{"op":"mutate","session":"s1","seq":1,"event":{event}}}"#),
    );
    let id = first
        .get("id")
        .and_then(JsonValue::as_str)
        .expect("id")
        .to_string();

    // Same (seq, event): acknowledged as a duplicate, same ID, no
    // double-apply.
    let resent = ok(
        &core,
        &format!(r#"{{"op":"mutate","session":"s1","seq":1,"event":{event}}}"#),
    );
    assert_eq!(get_bool(&resent, "duplicate"), Some(true));
    assert_eq!(
        resent.get("id").and_then(JsonValue::as_str),
        Some(id.as_str())
    );

    // Same seq, different content: a hard conflict.
    let (kind, _) = fail(
        &core,
        r#"{"op":"mutate","session":"s1","seq":1,"event":{"type":"set_bus","bus":"can0","bit_time":3}}"#,
    );
    assert_eq!(kind, "conflict");

    // Skipping ahead is a gap, not a silent hole.
    let (kind, _) = fail(
        &core,
        &format!(r#"{{"op":"mutate","session":"s1","seq":7,"event":{event}}}"#),
    );
    assert_eq!(kind, "gap");

    // Re-opening with the same scenario is idempotent...
    let reopened = ok(&core, &open_line("s1"));
    assert_eq!(reopened.get("seq").and_then(JsonValue::as_f64), Some(1.0));
    // ...but a different scenario is a conflict with the log.
    let (kind, _) = fail(
        &core,
        r#"{"op":"open","session":"s1","scenario":"cpu other\n"}"#,
    );
    assert_eq!(kind, "conflict");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_requests_get_stable_error_kinds() {
    let dir = tempdir("bad-requests");
    let core = ServerCore::new(&dir, false).expect("core");
    assert_eq!(fail(&core, "not json").0, "bad_request");
    assert_eq!(fail(&core, r#"{"no_op":1}"#).0, "bad_request");
    assert_eq!(fail(&core, r#"{"op":"launch_missiles"}"#).0, "bad_request");
    assert_eq!(fail(&core, r#"{"op":"mutate"}"#).0, "bad_request");
    assert_eq!(
        fail(&core, r#"{"op":"open","session":"../etc","scenario":""}"#).0,
        "bad_request"
    );
    assert_eq!(
        fail(&core, r#"{"op":"mutate","session":"ghost","event":{}}"#).0,
        "unknown_session"
    );
    assert_eq!(
        fail(&core, r#"{"op":"result","session":"ghost"}"#).0,
        "unknown_session"
    );

    ok(&core, &open_line("s1"));
    assert_eq!(
        fail(
            &core,
            r#"{"op":"mutate","session":"s1","event":{"type":"set_task","task":"nope","wcet":9}}"#
        )
        .0,
        "unknown_task"
    );
    assert_eq!(
        fail(
            &core,
            r#"{"op":"mutate","session":"s1","event":{"type":"set_task","task":"t0","wcet":-4}}"#
        )
        .0,
        "bad_value"
    );
    assert_eq!(
        fail(&core, r#"{"op":"result","session":"s1"}"#).0,
        "no_result"
    );
    assert_eq!(
        fail(&core, r#"{"op":"debug_panic","session":"s1"}"#).0,
        "bad_request",
        "debug ops must be rejected unless enabled"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_zero_serves_stale_materialized_result() {
    let dir = tempdir("stale");
    let core = ServerCore::new(&dir, false).expect("core");
    ok(&core, &open_line("s1"));
    let fresh = ok(&core, r#"{"op":"analyze","session":"s1"}"#);
    let fresh_body = fresh.get("result").expect("body").clone();

    ok(
        &core,
        r#"{"op":"mutate","session":"s1","event":{"type":"set_task","task":"t0","wcet":60}}"#,
    );
    // Zero deadline: recompute cannot finish; the previous materialized
    // result is served, marked stale, pointing at its log position.
    let stale = ok(&core, r#"{"op":"analyze","session":"s1","deadline_ms":0}"#);
    assert_eq!(get_bool(&stale, "stale"), Some(true));
    assert_eq!(
        stale.get("result_seq").and_then(JsonValue::as_f64),
        Some(0.0)
    );
    assert_eq!(stale.get("result"), Some(&fresh_body));

    // A generous deadline then catches up and the staleness clears.
    let caught_up = ok(&core, r#"{"op":"analyze","session":"s1"}"#);
    assert_eq!(get_bool(&caught_up, "stale"), Some(false));
    assert_ne!(caught_up.get("result"), Some(&fresh_body));

    let stats = ok(&core, r#"{"op":"stats"}"#);
    let stale_served = stats
        .get("counters")
        .and_then(|c| c.get("stale_served"))
        .and_then(JsonValue::as_f64);
    assert_eq!(stale_served, Some(1.0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panic_is_isolated_and_session_rebuilt_from_wal() {
    let dir = tempdir("quarantine");
    let core = ServerCore::new(&dir, true).expect("core with test ops");
    ok(&core, &open_line("s1"));
    ok(
        &core,
        r#"{"op":"mutate","session":"s1","event":{"type":"set_task","task":"t0","wcet":35}}"#,
    );
    let before = ok(&core, r#"{"op":"analyze","session":"s1"}"#);

    // Injected panic while holding the session lock: the worst case.
    let (kind, body) = fail(&core, r#"{"op":"debug_panic","session":"s1"}"#);
    assert_eq!(kind, "panic");
    assert_eq!(get_bool(&body, "recovered"), Some(true));
    assert_eq!(core.panics_isolated(), 1);

    // The rebuilt session still knows its full log and analyzes to the
    // exact same result.
    let after = ok(&core, r#"{"op":"analyze","session":"s1"}"#);
    assert_eq!(after.get("result"), before.get("result"));
    assert_eq!(after.get("seq"), before.get("seq"));

    let stats = ok(&core, r#"{"op":"stats"}"#);
    let recoveries = stats
        .get("counters")
        .and_then(|c| c.get("wal_recoveries"))
        .and_then(JsonValue::as_f64);
    assert_eq!(recoveries, Some(1.0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_sheds_with_deterministic_retry_hints() {
    let dir = tempdir("shed");
    let core = Arc::new(ServerCore::new(&dir, false).expect("core"));
    let queue = WorkQueue::new(core.clone(), 4, 2);
    queue.pause(); // deterministic overload: nothing drains

    let mut accepted = Vec::new();
    let mut sheds = Vec::new();
    for _ in 0..10 {
        match queue.submit(r#"{"op":"ping"}"#.to_string()) {
            Ok(rx) => accepted.push(rx),
            Err(shed) => sheds.push(shed),
        }
    }
    assert_eq!(accepted.len(), 4, "exactly the queue capacity is accepted");
    assert_eq!(sheds.len(), 6, "the overflow is shed, not buffered");
    for shed in &sheds {
        assert!(
            (25..100).contains(&shed.retry_after_ms),
            "retry hint {} outside the jitter window",
            shed.retry_after_ms
        );
        let parsed = json::parse(&shed.response()).expect("shed response is JSON");
        assert_eq!(get_bool(&parsed, "shed"), Some(true));
    }
    // Jitter is deterministic: a fresh identical queue sheds with the
    // same hint sequence.
    let queue2 = WorkQueue::new(core.clone(), 4, 2);
    queue2.pause();
    let mut sheds2 = Vec::new();
    for _ in 0..10 {
        if let Err(shed) = queue2.submit(r#"{"op":"ping"}"#.to_string()) {
            sheds2.push(shed.retry_after_ms);
        }
    }
    assert_eq!(
        sheds.iter().map(|s| s.retry_after_ms).collect::<Vec<_>>(),
        sheds2
    );

    // Resume: every accepted request still completes.
    queue.resume();
    for rx in accepted {
        let response = rx.recv().expect("accepted request completes");
        assert!(response.contains("\"ok\":true"), "{response}");
    }
    let stats = ok(&core, r#"{"op":"stats"}"#);
    let shed_count = stats
        .get("counters")
        .and_then(|c| c.get("requests_shed"))
        .and_then(JsonValue::as_f64);
    assert_eq!(shed_count, Some(12.0), "6 sheds from each queue");
    let _ = std::fs::remove_dir_all(&dir);
}
