//! `crash_enum`: exhaustive crash-point enumeration from the CLI.
//!
//! ```text
//! crash_enum [--mutations N] [--analyze-every N] [--checkpoint-bytes N]
//!            [--seed N] [--from K] [--to K]
//! ```
//!
//! Runs the scripted chaos workload (see [`hem_server::chaos`]) once
//! fault-free to count its storage operations, then re-runs it once
//! per operation index, crashing the modeled disk at that exact op and
//! asserting the recovery invariants after restart. `--from`/`--to`
//! bound the enumerated index range (default: every op). Exits
//! non-zero on the first violated invariant, printing the `(seed, op)`
//! pair that reproduces it.

use std::process::ExitCode;

use hem_server::chaos::{enumerate_crash_points, WorkloadSpec};

struct Options {
    spec: WorkloadSpec,
    from: Option<u64>,
    to: Option<u64>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        spec: WorkloadSpec::standard(),
        from: None,
        to: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))
                .and_then(|v| v.parse::<u64>().map_err(|e| format!("{name}: {e}")))
        };
        match arg.as_str() {
            "--mutations" => opts.spec.mutations = value("--mutations")?,
            "--analyze-every" => opts.spec.analyze_every = value("--analyze-every")?.max(1),
            "--checkpoint-bytes" => opts.spec.checkpoint_bytes = value("--checkpoint-bytes")?,
            "--seed" => opts.spec.seed = value("--seed")?,
            "--from" => opts.from = Some(value("--from")?),
            "--to" => opts.to = Some(value("--to")?),
            "--help" | "-h" => {
                return Err("usage: crash_enum [--mutations N] [--analyze-every N] \
                     [--checkpoint-bytes N] [--seed N] [--from K] [--to K]"
                    .into())
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let range = match (opts.from, opts.to) {
        (None, None) => None,
        (from, to) => Some(from.unwrap_or(0)..to.unwrap_or(u64::MAX)),
    };
    let started = std::time::Instant::now();
    match enumerate_crash_points(&opts.spec, range) {
        Ok(report) => {
            println!(
                "crash_enum OK: {} of {} crash points verified in {:.2}s \
                 (with_checkpoint {}, torn {}, recovered seq {}..={})",
                report.tested,
                report.total_ops,
                started.elapsed().as_secs_f64(),
                report.with_checkpoint,
                report.torn_recoveries,
                report.min_recovered,
                report.max_recovered,
            );
            if report.tested == 0 {
                eprintln!("crash_enum: empty index range");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("crash_enum FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}
