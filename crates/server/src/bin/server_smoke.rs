//! End-to-end smoke test: kill -9 a live server mid-session, restart,
//! and prove the recovered session is bit-identical to an uninterrupted
//! one.
//!
//! The script (also run by the `server-smoke` CI job):
//!
//! 1. **Reference run** — start a server on a fresh data dir, open a
//!    session, apply six mutations, analyze, and capture the `result`
//!    response line.
//! 2. **Crash run** — start a second server on another fresh dir, open
//!    the same session, apply only the first three mutations, then
//!    `SIGKILL` the process and tear the WAL's tail (truncate
//!    mid-record, exactly what an interrupted `write(2)` leaves).
//! 3. **Recovery run** — restart on the crashed dir: the open must
//!    report a recovered, torn log. Resend *all six* mutations with
//!    their sequence numbers — the survivors acknowledge as idempotent
//!    duplicates, the lost tail re-applies. Analyze, capture `result`.
//! 4. The two `result` lines must be **byte-identical**, and the
//!    restarted server must report a WAL recovery in its stats.
//!
//! Exits 0 on success, 1 with a diagnostic on any deviation.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use hem_obs::json::{self, JsonValue};

const SCENARIO: &str = "\
cpu cpu0
cpu cpu1
bus can0 bit_time=1
bus can1 bit_time=1
frame F0 bus=can0 type=direct payload=4 prio=1
  signal s0 triggering periodic:500
frame F1 bus=can1 type=direct payload=4 prio=1
  signal s1 triggering periodic:700
task t0 cpu=cpu0 cet=30 prio=1 activation=F0/s0
task t1 cpu=cpu1 cet=40 prio=1 activation=F1/s1
";

/// The scripted mutations, in order; entry `i` is log seq `i + 1`.
fn mutations() -> Vec<String> {
    vec![
        r#"{"type":"set_task","task":"t0","bcet":null,"wcet":35,"priority":null}"#.into(),
        r#"{"type":"set_source","frame":"F0","signal":"s0","period":450,"jitter":10}"#.into(),
        r#"{"type":"set_bus","bus":"can0","bit_time":2}"#.into(),
        r#"{"type":"set_task","task":"t1","bcet":null,"wcet":45,"priority":null}"#.into(),
        r#"{"type":"set_payload","frame":"F1","payload":6}"#.into(),
        r#"{"type":"set_source","frame":"F1","signal":"s1","period":650,"jitter":0}"#.into(),
    ]
}

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn start(data_dir: &Path) -> Result<Self, String> {
        Server::start_with(data_dir, &[])
    }

    fn start_with(data_dir: &Path, extra_args: &[&str]) -> Result<Self, String> {
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let server_bin = exe
            .parent()
            .ok_or("no parent dir for current exe")?
            .join(format!("hem-server{}", std::env::consts::EXE_SUFFIX));
        if !server_bin.exists() {
            return Err(format!(
                "server binary not found at {} (build the hem-server package first)",
                server_bin.display()
            ));
        }
        let mut child = Command::new(&server_bin)
            .arg("--listen")
            .arg("127.0.0.1:0")
            .arg("--data-dir")
            .arg(data_dir)
            .arg("--workers")
            .arg("2")
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", server_bin.display()))?;
        let stdout = child.stdout.take().ok_or("no child stdout")?;
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .ok_or("server exited before announcing its address")?
            .map_err(|e| format!("read banner: {e}"))?;
        let addr = banner
            .strip_prefix("LISTENING ")
            .ok_or_else(|| format!("unexpected banner {banner:?}"))?
            .to_string();
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines.flatten() {});
        Ok(Server { child, addr })
    }

    fn connect(&self) -> Result<Conn, String> {
        let stream = TcpStream::connect(&self.addr).map_err(|e| format!("connect: {e}"))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
        Ok(Conn { stream, reader })
    }

    fn kill9(&mut self) -> Result<(), String> {
        // `Child::kill` is SIGKILL on unix: no atexit, no flush, no
        // goodbye — the crash we claim to survive.
        self.child.kill().map_err(|e| format!("kill: {e}"))?;
        self.child.wait().map_err(|e| format!("wait: {e}"))?;
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn rpc(&mut self, line: &str) -> Result<String, String> {
        writeln!(self.stream, "{line}").map_err(|e| format!("send: {e}"))?;
        self.stream.flush().map_err(|e| format!("flush: {e}"))?;
        let mut response = String::new();
        self.reader
            .read_line(&mut response)
            .map_err(|e| format!("recv: {e}"))?;
        if response.is_empty() {
            return Err("server hung up".into());
        }
        Ok(response.trim_end().to_string())
    }

    fn rpc_ok(&mut self, line: &str) -> Result<JsonValue, String> {
        let response = self.rpc(line)?;
        let value = json::parse(&response).map_err(|e| format!("response JSON: {e}"))?;
        if !matches!(value.get("ok"), Some(JsonValue::Bool(true))) {
            return Err(format!("request {line} failed: {response}"));
        }
        Ok(value)
    }
}

fn open_line(session: &str) -> String {
    let mut line = format!("{{\"op\":\"open\",\"session\":\"{session}\",\"scenario\":");
    json::write_escaped(&mut line, SCENARIO);
    line.push('}');
    line
}

fn mutate_line(session: &str, seq: usize, event: &str) -> String {
    format!("{{\"op\":\"mutate\",\"session\":\"{session}\",\"seq\":{seq},\"event\":{event}}}")
}

fn fresh_dir(tag: &str) -> Result<PathBuf, String> {
    let dir = std::env::temp_dir().join(format!("hem-smoke-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).map_err(|e| format!("clean {}: {e}", dir.display()))?;
    }
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    Ok(dir)
}

fn tear_wal_tail(data_dir: &Path, session: &str) -> Result<(), String> {
    let path = data_dir.join(format!("{session}.wal"));
    let len = std::fs::metadata(&path)
        .map_err(|e| format!("stat {}: {e}", path.display()))?
        .len();
    if len < 3 {
        return Err(format!(
            "wal at {} suspiciously short ({len}b)",
            path.display()
        ));
    }
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    // Chop two bytes off the last record: a torn write, not a clean
    // record-boundary truncation.
    file.set_len(len - 2)
        .map_err(|e| format!("truncate {}: {e}", path.display()))?;
    Ok(())
}

/// Checks the telemetry a SIGKILLed-then-recovered server left in its
/// data dir: a `wal_recovery` flight dump whose final record is the
/// recovering `open` at the recovered WAL tail seq, plus a valid
/// Chrome/Perfetto trace. With `HEM_SMOKE_ARTIFACTS` set, copies both
/// files there for CI upload.
fn verify_crash_telemetry(
    crash_dir: &Path,
    trace_path: &Path,
    recovered_seq: u64,
) -> Result<(), String> {
    let flight_path = crash_dir.join(hem_server::FLIGHT_FILE);
    let dump = std::fs::read_to_string(&flight_path)
        .map_err(|e| format!("read flight dump {}: {e}", flight_path.display()))?;
    let mut lines = dump.lines();
    let header_line = lines.next().ok_or("flight dump is empty")?;
    let header = json::parse(header_line).map_err(|e| format!("flight header JSON: {e}"))?;
    if header.get("reason").and_then(JsonValue::as_str) != Some("wal_recovery") {
        return Err(format!(
            "flight dump header is not a wal_recovery dump: {header_line}"
        ));
    }
    let records: Vec<JsonValue> = lines
        .map(|line| json::parse(line).map_err(|e| format!("flight record JSON: {e}")))
        .collect::<Result<_, _>>()?;
    let last = records.last().ok_or("flight dump has no records")?;
    let field = |name: &str| last.get(name).and_then(JsonValue::as_str).unwrap_or("");
    if field("op") != "open" || field("outcome") != "ok_recovered" {
        return Err(format!(
            "flight dump's last record is not the recovering open: {last:?}"
        ));
    }
    let last_seq = last.get("seq").and_then(JsonValue::as_f64).unwrap_or(-1.0) as i64;
    if last_seq != recovered_seq as i64 {
        return Err(format!(
            "flight dump's last record acked seq {last_seq}, recovered WAL tail is {recovered_seq}"
        ));
    }
    let trace_text = std::fs::read_to_string(trace_path)
        .map_err(|e| format!("read trace {}: {e}", trace_path.display()))?;
    let trace = json::parse(&trace_text).map_err(|e| format!("trace JSON: {e}"))?;
    let events = match trace.get("traceEvents") {
        Some(JsonValue::Array(events)) if !events.is_empty() => events,
        other => return Err(format!("trace has no traceEvents: {other:?}")),
    };
    println!(
        "OK: flight dump ends on the recovering open at seq {recovered_seq} ({} record(s)), trace holds {} event(s)",
        records.len(),
        events.len()
    );
    if let Ok(out_dir) = std::env::var("HEM_SMOKE_ARTIFACTS") {
        if !out_dir.is_empty() {
            let out_dir = PathBuf::from(out_dir);
            std::fs::create_dir_all(&out_dir)
                .map_err(|e| format!("mkdir {}: {e}", out_dir.display()))?;
            for (src, name) in [
                (&flight_path, "flight.jsonl"),
                (&trace_path.to_path_buf(), "trace.json"),
            ] {
                std::fs::copy(src, out_dir.join(name)).map_err(|e| {
                    format!("copy {} into {}: {e}", src.display(), out_dir.display())
                })?;
            }
            println!("telemetry artifacts copied to {}", out_dir.display());
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let session = "smoke";
    let events = mutations();

    // 1. Reference: uninterrupted session, all six mutations.
    let ref_dir = fresh_dir("ref")?;
    let reference = {
        let server = Server::start(&ref_dir)?;
        let mut conn = server.connect()?;
        conn.rpc_ok(&open_line(session))?;
        for (i, event) in events.iter().enumerate() {
            conn.rpc_ok(&mutate_line(session, i + 1, event))?;
        }
        conn.rpc_ok(&format!("{{\"op\":\"analyze\",\"session\":\"{session}\"}}"))?;
        conn.rpc(&format!("{{\"op\":\"result\",\"session\":\"{session}\"}}"))?
    };
    println!("reference result captured ({} bytes)", reference.len());

    // 2. Crash run: three mutations, then SIGKILL + a torn WAL tail.
    let crash_dir = fresh_dir("crash")?;
    {
        let mut server = Server::start(&crash_dir)?;
        let mut conn = server.connect()?;
        conn.rpc_ok(&open_line(session))?;
        for (i, event) in events.iter().take(3).enumerate() {
            conn.rpc_ok(&mutate_line(session, i + 1, event))?;
        }
        server.kill9()?;
    }
    tear_wal_tail(&crash_dir, session)?;
    println!("server killed mid-session, wal tail torn");

    // 3. Recovery: restart on the crashed dir (with request tracing
    //    on), resend everything. The recovery open makes the server
    //    dump its flight recorder and trace to the data dir — and this
    //    server too dies by SIGKILL (the `Drop` kill), so those files
    //    are exactly what a post-mortem of the crashed box would find.
    let trace_path = crash_dir.join("trace.json");
    let trace_arg = trace_path.display().to_string();
    let (recovered, recovered_seq) = {
        let server = Server::start_with(&crash_dir, &["--trace-out", &trace_arg])?;
        let mut conn = server.connect()?;
        let open = conn.rpc_ok(&open_line(session))?;
        if !matches!(open.get("recovered"), Some(JsonValue::Bool(true))) {
            return Err(format!("open after crash did not recover: {open:?}"));
        }
        if !matches!(open.get("torn"), Some(JsonValue::Bool(true))) {
            return Err(format!(
                "open after crash did not report a torn tail: {open:?}"
            ));
        }
        let recovered_seq = open
            .get("seq")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("recovery open carries no seq: {open:?}"))?
            as u64;
        let mut duplicates = 0;
        for (i, event) in events.iter().enumerate() {
            let ack = conn.rpc_ok(&mutate_line(session, i + 1, event))?;
            if matches!(ack.get("duplicate"), Some(JsonValue::Bool(true))) {
                duplicates += 1;
            }
        }
        // Seqs 1-2 survived (seq 3's record was the torn one).
        if duplicates != 2 {
            return Err(format!(
                "expected 2 idempotent duplicates, saw {duplicates}"
            ));
        }
        conn.rpc_ok(&format!("{{\"op\":\"analyze\",\"session\":\"{session}\"}}"))?;
        let stats = conn.rpc_ok("{\"op\":\"stats\"}")?;
        let recoveries = stats
            .get("counters")
            .and_then(|c| c.get("wal_recoveries"))
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        if recoveries < 1.0 {
            return Err(format!("stats report no wal recovery: {stats:?}"));
        }
        let result = conn.rpc(&format!("{{\"op\":\"result\",\"session\":\"{session}\"}}"))?;
        (result, recovered_seq)
    };
    println!("recovered result captured ({} bytes)", recovered.len());

    // 4. Bit-for-bit identity.
    if reference != recovered {
        return Err(format!(
            "recovered result differs from reference\n  reference: {reference}\n  recovered: {recovered}"
        ));
    }
    println!("OK: recovered result is byte-identical to the uninterrupted run");

    // 4b. Post-mortem telemetry: the WAL-recovery flight dump's last
    //     record must be the recovering open, acknowledging exactly
    //     the seq the recovered WAL tail reached, and the trace must
    //     be a loadable Chrome/Perfetto JSON document.
    verify_crash_telemetry(&crash_dir, &trace_path, recovered_seq)?;

    // 5. Checkpoint leg: a tiny threshold forces checkpoint+compaction
    //    during the same six mutations. The session must end with a
    //    smaller WAL than the checkpoint-free reference run, the same
    //    result line, and — after a SIGKILL and restart — recover
    //    byte-identically from checkpoint + WAL tail, acking every
    //    resend as an idempotent duplicate.
    let ckpt_dir = fresh_dir("ckpt")?;
    let ckpt_args: &[&str] = &["--checkpoint-bytes", "512"];
    let wal_len = |dir: &Path| -> Result<u64, String> {
        let path = dir.join(format!("{session}.wal"));
        Ok(std::fs::metadata(&path)
            .map_err(|e| format!("stat {}: {e}", path.display()))?
            .len())
    };
    {
        let mut server = Server::start_with(&ckpt_dir, ckpt_args)?;
        let mut conn = server.connect()?;
        conn.rpc_ok(&open_line(session))?;
        for (i, event) in events.iter().enumerate() {
            conn.rpc_ok(&mutate_line(session, i + 1, event))?;
        }
        conn.rpc_ok(&format!("{{\"op\":\"analyze\",\"session\":\"{session}\"}}"))?;
        let result = conn.rpc(&format!("{{\"op\":\"result\",\"session\":\"{session}\"}}"))?;
        if result != reference {
            return Err(format!(
                "checkpointed result differs from reference\n  reference: {reference}\n  checkpointed: {result}"
            ));
        }
        let stats = conn.rpc_ok("{\"op\":\"stats\"}")?;
        let counter = |name: &str| {
            stats
                .get("counters")
                .and_then(|c| c.get(name))
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0)
        };
        if counter("checkpoints") < 1.0 {
            return Err(format!("stats report no checkpoints: {stats:?}"));
        }
        if counter("compacted_bytes") <= 0.0 {
            return Err(format!("stats report no compacted bytes: {stats:?}"));
        }
        let compacted = wal_len(&ckpt_dir)?;
        let uncompacted = wal_len(&ref_dir)?;
        if compacted >= uncompacted {
            return Err(format!(
                "compaction did not shrink the wal: {compacted}b vs reference {uncompacted}b"
            ));
        }
        println!(
            "checkpoint leg: result identical, wal compacted to {compacted}b (reference {uncompacted}b)"
        );
        server.kill9()?;
    }

    // 6. Restart on the checkpointed dir: recovery must splice the
    //    newest checkpoint with the WAL tail and land on the same
    //    result, with every resend a duplicate (nothing was lost).
    {
        let server = Server::start_with(&ckpt_dir, ckpt_args)?;
        let mut conn = server.connect()?;
        let open = conn.rpc_ok(&open_line(session))?;
        if !matches!(open.get("recovered"), Some(JsonValue::Bool(true))) {
            return Err(format!(
                "open after checkpointed kill did not recover: {open:?}"
            ));
        }
        let mut duplicates = 0;
        for (i, event) in events.iter().enumerate() {
            let ack = conn.rpc_ok(&mutate_line(session, i + 1, event))?;
            if matches!(ack.get("duplicate"), Some(JsonValue::Bool(true))) {
                duplicates += 1;
            }
        }
        if duplicates != events.len() {
            return Err(format!(
                "expected every resend to be a duplicate after a clean kill, saw {duplicates} of {}",
                events.len()
            ));
        }
        conn.rpc_ok(&format!("{{\"op\":\"analyze\",\"session\":\"{session}\"}}"))?;
        let result = conn.rpc(&format!("{{\"op\":\"result\",\"session\":\"{session}\"}}"))?;
        if result != reference {
            return Err(format!(
                "checkpoint recovery differs from reference\n  reference: {reference}\n  recovered: {result}"
            ));
        }
        println!("OK: checkpointed session recovered byte-identically after kill -9");
    }

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    Ok(())
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("server_smoke FAILED: {msg}");
            std::process::ExitCode::FAILURE
        }
    }
}
