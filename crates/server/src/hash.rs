//! Content hashing for event IDs and WAL record checksums.
//!
//! Both hashes are chosen for their spec-stability, not speed: event IDs
//! must be reproducible by any client (idempotent replay keys on them)
//! and WAL checksums must be reproducible across versions (recovery
//! reads logs written by older builds). FNV-1a and CRC-32 (IEEE) are
//! fixed, dependency-free, and boringly portable.

/// 64-bit FNV-1a over a byte string.
///
/// Used for deterministic content-hash event IDs: the same
/// `(seq, canonical event JSON)` pair always hashes to the same ID, on
/// any machine, which is what makes log replays idempotent.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over a byte
/// string — the per-record checksum of the write-ahead log.
///
/// Catches every single-bit flip and all torn tails that are not an
/// exact record-boundary truncation, which is exactly the corruption
/// model of a `kill -9` mid-`write(2)`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Formats an event ID as the fixed-width lower-hex string used on the
/// wire.
///
/// IDs travel as strings, never JSON numbers: the protocol's JSON
/// numbers are `f64` and a 64-bit hash would silently lose precision
/// above 2^53.
#[must_use]
pub fn id_hex(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses an event ID formatted by [`id_hex`].
#[must_use]
pub fn parse_id_hex(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Reference values from the FNV specification.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn crc32_catches_single_bit_flips() {
        let payload = b"{\"seq\":3,\"event\":{\"type\":\"set_task\"}}";
        let reference = crc32(payload);
        let mut flipped = payload.to_vec();
        for byte in 0..flipped.len() {
            for bit in 0..8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    reference,
                    "flip at {byte}:{bit} undetected"
                );
                flipped[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn id_hex_round_trips() {
        for id in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_id_hex(&id_hex(id)), Some(id));
        }
        assert_eq!(parse_id_hex("xyz"), None);
        assert_eq!(parse_id_hex("00000000000000000"), None);
    }
}
