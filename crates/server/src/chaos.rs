//! Crash-point enumeration: the recovery contract, machine-checked at
//! *every* storage operation index.
//!
//! PR 6 proved crash recovery at a handful of hand-picked sites (a
//! torn tail here, a `kill -9` there). This module turns that sample
//! into an exhaustive property. A scripted session workload — open,
//! a deterministic stream of mutations, periodic analyses, checkpoints
//! firing as the WAL crosses its threshold — is first run fault-free
//! on a [`ChaosStorage`] to count its storage operations, then re-run
//! once per operation index `k`, each time with the disk armed to
//! crash at exactly op `k`. After each crash the disk is power-cycled
//! (durable images plus deterministic lazy-flush debris) and a fresh
//! server recovers the session. Four invariants are asserted at every
//! single index:
//!
//! 1. **valid prefix** — the recovered sequence never exceeds what the
//!    workload submitted (no invented records);
//! 2. **durability** — every mutation that was *acknowledged* before
//!    the crash is present after recovery (acks imply fsync);
//! 3. **idempotent resends** — replaying the full history produces
//!    `duplicate` acks for exactly the surviving prefix and re-applies
//!    exactly the lost suffix, with zero conflicts;
//! 4. **bit-identical convergence** — after the resend, the session's
//!    final result line equals the uninterrupted reference run's, byte
//!    for byte.
//!
//! The same scripted workload is reused by the `crash_enum` binary
//! (the CI `chaos` job) and the `crash_points` integration test.

use std::path::PathBuf;
use std::sync::Arc;

use hem_obs::json::{self, JsonValue};

use crate::core::{CoreOptions, ServerCore};
use crate::storage::{ChaosOptions, ChaosStorage, Storage};

/// The scripted workload's scenario: two CPUs, two buses, enough
/// coupling that mutations shift real response times.
pub const SCENARIO: &str = "\
cpu cpu0
cpu cpu1
bus can0 bit_time=1
bus can1 bit_time=1
frame F0 bus=can0 type=direct payload=4 prio=1
  signal s0 triggering periodic:500
frame F1 bus=can1 type=direct payload=4 prio=1
  signal s1 triggering periodic:700
task t0 cpu=cpu0 cet=30 prio=1 activation=F0/s0
task t1 cpu=cpu1 cet=40 prio=1 activation=F1/s1
";

/// The session name the scripted workload drives.
pub const SESSION: &str = "chaos";

/// Shape of the scripted workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Mutations appended (seqs `1..=mutations`).
    pub mutations: u64,
    /// An `analyze` request is issued after every Nth mutation.
    pub analyze_every: u64,
    /// Checkpoint threshold handed to the server — deliberately tiny so
    /// the workload crosses it many times and crash points land inside
    /// every step of the checkpoint protocol.
    pub checkpoint_bytes: u64,
    /// Seed of the chaos disk (debris choices derive from it).
    pub seed: u64,
}

impl WorkloadSpec {
    /// The CI-sized workload: a few hundred storage operations, every
    /// one of them a tested crash point.
    #[must_use]
    pub fn standard() -> Self {
        WorkloadSpec {
            mutations: 64,
            analyze_every: 8,
            checkpoint_bytes: 700,
            seed: 0xC0FFEE,
        }
    }

    /// A smaller workload for the tier-1 test suite — still a full
    /// enumeration, just of a shorter script.
    #[must_use]
    pub fn quick() -> Self {
        WorkloadSpec {
            mutations: 12,
            analyze_every: 4,
            checkpoint_bytes: 500,
            seed: 0x5EED,
        }
    }
}

/// The deterministic mutation event for 1-based index `i` — a cycle
/// over every event kind, with arguments that stay inside the
/// scenario's validity envelope.
#[must_use]
pub fn event_json(i: u64) -> String {
    match i % 5 {
        0 => format!(
            r#"{{"type":"set_task","task":"t0","wcet":{}}}"#,
            30 + (i % 13)
        ),
        1 => format!(
            r#"{{"type":"set_task","task":"t1","wcet":{}}}"#,
            40 + (i % 11)
        ),
        2 => format!(
            r#"{{"type":"set_source","frame":"F0","signal":"s0","period":{},"jitter":{}}}"#,
            450 + 10 * (i % 6),
            5 * (i % 3)
        ),
        3 => format!(
            r#"{{"type":"set_bus","bus":"can0","bit_time":{}}}"#,
            1 + (i % 2)
        ),
        _ => format!(
            r#"{{"type":"set_payload","frame":"F1","payload":{}}}"#,
            1 + (i % 8)
        ),
    }
}

fn open_line() -> String {
    let mut line = format!("{{\"op\":\"open\",\"session\":\"{SESSION}\",\"scenario\":");
    json::write_escaped(&mut line, SCENARIO);
    line.push('}');
    line
}

fn mutate_line(i: u64) -> String {
    format!(
        "{{\"op\":\"mutate\",\"session\":\"{SESSION}\",\"seq\":{i},\"event\":{}}}",
        event_json(i)
    )
}

/// Parses a response line; `Ok` carries the parsed JSON of an
/// `"ok":true` response, `Err` the stable error kind.
fn parse_response(line: &str) -> Result<JsonValue, String> {
    let value = json::parse(line).map_err(|e| format!("unparsable response {line:?}: {e}"))?;
    if matches!(value.get("ok"), Some(JsonValue::Bool(true))) {
        Ok(value)
    } else {
        Err(value
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown")
            .to_string())
    }
}

fn core_for(spec: &WorkloadSpec, storage: Arc<dyn Storage>) -> std::io::Result<ServerCore> {
    ServerCore::with_options(
        CoreOptions::new(PathBuf::from("chaos-data"))
            .storage(storage)
            .checkpoint_bytes(spec.checkpoint_bytes),
    )
}

/// What the scripted drive achieved before stopping.
#[derive(Debug)]
struct DriveOutcome {
    /// Highest mutation seq acknowledged (`0` = none; the open itself
    /// may not even have been acknowledged).
    acked: u64,
    /// The final `result` response line, when the drive ran to the end.
    result: Option<String>,
    /// The error that stopped the drive early, if any.
    stopped_by: Option<String>,
}

/// Runs the scripted workload against `core`, stopping at the first
/// failed request (the expected outcome when the disk crashes
/// mid-script).
fn drive(core: &ServerCore, spec: &WorkloadSpec) -> DriveOutcome {
    let mut outcome = DriveOutcome {
        acked: 0,
        result: None,
        stopped_by: None,
    };
    if let Err(kind) = parse_response(&core.handle_line(&open_line())) {
        outcome.stopped_by = Some(kind);
        return outcome;
    }
    for i in 1..=spec.mutations {
        match parse_response(&core.handle_line(&mutate_line(i))) {
            Ok(_) => outcome.acked = i,
            Err(kind) => {
                outcome.stopped_by = Some(kind);
                return outcome;
            }
        }
        if i % spec.analyze_every == 0 {
            if let Err(kind) = parse_response(
                &core.handle_line(&format!("{{\"op\":\"analyze\",\"session\":\"{SESSION}\"}}")),
            ) {
                outcome.stopped_by = Some(kind);
                return outcome;
            }
        }
    }
    match parse_response(
        &core.handle_line(&format!("{{\"op\":\"analyze\",\"session\":\"{SESSION}\"}}")),
    ) {
        Ok(_) => {}
        Err(kind) => {
            outcome.stopped_by = Some(kind);
            return outcome;
        }
    }
    outcome.result =
        Some(core.handle_line(&format!("{{\"op\":\"result\",\"session\":\"{SESSION}\"}}")));
    outcome
}

/// The fault-free reference: the workload's final result line plus the
/// total number of storage operations it performs — the crash-point
/// space.
///
/// # Errors
///
/// When the workload itself fails on a quiet disk (a harness bug, not
/// a chaos finding).
pub fn reference_run(spec: &WorkloadSpec) -> Result<(String, u64), String> {
    let disk = ChaosStorage::new(ChaosOptions::quiet(spec.seed));
    let storage: Arc<dyn Storage> = Arc::new(disk.clone());
    let core = core_for(spec, storage).map_err(|e| format!("core: {e}"))?;
    let outcome = drive(&core, spec);
    if let Some(kind) = outcome.stopped_by {
        return Err(format!("reference run stopped by {kind}"));
    }
    let result = outcome
        .result
        .ok_or_else(|| "reference run produced no result".to_string())?;
    parse_response(&result).map_err(|kind| format!("reference result errored: {kind}"))?;
    Ok((result, disk.ops()))
}

/// Aggregate of a full enumeration.
#[derive(Debug, Default)]
pub struct EnumerationReport {
    /// Storage ops in the fault-free workload (the crash-point space).
    pub total_ops: u64,
    /// Crash points actually tested (equals the requested range).
    pub tested: u64,
    /// Recoveries that restored through a durable checkpoint
    /// generation.
    pub with_checkpoint: u64,
    /// Recoveries where the reopened WAL had a torn tail.
    pub torn_recoveries: u64,
    /// Smallest recovered mutation seq across all crash points.
    pub min_recovered: u64,
    /// Largest recovered mutation seq across all crash points.
    pub max_recovered: u64,
}

/// Crashes the scripted workload at exactly storage op `k`, restarts,
/// and asserts the four recovery invariants. Returns
/// `(recovered_seq, had_checkpoint, torn)`.
///
/// # Errors
///
/// A violated invariant, described with enough context to replay
/// (`seed`, `k`).
pub fn verify_crash_point(
    spec: &WorkloadSpec,
    k: u64,
    reference: &str,
) -> Result<(u64, bool, bool), String> {
    let ctx = |msg: String| format!("crash at op {k} (seed {}): {msg}", spec.seed);
    let disk = ChaosStorage::new(ChaosOptions {
        seed: spec.seed,
        crash_at_op: Some(k),
        fault_every: 0,
    });
    let storage: Arc<dyn Storage> = Arc::new(disk.clone());
    let acked = match core_for(spec, storage.clone()) {
        Ok(core) => {
            let outcome = drive(&core, spec);
            if let Some(kind) = &outcome.stopped_by {
                // The only legitimate stop is the crashed disk
                // surfacing as a WAL error.
                if kind != "wal" {
                    return Err(ctx(format!("drive stopped by unexpected error {kind:?}")));
                }
            }
            outcome.acked
        }
        // Op 0 (the data-dir creation) can itself be the crash point.
        Err(_) => 0,
    };
    if !disk.crashed() {
        return Err(ctx("disk never crashed — op index out of range".into()));
    }
    disk.power_cycle();
    let had_checkpoint = storage
        .list(&PathBuf::from("chaos-data"))
        .ok()
        .is_some_and(|names| {
            names
                .iter()
                .any(|n| n.starts_with(&format!("{SESSION}.ckpt.")) && !n.ends_with(".tmp"))
        });
    let core = core_for(spec, storage).map_err(|e| ctx(format!("restart core: {e}")))?;
    let opened = parse_response(&core.handle_line(&open_line()))
        .map_err(|kind| ctx(format!("restart open failed: {kind}")))?;
    let recovered_seq = opened
        .get("seq")
        .and_then(JsonValue::as_f64)
        .filter(|n| n.fract() == 0.0 && *n >= 0.0)
        .map(|n| n as u64)
        .ok_or_else(|| ctx("restart open response lacks a seq".into()))?;
    let torn = matches!(opened.get("torn"), Some(JsonValue::Bool(true)));
    // Invariant 1: a valid prefix — never records the client did not
    // submit.
    if recovered_seq > spec.mutations {
        return Err(ctx(format!(
            "recovered seq {recovered_seq} exceeds the {} submitted",
            spec.mutations
        )));
    }
    // Invariant 2: acked-and-fsynced mutations are never lost.
    if recovered_seq < acked {
        return Err(ctx(format!(
            "durability violation: mutation {acked} was acknowledged but only \
             {recovered_seq} recovered"
        )));
    }
    // Invariant 3: the full resend is idempotent, duplicate-acking
    // exactly the surviving prefix — and never conflicting, which
    // would mean recovery invented or altered a record.
    for i in 1..=spec.mutations {
        let ack = parse_response(&core.handle_line(&mutate_line(i)))
            .map_err(|kind| ctx(format!("resend of seq {i} failed: {kind}")))?;
        let duplicate = matches!(ack.get("duplicate"), Some(JsonValue::Bool(true)));
        if duplicate != (i <= recovered_seq) {
            return Err(ctx(format!(
                "resend of seq {i} acked duplicate={duplicate} but {recovered_seq} recovered"
            )));
        }
    }
    // Invariant 4: the recovered session converges bit-identically.
    parse_response(&core.handle_line(&format!("{{\"op\":\"analyze\",\"session\":\"{SESSION}\"}}")))
        .map_err(|kind| ctx(format!("post-recovery analyze failed: {kind}")))?;
    let result = core.handle_line(&format!("{{\"op\":\"result\",\"session\":\"{SESSION}\"}}"));
    if result != reference {
        return Err(ctx(format!(
            "recovered result diverges from the reference\n  reference: {reference}\n  recovered: {result}"
        )));
    }
    Ok((recovered_seq, had_checkpoint, torn))
}

/// Enumerates crash points `range` (or every op when `None`) of the
/// scripted workload, verifying the recovery invariants at each.
///
/// # Errors
///
/// The first violated invariant, or a reference-run failure.
pub fn enumerate_crash_points(
    spec: &WorkloadSpec,
    range: Option<std::ops::Range<u64>>,
) -> Result<EnumerationReport, String> {
    let (reference, total_ops) = reference_run(spec)?;
    let range = match range {
        Some(r) => r.start.min(total_ops)..r.end.min(total_ops),
        None => 0..total_ops,
    };
    let mut report = EnumerationReport {
        total_ops,
        min_recovered: u64::MAX,
        ..EnumerationReport::default()
    };
    for k in range {
        let (recovered, had_checkpoint, torn) = verify_crash_point(spec, k, &reference)?;
        report.tested += 1;
        report.with_checkpoint += u64::from(had_checkpoint);
        report.torn_recoveries += u64::from(torn);
        report.min_recovered = report.min_recovered.min(recovered);
        report.max_recovered = report.max_recovered.max(recovered);
    }
    if report.tested == 0 {
        report.min_recovered = 0;
    }
    Ok(report)
}
