//! A bounded work queue with explicit load shedding.
//!
//! Requests queue behind a fixed-capacity buffer drained by a fixed
//! worker pool. A full buffer does not block and does not grow: the
//! submit fails *immediately* with a shed verdict carrying a
//! retry-after hint, and the caller turns that into an
//! `{"ok":false,"shed":true,...}` response. Backpressure is therefore
//! visible to clients instead of accumulating as unbounded memory and
//! latency inside the server — under overload the server stays up and
//! every accepted request still completes.
//!
//! The retry hints are jittered so a herd of shed clients does not
//! retry in lockstep, but *deterministically* jittered (a hash of the
//! shed ordinal, not a clock or RNG) so tests and benches see stable
//! values.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use hem_obs::{Counter, Gauge, RecorderHandle};

use crate::core::ServerCore;
use crate::hash::fnv1a64;

/// Base retry-after hint in milliseconds.
const RETRY_BASE_MS: u64 = 25;
/// Jitter spread added on top of the base.
const RETRY_SPREAD_MS: u64 = 75;

/// The verdict when a submit is refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed {
    /// Suggested client back-off in milliseconds.
    pub retry_after_ms: u64,
}

impl Shed {
    /// The response line for a shed request (no trailing newline).
    #[must_use]
    pub fn response(&self) -> String {
        format!(
            "{{\"ok\":false,\"shed\":true,\"error\":\"overloaded\",\"retry_after_ms\":{}}}",
            self.retry_after_ms
        )
    }
}

struct Pending {
    line: String,
    reply: mpsc::Sender<String>,
    enqueued: Instant,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Pending>,
    shutdown: bool,
}

struct QueueShared {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
    paused: AtomicBool,
    shed_ordinal: AtomicU64,
    core: Arc<ServerCore>,
}

/// The bounded queue plus its worker pool.
pub struct WorkQueue {
    shared: Arc<QueueShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkQueue")
            .field("capacity", &self.shared.capacity)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkQueue {
    /// Spawns `workers` threads draining a queue of at most `capacity`
    /// pending requests into `core`.
    #[must_use]
    pub fn new(core: Arc<ServerCore>, capacity: usize, workers: usize) -> Self {
        let shared = Arc::new(QueueShared {
            state: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            capacity: capacity.max(1),
            paused: AtomicBool::new(false),
            shed_ordinal: AtomicU64::new(0),
            core,
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("hem-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn server worker")
            })
            .collect();
        WorkQueue { shared, workers }
    }

    /// Submits one request line. Returns the channel the response will
    /// arrive on, or an immediate [`Shed`] verdict when the queue is
    /// full (the shed is already counted against
    /// [`Counter::RequestsShed`]).
    ///
    /// # Errors
    ///
    /// Sheds when the queue is at capacity.
    pub fn submit(&self, line: String) -> Result<mpsc::Receiver<String>, Shed> {
        let (reply, rx) = mpsc::channel();
        {
            let mut state = self.shared.state.lock().expect("queue state poisoned");
            if state.jobs.len() >= self.shared.capacity {
                drop(state);
                let ordinal = self.shared.shed_ordinal.fetch_add(1, Ordering::Relaxed);
                let jitter = fnv1a64(&ordinal.to_le_bytes()) % RETRY_SPREAD_MS;
                self.shared.core.metrics().add(Counter::RequestsShed, 1);
                return Err(Shed {
                    retry_after_ms: RETRY_BASE_MS + jitter,
                });
            }
            state.jobs.push_back(Pending {
                line,
                reply,
                enqueued: Instant::now(),
            });
            let depth = state.jobs.len() as u64;
            drop(state);
            self.shared
                .core
                .metrics()
                .set_gauge(Gauge::QueueDepth, depth);
        }
        self.shared.available.notify_one();
        Ok(rx)
    }

    /// The core's metrics handle (the transport layer counts accepted
    /// connections against it).
    #[must_use]
    pub fn metrics(&self) -> RecorderHandle {
        self.shared.core.metrics()
    }

    /// Stops workers from draining the queue (submissions still land
    /// until the buffer fills, then shed). A deterministic overload
    /// switch for tests and the bench — real overload needs no switch.
    pub fn pause(&self) {
        self.shared.paused.store(true, Ordering::SeqCst);
    }

    /// Resumes draining.
    pub fn resume(&self) {
        self.shared.paused.store(false, Ordering::SeqCst);
        self.shared.available.notify_all();
    }

    /// Current queue depth (pending, unstarted requests).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("queue state poisoned")
            .jobs
            .len()
    }
}

impl Drop for WorkQueue {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("queue state poisoned");
            state.shutdown = true;
        }
        self.shared.paused.store(false, Ordering::SeqCst);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &QueueShared) {
    loop {
        let (pending, depth) = {
            let mut state = shared.state.lock().expect("queue state poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if !shared.paused.load(Ordering::SeqCst) {
                    if let Some(job) = state.jobs.pop_front() {
                        break (job, state.jobs.len() as u64);
                    }
                }
                state = shared.available.wait(state).expect("queue state poisoned");
            }
        };
        shared.core.metrics().set_gauge(Gauge::QueueDepth, depth);
        let queue_wait = pending.enqueued.elapsed();
        // `handle_line_timed` never panics (it isolates request panics
        // itself), so the worker loop needs no second safety net.
        let response = shared
            .core
            .handle_line_timed(&pending.line, Some(queue_wait));
        // The client may have hung up; a dead receiver is fine.
        let _ = pending.reply.send(response);
    }
}
