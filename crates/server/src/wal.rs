//! Checksummed per-session write-ahead log with torn-write recovery.
//!
//! Every appended record is framed as
//!
//! ```text
//! [u32 LE payload length][u32 LE CRC-32 of payload][payload bytes]
//! ```
//!
//! Recovery scans the file front to back and accepts the longest prefix
//! of intact records. The first short header, impossible length, short
//! payload, or checksum mismatch ends the scan: everything before it is
//! the recovered log, everything from it on is a torn tail (the debris
//! of a crash mid-write) and is truncated away before the next append.
//! A scan never guesses — a record is either bit-exact or it and all
//! its successors are discarded — so recovery can only produce a prefix
//! of what was logged, never a reordered or silently altered history.
//!
//! The log is deliberately oblivious to what payloads *mean*; the
//! session layer stores canonical event JSON in it and replays the
//! recovered prefix through the same apply path as live mutations,
//! which is what makes recovered state bit-identical to an
//! uninterrupted run.
//!
//! All I/O goes through a [`Storage`] handle, never `std::fs` directly
//! — the same `Wal` runs over [`RealStorage`](crate::storage::RealStorage)
//! in production and over [`ChaosStorage`](crate::storage::ChaosStorage)
//! in the crash-point enumeration harness. Appends take an explicit
//! `sync` flag: a synced append does not return until the record is
//! `fsync`ed, which is what lets the server promise that an
//! acknowledged mutation survives a power cut. A failed append (torn
//! write, `ENOSPC`, dropped fsync) **rolls itself back** by truncating
//! to the pre-append length, so a client retry appends the record at
//! the same position instead of stacking a duplicate after debris; if
//! even the rollback fails the log is poisoned and refuses further
//! appends until reopened (the session quarantine path).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::hash::crc32;
use crate::storage::Storage;

/// Per-record header size: length + checksum.
const HEADER: usize = 8;

/// Sanity bound on a single record. Anything larger in a length field
/// is treated as corruption, not as a 4 GiB allocation request.
pub const MAX_RECORD: usize = 16 * 1024 * 1024;

/// An explicit WAL failure.
///
/// Torn tails are *not* errors — they are expected crash debris and are
/// reported via [`Recovered::torn`]. Errors are reserved for conditions
/// recovery cannot interpret: I/O failures and oversized appends.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io {
        /// The WAL file involved.
        path: PathBuf,
        /// The failing operation, e.g. `"open"` or `"append"`.
        op: &'static str,
        /// The OS error.
        source: std::io::Error,
    },
    /// An append exceeded [`MAX_RECORD`].
    RecordTooLarge {
        /// Size of the rejected payload.
        len: usize,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { path, op, source } => {
                write!(f, "wal {op} on {}: {source}", path.display())
            }
            WalError::RecordTooLarge { len } => {
                write!(
                    f,
                    "wal record of {len} bytes exceeds the {MAX_RECORD} byte bound"
                )
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            WalError::RecordTooLarge { .. } => None,
        }
    }
}

/// Why a scan stopped before the end of the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Fewer than 8 bytes remained — a header torn mid-write.
    TornHeader,
    /// The length field exceeds [`MAX_RECORD`] (or the remaining file),
    /// i.e. the header bytes themselves are damaged.
    BadLength,
    /// The payload was shorter than its header promised.
    TornPayload,
    /// The payload checksum did not match.
    ChecksumMismatch,
}

impl Corruption {
    /// A stable lower-snake name for logs and responses.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Corruption::TornHeader => "torn_header",
            Corruption::BadLength => "bad_length",
            Corruption::TornPayload => "torn_payload",
            Corruption::ChecksumMismatch => "checksum_mismatch",
        }
    }
}

/// The result of scanning a log image: the longest intact prefix.
#[derive(Debug)]
pub struct Scan {
    /// Payloads of the intact records, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the intact prefix (the truncation point).
    pub valid_len: u64,
    /// What ended the scan early, if anything.
    pub corruption: Option<Corruption>,
}

/// Scans a raw log image for the longest prefix of intact records.
///
/// Total: every possible byte string yields a `Scan`; corruption is
/// data, not an error, and can never panic.
#[must_use]
pub fn scan(bytes: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let corruption = loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break None;
        }
        if remaining < HEADER {
            break Some(Corruption::TornHeader);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD {
            break Some(Corruption::BadLength);
        }
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if remaining - HEADER < len {
            break Some(Corruption::TornPayload);
        }
        let payload = &bytes[pos + HEADER..pos + HEADER + len];
        if crc32(payload) != crc {
            break Some(Corruption::ChecksumMismatch);
        }
        records.push(payload.to_vec());
        pos += HEADER + len;
    };
    Scan {
        records,
        valid_len: pos as u64,
        corruption,
    }
}

/// Serializes one record exactly as [`Wal::append`] writes it.
///
/// # Errors
///
/// Rejects payloads over [`MAX_RECORD`].
pub fn encode_record(payload: &[u8]) -> Result<Vec<u8>, WalError> {
    if payload.len() > MAX_RECORD {
        return Err(WalError::RecordTooLarge { len: payload.len() });
    }
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// The outcome of opening a WAL file: the writer plus what survived.
#[derive(Debug)]
pub struct Recovered {
    /// The log, opened for appending past the intact prefix.
    pub wal: Wal,
    /// Payloads of the recovered records, in append order.
    pub records: Vec<Vec<u8>>,
    /// `true` when a torn tail was detected (and truncated away).
    pub torn: bool,
}

/// An append-only checksummed log file over a [`Storage`] handle.
#[derive(Debug)]
pub struct Wal {
    storage: Arc<dyn Storage>,
    path: PathBuf,
    /// Byte length of the intact record prefix currently in the file.
    len: u64,
    /// Set when a failed append could not be rolled back: the on-disk
    /// tail no longer matches `len`, so further appends are refused
    /// until the log is reopened (which re-scans and self-heals).
    poisoned: bool,
}

impl Wal {
    /// Opens the log at `path` (an absent file is an empty log),
    /// recovering the longest intact prefix and truncating any torn
    /// tail.
    ///
    /// # Errors
    ///
    /// Only on I/O failure — corruption is recovery, not an error.
    pub fn open(storage: Arc<dyn Storage>, path: &Path) -> Result<Recovered, WalError> {
        let io = |op: &'static str| {
            let path = path.to_path_buf();
            move |source: std::io::Error| WalError::Io { path, op, source }
        };
        let bytes = match storage.read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io("read")(e)),
        };
        let scanned = scan(&bytes);
        let torn = scanned.corruption.is_some();
        if torn {
            storage
                .truncate(path, scanned.valid_len)
                .map_err(io("truncate"))?;
        }
        Ok(Recovered {
            wal: Wal {
                storage,
                path: path.to_path_buf(),
                len: scanned.valid_len,
                poisoned: false,
            },
            records: scanned.records,
            torn,
        })
    }

    /// Appends one record; with `sync` it is `fsync`ed before this
    /// returns, making the record crash-durable — the mode the server
    /// uses before acknowledging a mutation.
    ///
    /// # Errors
    ///
    /// On I/O failure or an oversized payload. A failed append rolls
    /// the file back to its pre-append length so an immediate retry
    /// lands at the same position; if the rollback itself fails the
    /// log is poisoned and every later append errors until reopen.
    pub fn append(&mut self, payload: &[u8], sync: bool) -> Result<(), WalError> {
        let _span = crate::trace::span("wal_io");
        let path = self.path.clone();
        let io = move |op: &'static str, source: std::io::Error| WalError::Io { path, op, source };
        if self.poisoned {
            return Err(io(
                "append",
                std::io::Error::other(
                    "wal poisoned by an earlier failed rollback; reopen the session",
                ),
            ));
        }
        let framed = encode_record(payload)?;
        let pre = self.len;
        if let Err(source) = self.storage.append(&self.path, &framed) {
            self.rollback(pre);
            return Err(io("append", source));
        }
        if sync {
            if let Err(source) = self.storage.sync(&self.path) {
                self.rollback(pre);
                return Err(io("sync", source));
            }
        }
        self.len = pre + framed.len() as u64;
        Ok(())
    }

    /// Truncates a possibly-partial append back to `pre` bytes. On
    /// failure the in-memory/on-disk lengths can no longer be trusted
    /// to agree, so the log poisons itself.
    fn rollback(&mut self, pre: u64) {
        self.len = pre;
        if let Err(e) = self.storage.truncate(&self.path, pre) {
            // Nothing was ever written: a missing file *is* length 0.
            if !(pre == 0 && e.kind() == std::io::ErrorKind::NotFound) {
                self.poisoned = true;
            }
        }
    }

    /// Truncates the log to empty (the compaction step after a
    /// checkpoint) and syncs the truncation. Returns the bytes
    /// reclaimed.
    ///
    /// # Errors
    ///
    /// On I/O failure; the log stays usable (recovery tolerates a WAL
    /// whose truncation never happened — stale entries at or below the
    /// checkpoint base are filtered out).
    pub fn reset(&mut self) -> Result<u64, WalError> {
        let _span = crate::trace::span("wal_reset");
        let io = |op: &'static str| {
            let path = self.path.clone();
            move |source: std::io::Error| WalError::Io { path, op, source }
        };
        let reclaimed = self.len;
        self.storage
            .truncate(&self.path, 0)
            .map_err(io("truncate"))?;
        self.storage.sync(&self.path).map_err(io("sync"))?;
        self.len = 0;
        Ok(reclaimed)
    }

    /// Byte length of the intact record prefix currently in the file.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log currently holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The file this log appends to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            out.extend_from_slice(&encode_record(p).expect("bounded"));
        }
        out
    }

    #[test]
    fn scan_round_trips_clean_log() {
        let img = image(&[b"alpha", b"", b"gamma"]);
        let s = scan(&img);
        assert_eq!(
            s.records,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma".to_vec()]
        );
        assert_eq!(s.valid_len, img.len() as u64);
        assert_eq!(s.corruption, None);
    }

    #[test]
    fn scan_truncates_torn_tail_to_prefix() {
        let mut img = image(&[b"alpha", b"beta"]);
        let full = img.len();
        img.truncate(full - 2); // tear the last payload
        let s = scan(&img);
        assert_eq!(s.records, vec![b"alpha".to_vec()]);
        assert_eq!(s.corruption, Some(Corruption::TornPayload));
        assert_eq!(s.valid_len, image(&[b"alpha"]).len() as u64);
    }

    #[test]
    fn scan_rejects_bit_flip_via_checksum() {
        let mut img = image(&[b"alpha", b"beta"]);
        let off = image(&[b"alpha"]).len() + HEADER; // first byte of "beta"
        img[off] ^= 0x40;
        let s = scan(&img);
        assert_eq!(s.records, vec![b"alpha".to_vec()]);
        assert_eq!(s.corruption, Some(Corruption::ChecksumMismatch));
    }

    #[test]
    fn scan_treats_absurd_length_as_corruption() {
        let mut img = image(&[b"alpha"]);
        img.extend_from_slice(&u32::MAX.to_le_bytes());
        img.extend_from_slice(&[0u8; 12]);
        let s = scan(&img);
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.corruption, Some(Corruption::BadLength));
    }

    #[test]
    fn open_append_reopen_recovers_everything() {
        use crate::storage::RealStorage;
        let storage: std::sync::Arc<dyn Storage> = std::sync::Arc::new(RealStorage);
        let dir = std::env::temp_dir().join(format!("hem-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mk tempdir");
        let path = dir.join("basic.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut rec = Wal::open(storage.clone(), &path).expect("open fresh");
            assert!(rec.records.is_empty());
            assert!(!rec.torn);
            rec.wal.append(b"one", true).expect("append");
            rec.wal.append(b"two", true).expect("append");
        }
        // Simulate a crash mid-write: half a record of garbage.
        storage.append(&path, &[0x7f, 0x01, 0x02]).expect("tear");
        let rec = Wal::open(storage.clone(), &path).expect("recover");
        assert_eq!(rec.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(rec.torn);
        // The torn tail must be gone from disk after recovery.
        assert_eq!(
            std::fs::metadata(&path).expect("stat").len(),
            image(&[b"one", b"two"]).len() as u64
        );
        assert_eq!(rec.wal.len(), image(&[b"one", b"two"]).len() as u64);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_append_rolls_back_so_retries_do_not_stack_debris() {
        use crate::storage::{ChaosOptions, ChaosStorage};
        let disk = ChaosStorage::new(ChaosOptions::quiet(21));
        let storage: std::sync::Arc<dyn Storage> = std::sync::Arc::new(disk.clone());
        let path = std::path::Path::new("d/roll.wal");
        let mut rec = Wal::open(storage.clone(), path).expect("open");
        rec.wal.append(b"keep", true).expect("append");
        let pre = rec.wal.len();
        // Fault the next append op: a torn write must be rolled back.
        disk.set_crash_at_op(Some(disk.ops()));
        assert!(rec.wal.append(b"lost", true).is_err());
        disk.power_cycle();
        // The wal object is against a crashed-then-rebooted disk; a
        // reopen (the quarantine path) must see exactly the synced
        // prefix, with no debris from the failed append.
        let rec2 = Wal::open(storage, path).expect("reopen");
        assert_eq!(rec2.records, vec![b"keep".to_vec()]);
        assert_eq!(rec2.wal.len(), pre);
    }

    #[test]
    fn reset_compacts_to_empty() {
        use crate::storage::{ChaosOptions, ChaosStorage};
        let disk = ChaosStorage::new(ChaosOptions::quiet(2));
        let storage: std::sync::Arc<dyn Storage> = std::sync::Arc::new(disk);
        let path = std::path::Path::new("d/c.wal");
        let mut rec = Wal::open(storage.clone(), path).expect("open");
        rec.wal.append(b"a", true).expect("append");
        rec.wal.append(b"bb", true).expect("append");
        let reclaimed = rec.wal.reset().expect("reset");
        assert_eq!(reclaimed, (HEADER * 2 + 3) as u64);
        assert!(rec.wal.is_empty());
        let rec2 = Wal::open(storage, path).expect("reopen");
        assert!(rec2.records.is_empty());
    }
}
