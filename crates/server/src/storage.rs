//! The storage abstraction every durable byte goes through.
//!
//! All WAL and checkpoint I/O in `hem-server` flows through the
//! [`Storage`] trait — a deliberately small, path-based vocabulary of
//! whole operations (`read`, `append`, `write`, `sync`, `truncate`,
//! `rename`, `remove`, `list`, …). Two implementations exist:
//!
//! * [`RealStorage`] maps each operation 1:1 onto `std::fs`;
//! * [`ChaosStorage`] is a deterministic in-memory filesystem that
//!   injects the failure modes real disks exhibit — torn writes, short
//!   reads, dropped fsyncs, `ENOSPC`, and whole-machine crashes at an
//!   exact operation index — all derived from a seeded fnv stream, so
//!   every failure is reproducible from `(seed, op index)` alone.
//!
//! The chaos model is the classic two-image one: every file has a
//! *current* image (what reads observe now) and a *durable* image (what
//! survives a power cut). `sync` promotes current to durable; a crash
//! resets current to durable **plus a deterministic prefix of the
//! unsynced suffix** — the "lazy flush debris" that produces exactly
//! the torn tails WAL recovery must truncate. `rename` after a `sync`
//! is modeled atomic-and-durable, matching the rename-after-fsync
//! guarantee of journalled filesystems that the checkpoint procedure
//! relies on. Directory entries are modeled durable once the file is
//! synced; `sync_dir` participates in op counting and fault injection
//! but adds no extra persistence in the model.
//!
//! Because every operation is counted, "crash at op K" enumerates the
//! *complete* space of crash points for a workload: the harness in
//! [`chaos`](crate::chaos) runs the same scripted session once per
//! index and machine-checks the recovery contract at each one.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use hem_obs::{Counter, RecorderHandle};

use crate::hash::fnv1a64;

/// The filesystem vocabulary of the serving layer.
///
/// Every method is a *whole* operation: it either fully succeeds or
/// returns an error (real partial effects are modeled only by
/// [`ChaosStorage`], which is the point — the caller's contract is the
/// same either way, and recovery code must tolerate any prefix of an
/// operation having reached the disk before a crash).
pub trait Storage: Send + Sync + std::fmt::Debug {
    /// Reads the entire file. `NotFound` if it does not exist.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// The file's current length in bytes. `NotFound` if absent.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Appends `data` to the file, creating it if absent. Not durable
    /// until [`Storage::sync`].
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Creates or replaces the file with `data`. Not durable until
    /// [`Storage::sync`].
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Forces the file's current content to stable storage (`fsync`).
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Truncates the file to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Atomically renames `from` to `to` (replacing `to` if present).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file. `NotFound` if absent.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// File names (not paths) directly inside `dir`, sorted.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Creates `dir` and its ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Forces the directory entry table to stable storage — the step
    /// that makes a preceding `rename` durable on a real filesystem.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Offers the storage a metrics handle (used by [`ChaosStorage`] to
    /// count injected faults; a no-op for real storage).
    fn attach_recorder(&self, _recorder: RecorderHandle) {}
}

/// [`Storage`] over the real filesystem, 1:1 with `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealStorage;

impl Storage for RealStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut file = OpenOptions::new().append(true).create(true).open(path)?;
        file.write_all(data)?;
        file.flush()
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        OpenOptions::new().write(true).open(path)?.set_len(len)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
}

/// Configuration of the deterministic chaos model.
#[derive(Debug, Clone, Copy)]
pub struct ChaosOptions {
    /// Seed of the fnv stream every injected decision derives from.
    pub seed: u64,
    /// Crash the "machine" at exactly this operation index (0-based):
    /// the op applies a deterministic partial effect, then this and
    /// every later operation fails until [`ChaosStorage::power_cycle`].
    pub crash_at_op: Option<u64>,
    /// Inject a transient fault roughly every N operations (an op `k`
    /// faults when `fnv(seed, k)` lands in the 1-in-N residue). `0`
    /// disables transient faults.
    pub fault_every: u64,
}

impl ChaosOptions {
    /// A quiet model: no crashes, no transient faults — useful for
    /// counting the operations of a workload before enumerating it.
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        ChaosOptions {
            seed,
            crash_at_op: None,
            fault_every: 0,
        }
    }
}

/// What kind of operation an op index landed on (drives which fault is
/// injectable there).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Read,
    Write,
    Sync,
    Meta,
}

#[derive(Debug, Default)]
struct ChaosFs {
    /// What reads observe now.
    current: BTreeMap<PathBuf, Vec<u8>>,
    /// What survives a power cut.
    durable: BTreeMap<PathBuf, Vec<u8>>,
    dirs: BTreeSet<PathBuf>,
}

#[derive(Debug)]
struct ChaosInner {
    opts: ChaosOptions,
    fs: ChaosFs,
    ops: u64,
    injected: u64,
    crashed: bool,
    recorder: Option<RecorderHandle>,
}

/// A deterministic in-memory filesystem with seeded fault injection.
///
/// Cloning shares the underlying "disk": the enumeration harness keeps
/// one handle while handing another (as `Arc<dyn Storage>`) to the
/// server under test, so it can crash and power-cycle the disk from
/// outside.
#[derive(Debug, Clone)]
pub struct ChaosStorage {
    inner: Arc<Mutex<ChaosInner>>,
}

fn inject_err(kind: io::ErrorKind, what: &str, op: u64) -> io::Error {
    io::Error::new(kind, format!("injected {what} at storage op {op}"))
}

fn crashed_err() -> io::Error {
    io::Error::new(
        io::ErrorKind::BrokenPipe,
        "storage crashed; power_cycle before further I/O",
    )
}

impl ChaosStorage {
    /// Creates a chaos disk with the given fault plan.
    #[must_use]
    pub fn new(opts: ChaosOptions) -> Self {
        ChaosStorage {
            inner: Arc::new(Mutex::new(ChaosInner {
                opts,
                fs: ChaosFs::default(),
                ops: 0,
                injected: 0,
                crashed: false,
                recorder: None,
            })),
        }
    }

    /// Total storage operations observed so far (including faulted and
    /// crashed ones).
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Transient faults injected so far.
    #[must_use]
    pub fn injected_faults(&self) -> u64 {
        self.lock().injected
    }

    /// Whether the modeled machine is currently crashed.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Arms (or disarms) the crash point for subsequent operations.
    pub fn set_crash_at_op(&self, crash_at_op: Option<u64>) {
        self.lock().opts.crash_at_op = crash_at_op;
    }

    /// The durable image of a file — what a power cut would preserve.
    /// `None` if the file was never synced into existence.
    #[must_use]
    pub fn durable_image(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().fs.durable.get(path).cloned()
    }

    /// Sum of current file sizes — the disk footprint a `du` would see.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.lock()
            .fs
            .current
            .values()
            .map(|v| v.len() as u64)
            .sum()
    }

    /// Models a power cut and reboot: every file falls back to its
    /// durable image **plus a deterministic prefix of the unsynced
    /// suffix** (lazy-flush debris — the source of torn WAL tails).
    /// Clears the crashed flag; the consumed crash point stays
    /// disarmed so the restarted run proceeds fault-free unless
    /// re-armed.
    pub fn power_cycle(&self) {
        let mut inner = self.lock();
        let seed = inner.opts.seed;
        let op = inner.ops;
        let mut rebooted: BTreeMap<PathBuf, Vec<u8>> = BTreeMap::new();
        for (path, current) in &inner.fs.current {
            let base = inner.fs.durable.get(path).cloned().unwrap_or_default();
            let image = if current.len() > base.len() && current.starts_with(&base) {
                // Unsynced append suffix: a prefix of it may have been
                // lazily flushed before the cut.
                let extra = &current[base.len()..];
                let debris = (chaos_hash(seed, op, &format!("debris:{}", path.display())) as usize)
                    % (extra.len() + 1);
                let mut image = base;
                image.extend_from_slice(&extra[..debris]);
                image
            } else {
                // Rewritten or truncated without a sync: the durable
                // image wins (truncates "resurrect" until synced).
                base
            };
            rebooted.insert(path.clone(), image);
        }
        // Files that exist only durably (current entry lost to an
        // unsynced remove cannot happen — removes hit both images — but
        // keep the durable side authoritative regardless).
        for (path, bytes) in &inner.fs.durable {
            rebooted
                .entry(path.clone())
                .or_insert_with(|| bytes.clone());
        }
        inner.fs.durable = rebooted.clone();
        inner.fs.current = rebooted;
        inner.crashed = false;
        inner.opts.crash_at_op = None;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ChaosInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Books one operation: decides normal / transient fault / crash.
    /// Returns `Ok(op_index)` for a normal op, or the error to surface
    /// after `partial` effects were applied by the caller via
    /// [`OpDecision`].
    fn begin(inner: &mut ChaosInner, kind: OpKind) -> Result<u64, OpDecision> {
        if inner.crashed {
            return Err(OpDecision::Dead);
        }
        let op = inner.ops;
        inner.ops += 1;
        if inner.opts.crash_at_op == Some(op) {
            inner.crashed = true;
            return Err(OpDecision::Crash { op });
        }
        let every = inner.opts.fault_every;
        if every > 0 && chaos_hash(inner.opts.seed, op, "fault") % every == 0 {
            inner.injected += 1;
            if let Some(recorder) = &inner.recorder {
                recorder.add(Counter::InjectedFaults, 1);
            }
            return Err(OpDecision::Fault { op, kind });
        }
        Ok(op)
    }
}

/// How a booked operation must fail (the caller applies partial
/// effects, then surfaces the mapped error).
enum OpDecision {
    /// The machine is already crashed: everything fails until
    /// [`ChaosStorage::power_cycle`].
    Dead,
    /// This op *is* the crash point.
    Crash { op: u64 },
    /// A transient injected fault; the machine stays up.
    Fault { op: u64, kind: OpKind },
}

impl OpDecision {
    fn error(&self) -> io::Error {
        match self {
            OpDecision::Dead => crashed_err(),
            OpDecision::Crash { op } => inject_err(io::ErrorKind::BrokenPipe, "crash", *op),
            OpDecision::Fault { op, kind } => match kind {
                OpKind::Read => inject_err(io::ErrorKind::Interrupted, "short read", *op),
                OpKind::Sync => inject_err(io::ErrorKind::Other, "dropped fsync", *op),
                OpKind::Write => {
                    if chaos_hash(0x1d, *op, "enospc") & 1 == 0 {
                        inject_err(io::ErrorKind::Other, "ENOSPC", *op)
                    } else {
                        inject_err(io::ErrorKind::WriteZero, "torn write", *op)
                    }
                }
                OpKind::Meta => inject_err(io::ErrorKind::Other, "metadata fault", *op),
            },
        }
    }
}

/// One fnv-derived decision, keyed by `(seed, op index, salt)`.
fn chaos_hash(seed: u64, op: u64, salt: &str) -> u64 {
    fnv1a64(format!("{seed}:{op}:{salt}").as_bytes())
}

/// Deterministic number of bytes (`0..=len`) of a write that reach the
/// current image when the op is torn by a fault or crash.
fn partial_len(seed: u64, op: u64, len: usize) -> usize {
    (chaos_hash(seed, op, "partial") as usize) % (len + 1)
}

/// Whether an atomic op (sync/truncate/rename/remove) completed just
/// *before* the crash point rather than not at all — both serializations
/// are legal crash outcomes, and enumerating with a deterministic coin
/// covers each at different indices.
fn applied_before_crash(seed: u64, op: u64) -> bool {
    chaos_hash(seed, op, "applied") & 1 == 1
}

impl Storage for ChaosStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut inner = self.lock();
        match ChaosStorage::begin(&mut inner, OpKind::Read) {
            Ok(_) => inner.fs.current.get(path).cloned().ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display()))
            }),
            Err(d) => Err(d.error()),
        }
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        let mut inner = self.lock();
        match ChaosStorage::begin(&mut inner, OpKind::Read) {
            Ok(_) => inner
                .fs
                .current
                .get(path)
                .map(|v| v.len() as u64)
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display()))
                }),
            Err(d) => Err(d.error()),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        // Existence probes are not counted as storage ops: they map to
        // metadata cache hits, and letting them consume crash indices
        // would only dilute the enumeration with no-ops.
        let inner = self.lock();
        inner.fs.current.contains_key(path) || inner.fs.dirs.contains(path)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut inner = self.lock();
        let seed = inner.opts.seed;
        match ChaosStorage::begin(&mut inner, OpKind::Write) {
            Ok(_) => {
                inner
                    .fs
                    .current
                    .entry(path.to_path_buf())
                    .or_default()
                    .extend_from_slice(data);
                Ok(())
            }
            Err(d) => {
                if let OpDecision::Crash { op } | OpDecision::Fault { op, .. } = d {
                    let torn = partial_len(seed, op, data.len());
                    inner
                        .fs
                        .current
                        .entry(path.to_path_buf())
                        .or_default()
                        .extend_from_slice(&data[..torn]);
                }
                Err(d.error())
            }
        }
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut inner = self.lock();
        let seed = inner.opts.seed;
        match ChaosStorage::begin(&mut inner, OpKind::Write) {
            Ok(_) => {
                inner.fs.current.insert(path.to_path_buf(), data.to_vec());
                Ok(())
            }
            Err(d) => {
                if let OpDecision::Crash { op } | OpDecision::Fault { op, .. } = d {
                    let torn = partial_len(seed, op, data.len());
                    inner
                        .fs
                        .current
                        .insert(path.to_path_buf(), data[..torn].to_vec());
                }
                Err(d.error())
            }
        }
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        let seed = inner.opts.seed;
        match ChaosStorage::begin(&mut inner, OpKind::Sync) {
            Ok(_) => {
                if let Some(bytes) = inner.fs.current.get(path).cloned() {
                    inner.fs.durable.insert(path.to_path_buf(), bytes);
                    Ok(())
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("{}", path.display()),
                    ))
                }
            }
            Err(d) => {
                if let OpDecision::Crash { op } = d {
                    if applied_before_crash(seed, op) {
                        if let Some(bytes) = inner.fs.current.get(path).cloned() {
                            inner.fs.durable.insert(path.to_path_buf(), bytes);
                        }
                    }
                }
                // A transiently dropped fsync promotes nothing.
                Err(d.error())
            }
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut inner = self.lock();
        let seed = inner.opts.seed;
        let apply = |inner: &mut ChaosInner| -> io::Result<()> {
            let file = inner.fs.current.get_mut(path).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display()))
            })?;
            file.truncate(len as usize);
            Ok(())
        };
        match ChaosStorage::begin(&mut inner, OpKind::Meta) {
            Ok(_) => apply(&mut inner),
            Err(d) => {
                if let OpDecision::Crash { op } = d {
                    if applied_before_crash(seed, op) {
                        let _ = apply(&mut inner);
                    }
                }
                Err(d.error())
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        let seed = inner.opts.seed;
        let apply = |inner: &mut ChaosInner| -> io::Result<()> {
            let bytes = inner.fs.current.remove(from).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("{}", from.display()))
            })?;
            inner.fs.current.insert(to.to_path_buf(), bytes);
            // Rename-after-fsync is atomic and durable on a journalled
            // fs: if the source content was durable, it is durable at
            // the new name (and gone from the old one).
            if let Some(durable) = inner.fs.durable.remove(from) {
                inner.fs.durable.insert(to.to_path_buf(), durable);
            }
            Ok(())
        };
        match ChaosStorage::begin(&mut inner, OpKind::Meta) {
            Ok(_) => apply(&mut inner),
            Err(d) => {
                if let OpDecision::Crash { op } = d {
                    if applied_before_crash(seed, op) {
                        let _ = apply(&mut inner);
                    }
                }
                Err(d.error())
            }
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        let seed = inner.opts.seed;
        let apply = |inner: &mut ChaosInner| -> io::Result<()> {
            if inner.fs.current.remove(path).is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("{}", path.display()),
                ));
            }
            inner.fs.durable.remove(path);
            Ok(())
        };
        match ChaosStorage::begin(&mut inner, OpKind::Meta) {
            Ok(_) => apply(&mut inner),
            Err(d) => {
                if let OpDecision::Crash { op } = d {
                    if applied_before_crash(seed, op) {
                        let _ = apply(&mut inner);
                    }
                }
                Err(d.error())
            }
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut inner = self.lock();
        match ChaosStorage::begin(&mut inner, OpKind::Read) {
            Ok(_) => {
                let mut names: Vec<String> = inner
                    .fs
                    .current
                    .keys()
                    .filter(|p| p.parent() == Some(dir))
                    .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
                    .collect();
                names.sort();
                Ok(names)
            }
            Err(d) => Err(d.error()),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        match ChaosStorage::begin(&mut inner, OpKind::Meta) {
            Ok(_) => {
                let mut cur = dir.to_path_buf();
                loop {
                    inner.fs.dirs.insert(cur.clone());
                    match cur.parent() {
                        Some(parent) if parent != Path::new("") => cur = parent.to_path_buf(),
                        _ => break,
                    }
                }
                Ok(())
            }
            Err(d) => Err(d.error()),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut inner = self.lock();
        match ChaosStorage::begin(&mut inner, OpKind::Sync) {
            Ok(_) => {
                let _ = dir;
                Ok(())
            }
            Err(d) => Err(d.error()),
        }
    }

    fn attach_recorder(&self, recorder: RecorderHandle) {
        self.lock().recorder = Some(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn unsynced_appends_survive_only_as_deterministic_debris() {
        let disk = ChaosStorage::new(ChaosOptions::quiet(7));
        disk.append(&p("d/a.wal"), b"synced-part").expect("append");
        disk.sync(&p("d/a.wal")).expect("sync");
        disk.append(&p("d/a.wal"), b"unsynced-suffix")
            .expect("append");
        disk.power_cycle();
        let after = disk.read(&p("d/a.wal")).expect("read");
        assert!(after.starts_with(b"synced-part"));
        assert!(after.len() <= b"synced-part".len() + b"unsynced-suffix".len());
        // Determinism: an identical history reboots to an identical image.
        let disk2 = ChaosStorage::new(ChaosOptions::quiet(7));
        disk2.append(&p("d/a.wal"), b"synced-part").expect("append");
        disk2.sync(&p("d/a.wal")).expect("sync");
        disk2
            .append(&p("d/a.wal"), b"unsynced-suffix")
            .expect("append");
        disk2.power_cycle();
        assert_eq!(after, disk2.read(&p("d/a.wal")).expect("read"));
    }

    #[test]
    fn crash_at_op_fails_that_op_and_everything_after() {
        let disk = ChaosStorage::new(ChaosOptions {
            seed: 3,
            crash_at_op: Some(1),
            fault_every: 0,
        });
        disk.append(&p("x"), b"zero").expect("op 0 is clean");
        let err = disk.append(&p("x"), b"one").expect_err("op 1 crashes");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(disk.crashed());
        assert!(disk.read(&p("x")).is_err(), "dead until power_cycle");
        disk.power_cycle();
        // Nothing was ever synced: the whole file is debris-bounded.
        let after = disk.read(&p("x")).unwrap_or_default();
        assert!(after.len() <= b"zeroone".len());
    }

    #[test]
    fn dropped_fsync_promotes_nothing() {
        // fault_every=1 faults every op; op 0 is the append (torn), so
        // probe sync behavior directly with a targeted plan instead.
        let disk = ChaosStorage::new(ChaosOptions::quiet(11));
        disk.append(&p("f"), b"abc").expect("append");
        // Arm a crash on the sync op and take the not-applied branch or
        // the applied branch — either way the error surfaces.
        disk.set_crash_at_op(Some(disk.ops()));
        let err = disk.sync(&p("f")).expect_err("sync crashes");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        disk.power_cycle();
        let after = disk.read(&p("f")).unwrap_or_default();
        assert!(after.len() <= 3);
    }

    #[test]
    fn rename_after_sync_is_durable() {
        let disk = ChaosStorage::new(ChaosOptions::quiet(5));
        disk.write(&p("d/t.tmp"), b"checkpoint").expect("write");
        disk.sync(&p("d/t.tmp")).expect("sync");
        disk.rename(&p("d/t.tmp"), &p("d/c.ckpt")).expect("rename");
        disk.power_cycle();
        assert_eq!(disk.read(&p("d/c.ckpt")).expect("read"), b"checkpoint");
        assert!(!disk.exists(&p("d/t.tmp")));
    }

    #[test]
    fn transient_faults_are_counted_and_survivable() {
        let disk = ChaosStorage::new(ChaosOptions {
            seed: 9,
            crash_at_op: None,
            fault_every: 2,
        });
        let mut failures = 0;
        for i in 0..32u32 {
            if disk.append(&p("w"), &i.to_le_bytes()).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0, "a 1-in-2 plan must fault some appends");
        assert!(!disk.crashed(), "transient faults never crash the machine");
        assert_eq!(disk.injected_faults(), failures);
    }
}
