//! Crash-safe WAL checkpointing and compaction.
//!
//! A checkpoint is a snapshot of a session's materialized event log —
//! every [`LogEntry`] from seq 0 through a *base* sequence — written as
//! one file so the WAL tail before the base can be truncated away.
//! Without it, a session's WAL grows forever; with it, the on-disk
//! footprint is bounded by one snapshot plus the mutations since.
//!
//! # File format
//!
//! A checkpoint reuses the WAL's checksummed record framing
//! (`[u32 len][u32 crc32][payload]`, see [`wal`](crate::wal)):
//!
//! * record 0 is a header — `{"v":1,"generation":G,"base_seq":S,"entries":N}`;
//! * records 1..=N are the canonical JSON of entries seq `0..=S`.
//!
//! A checkpoint is **valid** iff the whole file scans with no
//! corruption, the header parses with the expected generation, exactly
//! `N` entry records follow, and they decode to contiguous sequences
//! `0..=S` (each entry's content-hash ID is re-verified by
//! [`LogEntry::decode`]). Anything less is treated as if the file did
//! not exist — never as partial data.
//!
//! # Write protocol (crash-safe by construction)
//!
//! 1. build the image and write it to `<name>.ckpt.tmp`;
//! 2. `fsync` the temp file;
//! 3. atomically rename it to `<name>.ckpt.<generation>`;
//! 4. `fsync` the directory (making the rename durable);
//! 5. truncate the WAL to empty (compaction) and `fsync` that;
//! 6. prune generations older than the previous one (keep 2).
//!
//! A crash at any step loses nothing: before the rename the checkpoint
//! does not exist and the WAL is whole; after it, recovery prefers the
//! new generation and ignores the stale WAL prefix. Checkpoint errors
//! are never fatal to the session — the data is already safe in the
//! WAL, so a failed checkpoint is simply retried at the next append.
//!
//! # Recovery
//!
//! [`recover_log`] scans the WAL, lists generations newest-first, and
//! returns the first generation that is valid **and** splices with the
//! WAL tail without a sequence gap; on corruption it falls back a
//! generation, and with no usable checkpoint it falls back to the WAL
//! alone. Overlapping entries (a WAL whose truncation never became
//! durable) are cross-checked against the checkpoint by content-hash
//! ID, so a divergent history is detected rather than silently merged.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use hem_obs::json::{self, JsonValue};

use crate::event::LogEntry;
use crate::session::SessionError;
use crate::storage::Storage;
use crate::wal::{encode_record, scan, Recovered, Wal, WalError};

/// Current checkpoint format version.
pub const FORMAT_VERSION: u64 = 1;

/// How many checkpoint generations are retained after a new one lands.
pub const KEEP_GENERATIONS: u64 = 2;

/// The temp-file path a checkpoint is staged at before its rename.
#[must_use]
pub fn tmp_path(data_dir: &Path, name: &str) -> PathBuf {
    data_dir.join(format!("{name}.ckpt.tmp"))
}

/// The final path of generation `generation` for session `name`.
#[must_use]
pub fn generation_path(data_dir: &Path, name: &str, generation: u64) -> PathBuf {
    data_dir.join(format!("{name}.ckpt.{generation:08}"))
}

/// A decoded, validated checkpoint.
#[derive(Debug)]
pub struct Checkpoint {
    /// The generation number (from the header, matching the filename).
    pub generation: u64,
    /// The highest sequence the snapshot covers.
    pub base_seq: u64,
    /// Entries seq `0..=base_seq`.
    pub entries: Vec<LogEntry>,
}

fn io_err<'a>(path: &'a Path, op: &'static str) -> impl FnOnce(std::io::Error) -> WalError + 'a {
    move |source| WalError::Io {
        path: path.to_path_buf(),
        op,
        source,
    }
}

/// Serializes a checkpoint image for entries `0..=base_seq`.
///
/// # Errors
///
/// Only when a single record exceeds the WAL's record bound.
pub fn encode_image(generation: u64, entries: &[LogEntry]) -> Result<Vec<u8>, WalError> {
    let base_seq = entries.last().map_or(0, |e| e.seq);
    let header = format!(
        "{{\"v\":{FORMAT_VERSION},\"generation\":{generation},\"base_seq\":{base_seq},\"entries\":{}}}",
        entries.len()
    );
    let mut image = encode_record(header.as_bytes())?;
    for entry in entries {
        image.extend_from_slice(&encode_record(entry.canonical_json().as_bytes())?);
    }
    Ok(image)
}

/// Writes generation `generation` covering `entries` (seq `0..=S`),
/// following the crash-safe temp → fsync → rename → dir-fsync protocol,
/// then prunes generations older than `generation - KEEP_GENERATIONS + 1`.
///
/// Does **not** touch the WAL — compaction is the caller's step, so a
/// crash between the rename and the truncation leaves a recoverable
/// (merely redundant) state.
///
/// # Errors
///
/// On any storage failure; the session's WAL is untouched either way,
/// so the caller can safely swallow the error and retry later.
pub fn write(
    storage: &Arc<dyn Storage>,
    data_dir: &Path,
    name: &str,
    generation: u64,
    entries: &[LogEntry],
) -> Result<u64, WalError> {
    let _span = crate::trace::span("checkpoint_io");
    let image = encode_image(generation, entries)?;
    let tmp = tmp_path(data_dir, name);
    let target = generation_path(data_dir, name, generation);
    storage
        .write(&tmp, &image)
        .map_err(io_err(&tmp, "checkpoint_write"))?;
    storage
        .sync(&tmp)
        .map_err(io_err(&tmp, "checkpoint_sync"))?;
    storage
        .rename(&tmp, &target)
        .map_err(io_err(&target, "checkpoint_rename"))?;
    storage
        .sync_dir(data_dir)
        .map_err(io_err(data_dir, "checkpoint_sync_dir"))?;
    // Retention: best-effort — a leftover old generation is only disk
    // space, and recovery ignores anything older than the newest valid.
    if let Ok(generations) = list_generations(storage, data_dir, name) {
        for old in generations {
            if old + KEEP_GENERATIONS <= generation {
                let _ = storage.remove(&generation_path(data_dir, name, old));
            }
        }
    }
    Ok(image.len() as u64)
}

/// Existing checkpoint generations for `name`, newest first.
///
/// # Errors
///
/// On a storage `list` failure (a missing directory is an empty list).
pub fn list_generations(
    storage: &Arc<dyn Storage>,
    data_dir: &Path,
    name: &str,
) -> Result<Vec<u64>, WalError> {
    let prefix = format!("{name}.ckpt.");
    let names = match storage.list(data_dir) {
        Ok(names) => names,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err(data_dir, "checkpoint_list")(e)),
    };
    let mut generations: Vec<u64> = names
        .iter()
        .filter_map(|n| n.strip_prefix(&prefix))
        .filter_map(|suffix| suffix.parse::<u64>().ok())
        .collect();
    generations.sort_unstable_by(|a, b| b.cmp(a));
    Ok(generations)
}

/// Loads and validates one generation file. Any corruption — a failed
/// scan, a bad header, a count or sequence mismatch, an ID that does
/// not re-verify — yields `None` (the caller falls back a generation),
/// never partial data.
#[must_use]
pub fn load(storage: &Arc<dyn Storage>, path: &Path, generation: u64) -> Option<Checkpoint> {
    let bytes = storage.read(path).ok()?;
    let scanned = scan(&bytes);
    if scanned.corruption.is_some() || scanned.records.is_empty() {
        return None;
    }
    let header = json::parse(std::str::from_utf8(&scanned.records[0]).ok()?).ok()?;
    let field = |key: &str| {
        header
            .get(key)
            .and_then(JsonValue::as_f64)
            .filter(|n| n.fract() == 0.0 && *n >= 0.0)
            .map(|n| n as u64)
    };
    if field("v") != Some(FORMAT_VERSION) || field("generation") != Some(generation) {
        return None;
    }
    let base_seq = field("base_seq")?;
    let count = field("entries")?;
    if count as usize != scanned.records.len() - 1 {
        return None;
    }
    let mut entries = Vec::with_capacity(count as usize);
    for (i, payload) in scanned.records[1..].iter().enumerate() {
        let entry = LogEntry::decode(payload).ok()?;
        if entry.seq != i as u64 {
            return None;
        }
        entries.push(entry);
    }
    if entries.last().map(|e| e.seq) != Some(base_seq) {
        return None;
    }
    Some(Checkpoint {
        generation,
        base_seq,
        entries,
    })
}

/// A session log recovered from newest-valid checkpoint + WAL tail.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The WAL, opened for appending.
    pub wal: Wal,
    /// The full entry sequence, seq `0..`.
    pub entries: Vec<LogEntry>,
    /// Whether the WAL had a torn tail (truncated during open).
    pub torn: bool,
    /// The checkpoint generation recovery restored from, if any.
    pub checkpoint: Option<u64>,
    /// The generation number the *next* checkpoint should use.
    pub next_generation: u64,
}

/// Splices checkpoint entries with the WAL's decoded entries.
///
/// The WAL may hold a stale prefix (its compaction truncate never
/// became durable): entries at or below the base must *match the
/// checkpoint by ID*; entries above it must continue contiguously from
/// the base. Returns `None` when the splice has a gap or a divergent
/// overlap — the caller falls back a generation.
fn splice(checkpoint: &Checkpoint, wal_entries: &[LogEntry]) -> Option<Vec<LogEntry>> {
    let base = checkpoint.base_seq;
    for entry in wal_entries.iter().filter(|e| e.seq <= base) {
        if checkpoint.entries[entry.seq as usize].id != entry.id {
            return None;
        }
    }
    let tail: Vec<LogEntry> = wal_entries
        .iter()
        .filter(|e| e.seq > base)
        .cloned()
        .collect();
    if let Some(first) = tail.first() {
        if first.seq != base + 1 {
            return None;
        }
    }
    let mut entries = checkpoint.entries.clone();
    entries.extend(tail);
    Some(entries)
}

/// Recovers a session's full entry log: WAL scan + newest-valid
/// checkpoint, falling back a generation on corruption and to the WAL
/// alone when no checkpoint is usable. An absent session recovers as
/// an empty log (no entries, no checkpoint).
///
/// # Errors
///
/// On storage I/O failure, an undecodable WAL record, or a log that no
/// candidate can make contiguous from seq 0 ([`SessionError::Corrupt`]
/// — explicit refusal, never invented records).
pub fn recover_log(
    storage: &Arc<dyn Storage>,
    data_dir: &Path,
    name: &str,
) -> Result<RecoveredLog, SessionError> {
    let wal_file = crate::session::wal_path(data_dir, name);
    let Recovered { wal, records, torn } = Wal::open(storage.clone(), &wal_file)?;
    let mut wal_entries = Vec::with_capacity(records.len());
    for payload in &records {
        let entry = LogEntry::decode(payload)?;
        if let Some(prev) = wal_entries.last() {
            let prev: &LogEntry = prev;
            if entry.seq != prev.seq + 1 {
                return Err(SessionError::Corrupt(format!(
                    "wal jumps from seq {} to {}",
                    prev.seq, entry.seq
                )));
            }
        }
        wal_entries.push(entry);
    }
    // A crash between a checkpoint's write and rename can strand the
    // temp file; it is dead weight, never read.
    let tmp = tmp_path(data_dir, name);
    if storage.exists(&tmp) {
        let _ = storage.remove(&tmp);
    }
    let generations = list_generations(storage, data_dir, name)?;
    let next_generation = generations.first().map_or(1, |g| g + 1);
    for &generation in &generations {
        let path = generation_path(data_dir, name, generation);
        let Some(checkpoint) = load(storage, &path, generation) else {
            continue; // corrupt or unreadable: fall back a generation
        };
        if let Some(entries) = splice(&checkpoint, &wal_entries) {
            return Ok(RecoveredLog {
                wal,
                entries,
                torn,
                checkpoint: Some(generation),
                next_generation,
            });
        }
    }
    // No usable checkpoint: the WAL must stand on its own.
    if wal_entries.first().is_some_and(|e| e.seq != 0) {
        return Err(SessionError::Corrupt(format!(
            "wal starts at seq {} and no checkpoint generation is usable",
            wal_entries[0].seq
        )));
    }
    Ok(RecoveredLog {
        wal,
        entries: wal_entries,
        torn,
        checkpoint: None,
        next_generation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SessionEvent;
    use crate::storage::{ChaosOptions, ChaosStorage};

    fn entries(n: u64) -> Vec<LogEntry> {
        let mut out = vec![LogEntry::new(
            0,
            SessionEvent::Open {
                scenario: "cpu cpu0\ntask t0 cpu=cpu0 cet=10 prio=1 activation=periodic:100\n"
                    .into(),
            },
        )];
        for seq in 1..=n {
            out.push(LogEntry::new(
                seq,
                SessionEvent::SetTask {
                    task: "t0".into(),
                    bcet: None,
                    wcet: Some(10 + seq as i64),
                    priority: None,
                },
            ));
        }
        out
    }

    fn disk() -> (ChaosStorage, Arc<dyn Storage>) {
        let chaos = ChaosStorage::new(ChaosOptions::quiet(1));
        let arc: Arc<dyn Storage> = Arc::new(chaos.clone());
        (chaos, arc)
    }

    #[test]
    fn write_then_recover_round_trips() {
        let (_, storage) = disk();
        let dir = Path::new("data");
        let log = entries(5);
        write(&storage, dir, "s", 1, &log).expect("checkpoint");
        let recovered = recover_log(&storage, dir, "s").expect("recover");
        assert_eq!(recovered.checkpoint, Some(1));
        assert_eq!(recovered.next_generation, 2);
        assert_eq!(recovered.entries.len(), 6);
        assert_eq!(
            recovered.entries.iter().map(|e| e.id).collect::<Vec<_>>(),
            log.iter().map(|e| e.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corrupt_newest_generation_falls_back_to_previous() {
        let (_, storage) = disk();
        let dir = Path::new("data");
        write(&storage, dir, "s", 1, &entries(3)).expect("gen 1");
        write(&storage, dir, "s", 2, &entries(5)).expect("gen 2");
        // Flip a bit in the middle of gen 2.
        let path = generation_path(dir, "s", 2);
        let mut bytes = storage.read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        storage.write(&path, &bytes).expect("re-write");
        let recovered = recover_log(&storage, dir, "s").expect("recover");
        assert_eq!(recovered.checkpoint, Some(1), "fell back one generation");
        assert_eq!(recovered.entries.len(), 4);
        // The next write must not collide with the (corrupt) gen 2.
        assert_eq!(recovered.next_generation, 3);
    }

    #[test]
    fn stale_wal_overlap_is_cross_checked_not_duplicated() {
        let (_, storage) = disk();
        let dir = Path::new("data");
        let log = entries(4);
        // The WAL still holds everything (its compaction truncate "never
        // became durable") *and* a checkpoint covers seq 0..=2.
        let wal_file = crate::session::wal_path(dir, "s");
        let mut opened = Wal::open(storage.clone(), &wal_file).expect("wal");
        for entry in &log {
            opened
                .wal
                .append(entry.canonical_json().as_bytes(), true)
                .expect("append");
        }
        write(&storage, dir, "s", 1, &log[..3]).expect("checkpoint");
        let recovered = recover_log(&storage, dir, "s").expect("recover");
        assert_eq!(recovered.checkpoint, Some(1));
        assert_eq!(recovered.entries.len(), 5, "overlap spliced, not doubled");
        assert_eq!(
            recovered.entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn gap_between_checkpoint_and_tail_refuses_rather_than_invents() {
        let (_, storage) = disk();
        let dir = Path::new("data");
        let log = entries(6);
        // Checkpoint covers 0..=2 but the WAL only holds seqs 5..=6:
        // entries 3-4 are lost to a (modeled) retention bug. Recovery
        // must refuse, not bridge the gap.
        write(&storage, dir, "s", 1, &log[..3]).expect("checkpoint");
        let wal_file = crate::session::wal_path(dir, "s");
        let mut opened = Wal::open(storage.clone(), &wal_file).expect("wal");
        for entry in &log[5..] {
            opened
                .wal
                .append(entry.canonical_json().as_bytes(), true)
                .expect("append");
        }
        let err = recover_log(&storage, dir, "s").expect_err("must refuse");
        assert_eq!(err.kind(), "corrupt_log");
    }

    #[test]
    fn retention_keeps_two_generations() {
        let (_, storage) = disk();
        let dir = Path::new("data");
        for generation in 1..=4 {
            write(&storage, dir, "s", generation, &entries(generation)).expect("checkpoint");
        }
        let generations = list_generations(&storage, dir, "s").expect("list");
        assert_eq!(generations, vec![4, 3]);
    }
}
