//! Session events: the immutable vocabulary of spec mutations.
//!
//! A session is an event-sourced log: the only way to change a spec is
//! to append one of these events, and the materialized state is always
//! reproducible by replaying the log from the start. Events carry
//! deterministic content-hash IDs — `fnv1a64("<seq>:" ++ canonical
//! JSON)` — so a client that crashed mid-request can simply resend
//! everything: a resend of an already-applied `(seq, event)` pair
//! matches the stored ID and is acknowledged as a duplicate instead of
//! applied twice (SNIPPETS.md Snippet 1's idempotent-import pattern).
//!
//! Canonical form matters: every event encodes with a fixed key order
//! and all optional keys present (`null` when unset), so the hash of an
//! event is a function of its *meaning*, not of incidental formatting.
//!
//! The vocabulary is deliberately parametric, not structural: events
//! retune timing attributes of an existing topology (WCETs, priorities,
//! source periods, bus bit times, payload sizes) but never add or
//! remove entities. That keeps every post-`open` mutation inside
//! `analyze_incremental`'s warm-start diff — the Nth edit costs a
//! damage cone, not a full re-analysis. Topology changes are a new
//! session.

use hem_analysis::Priority;
use hem_event_models::EventModelExt as _;
use hem_event_models::StandardEventModel;
use hem_obs::json::{self, JsonValue};
use hem_system::{ActivationSpec, SystemSpec};
use hem_time::Time;

use crate::hash::fnv1a64;

/// One spec mutation in a session's log.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// Opens the session with a scenario in the textual DSL
    /// ([`hem_system::dsl`]). Always the first event, never repeated.
    Open {
        /// Scenario source text.
        scenario: String,
    },
    /// Retunes a task's execution times and/or priority.
    SetTask {
        /// Task name.
        task: String,
        /// New best-case execution time in ticks, if changed.
        bcet: Option<i64>,
        /// New worst-case execution time in ticks, if changed.
        wcet: Option<i64>,
        /// New priority level, if changed.
        priority: Option<u32>,
    },
    /// Replaces a signal's external source with a fresh periodic model.
    SetSource {
        /// Frame carrying the signal.
        frame: String,
        /// Signal name within the frame.
        signal: String,
        /// New period in ticks (≥ 1).
        period: i64,
        /// New jitter in ticks (≥ 0).
        jitter: i64,
    },
    /// Changes a bus's wire bit time.
    SetBus {
        /// Bus name.
        bus: String,
        /// New bit time in ticks (≥ 1).
        bit_time: i64,
    },
    /// Changes a frame's payload size.
    SetPayload {
        /// Frame name.
        frame: String,
        /// New payload in bytes (1–8, classic CAN).
        payload: u8,
    },
}

/// A decode or apply failure, with a stable machine-readable kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventError {
    /// Stable lower-snake error kind, e.g. `"unknown_task"`.
    pub kind: &'static str,
    /// Human-oriented detail.
    pub message: String,
}

impl EventError {
    fn new(kind: &'static str, message: impl Into<String>) -> Self {
        EventError {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for EventError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for EventError {}

fn push_opt_i64(out: &mut String, key: &str, v: Option<i64>) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    match v {
        Some(n) => out.push_str(&n.to_string()),
        None => out.push_str("null"),
    }
}

impl SessionEvent {
    /// The canonical JSON encoding — fixed key order, all keys present.
    ///
    /// This exact byte string (prefixed with the sequence number) is
    /// what the event ID hashes, so it must never change shape for an
    /// existing event kind.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        let mut out = String::new();
        match self {
            SessionEvent::Open { scenario } => {
                out.push_str("{\"type\":\"open\",\"scenario\":");
                json::write_escaped(&mut out, scenario);
                out.push('}');
            }
            SessionEvent::SetTask {
                task,
                bcet,
                wcet,
                priority,
            } => {
                out.push_str("{\"type\":\"set_task\",\"task\":");
                json::write_escaped(&mut out, task);
                out.push(',');
                push_opt_i64(&mut out, "bcet", *bcet);
                out.push(',');
                push_opt_i64(&mut out, "wcet", *wcet);
                out.push(',');
                push_opt_i64(&mut out, "priority", priority.map(i64::from));
                out.push('}');
            }
            SessionEvent::SetSource {
                frame,
                signal,
                period,
                jitter,
            } => {
                out.push_str("{\"type\":\"set_source\",\"frame\":");
                json::write_escaped(&mut out, frame);
                out.push_str(",\"signal\":");
                json::write_escaped(&mut out, signal);
                out.push_str(&format!(",\"period\":{period},\"jitter\":{jitter}}}"));
            }
            SessionEvent::SetBus { bus, bit_time } => {
                out.push_str("{\"type\":\"set_bus\",\"bus\":");
                json::write_escaped(&mut out, bus);
                out.push_str(&format!(",\"bit_time\":{bit_time}}}"));
            }
            SessionEvent::SetPayload { frame, payload } => {
                out.push_str("{\"type\":\"set_payload\",\"frame\":");
                json::write_escaped(&mut out, frame);
                out.push_str(&format!(",\"payload\":{payload}}}"));
            }
        }
        out
    }

    /// Decodes an event from its parsed JSON object form.
    ///
    /// Accepts any key order and missing optional keys — decoding is
    /// liberal, the canonical form is produced on re-encode.
    ///
    /// # Errors
    ///
    /// On unknown `type`, missing required keys, or out-of-range
    /// values.
    pub fn from_json(value: &JsonValue) -> Result<Self, EventError> {
        let bad = |msg: String| EventError::new("bad_event", msg);
        let ty = value
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("event needs a string \"type\"".into()))?;
        let str_field = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_str)
                .map(String::from)
                .ok_or_else(|| bad(format!("{ty} event needs a string \"{key}\"")))
        };
        let int_field = |key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_f64)
                .filter(|n| n.fract() == 0.0 && n.abs() <= 2f64.powi(53))
                .map(|n| n as i64)
                .ok_or_else(|| bad(format!("{ty} event needs an integer \"{key}\"")))
        };
        let opt_int_field = |key: &str| -> Result<Option<i64>, EventError> {
            match value.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(v) => v
                    .as_f64()
                    .filter(|n| n.fract() == 0.0 && n.abs() <= 2f64.powi(53))
                    .map(|n| Some(n as i64))
                    .ok_or_else(|| bad(format!("\"{key}\" must be an integer or null"))),
            }
        };
        match ty {
            "open" => Ok(SessionEvent::Open {
                scenario: str_field("scenario")?,
            }),
            "set_task" => {
                let priority = match opt_int_field("priority")? {
                    None => None,
                    Some(p) => Some(
                        u32::try_from(p).map_err(|_| bad("\"priority\" out of range".into()))?,
                    ),
                };
                Ok(SessionEvent::SetTask {
                    task: str_field("task")?,
                    bcet: opt_int_field("bcet")?,
                    wcet: opt_int_field("wcet")?,
                    priority,
                })
            }
            "set_source" => Ok(SessionEvent::SetSource {
                frame: str_field("frame")?,
                signal: str_field("signal")?,
                period: int_field("period")?,
                jitter: int_field("jitter")?,
            }),
            "set_bus" => Ok(SessionEvent::SetBus {
                bus: str_field("bus")?,
                bit_time: int_field("bit_time")?,
            }),
            "set_payload" => {
                let payload = int_field("payload")?;
                let payload = u8::try_from(payload)
                    .ok()
                    .filter(|p| (1..=8).contains(p))
                    .ok_or_else(|| bad("\"payload\" must be 1..=8 bytes".into()))?;
                Ok(SessionEvent::SetPayload {
                    frame: str_field("frame")?,
                    payload,
                })
            }
            other => Err(bad(format!("unknown event type {other:?}"))),
        }
    }

    /// Applies the event to a spec **in place**.
    ///
    /// In-place mutation is load-bearing: untouched entities keep their
    /// `Arc`-shared external models, which is exactly the identity
    /// `analyze_incremental`'s diff uses to bound the damage cone.
    ///
    /// # Errors
    ///
    /// On unknown entity names or out-of-range values; `open` is
    /// rejected here (the session layer materializes it via the DSL).
    pub fn apply(&self, spec: &mut SystemSpec) -> Result<(), EventError> {
        match self {
            SessionEvent::Open { .. } => Err(EventError::new(
                "bad_event",
                "open is only valid as the first event of a session",
            )),
            SessionEvent::SetTask {
                task,
                bcet,
                wcet,
                priority,
            } => {
                let t = spec
                    .tasks
                    .iter_mut()
                    .find(|t| t.name == *task)
                    .ok_or_else(|| EventError::new("unknown_task", format!("no task {task:?}")))?;
                if let Some(b) = bcet {
                    if *b < 0 {
                        return Err(EventError::new("bad_value", "bcet must be >= 0"));
                    }
                    t.bcet = Time::new(*b);
                }
                if let Some(w) = wcet {
                    if *w < 1 {
                        return Err(EventError::new("bad_value", "wcet must be >= 1"));
                    }
                    t.wcet = Time::new(*w);
                }
                if t.bcet > t.wcet {
                    return Err(EventError::new("bad_value", "bcet must not exceed wcet"));
                }
                if let Some(p) = priority {
                    t.priority = Priority::new(*p);
                }
                Ok(())
            }
            SessionEvent::SetSource {
                frame,
                signal,
                period,
                jitter,
            } => {
                let model = StandardEventModel::periodic_with_jitter(
                    Time::new(*period),
                    Time::new(*jitter),
                )
                .map_err(|e| EventError::new("bad_value", e.to_string()))?;
                let f = spec
                    .frames
                    .iter_mut()
                    .find(|f| f.name == *frame)
                    .ok_or_else(|| {
                        EventError::new("unknown_frame", format!("no frame {frame:?}"))
                    })?;
                let s = f
                    .signals
                    .iter_mut()
                    .find(|s| s.name == *signal)
                    .ok_or_else(|| {
                        EventError::new(
                            "unknown_signal",
                            format!("no signal {signal:?} in frame {frame:?}"),
                        )
                    })?;
                if !matches!(s.source, ActivationSpec::External(_)) {
                    return Err(EventError::new(
                        "bad_value",
                        format!("signal {signal:?} is not externally sourced"),
                    ));
                }
                s.source = ActivationSpec::External(model.shared());
                Ok(())
            }
            SessionEvent::SetBus { bus, bit_time } => {
                if *bit_time < 1 {
                    return Err(EventError::new("bad_value", "bit_time must be >= 1"));
                }
                let b = spec
                    .buses
                    .iter_mut()
                    .find(|b| b.name == *bus)
                    .ok_or_else(|| EventError::new("unknown_bus", format!("no bus {bus:?}")))?;
                b.config.bit_time = Time::new(*bit_time);
                Ok(())
            }
            SessionEvent::SetPayload { frame, payload } => {
                let f = spec
                    .frames
                    .iter_mut()
                    .find(|f| f.name == *frame)
                    .ok_or_else(|| {
                        EventError::new("unknown_frame", format!("no frame {frame:?}"))
                    })?;
                f.payload_bytes = *payload;
                Ok(())
            }
        }
    }
}

/// One applied event in a session's log: position, identity, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// 0-based position in the log (`open` is always seq 0).
    pub seq: u64,
    /// Content-hash identity: [`entry_id`] of `(seq, event)`.
    pub id: u64,
    /// The event itself.
    pub event: SessionEvent,
}

/// The deterministic content-hash ID of an event at a log position.
#[must_use]
pub fn entry_id(seq: u64, event: &SessionEvent) -> u64 {
    let mut keyed = String::new();
    keyed.push_str(&seq.to_string());
    keyed.push(':');
    keyed.push_str(&event.canonical_json());
    fnv1a64(keyed.as_bytes())
}

impl LogEntry {
    /// Builds an entry, deriving its content-hash ID.
    #[must_use]
    pub fn new(seq: u64, event: SessionEvent) -> Self {
        let id = entry_id(seq, &event);
        LogEntry { seq, id, event }
    }

    /// The canonical WAL payload: `{"seq":N,"id":"<hex>","event":{…}}`.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"id\":\"{}\",\"event\":{}}}",
            self.seq,
            crate::hash::id_hex(self.id),
            self.event.canonical_json()
        )
    }

    /// Decodes a WAL payload, verifying the stored ID against the
    /// recomputed content hash (defense in depth on top of the WAL
    /// CRC: a record that decodes but mis-hashes is corruption, not a
    /// different event).
    ///
    /// # Errors
    ///
    /// On malformed JSON, a malformed entry shape, or an ID mismatch.
    pub fn decode(payload: &[u8]) -> Result<Self, EventError> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| EventError::new("bad_entry", "log entry is not UTF-8"))?;
        let value = json::parse(text)
            .map_err(|e| EventError::new("bad_entry", format!("log entry JSON: {e}")))?;
        let seq = value
            .get("seq")
            .and_then(JsonValue::as_f64)
            .filter(|n| n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53))
            .map(|n| n as u64)
            .ok_or_else(|| EventError::new("bad_entry", "entry needs an integer \"seq\""))?;
        let id = value
            .get("id")
            .and_then(JsonValue::as_str)
            .and_then(crate::hash::parse_id_hex)
            .ok_or_else(|| EventError::new("bad_entry", "entry needs a hex \"id\""))?;
        let event = value
            .get("event")
            .ok_or_else(|| EventError::new("bad_entry", "entry needs an \"event\""))
            .and_then(SessionEvent::from_json)?;
        let expected = entry_id(seq, &event);
        if id != expected {
            return Err(EventError::new(
                "bad_entry",
                format!(
                    "entry id mismatch at seq {seq}: stored {id:016x}, computed {expected:016x}"
                ),
            ));
        }
        Ok(LogEntry { seq, id, event })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_json_is_stable_and_decodable() {
        let events = vec![
            SessionEvent::Open {
                scenario: "cpu c1\n".into(),
            },
            SessionEvent::SetTask {
                task: "t0".into(),
                bcet: None,
                wcet: Some(42),
                priority: None,
            },
            SessionEvent::SetSource {
                frame: "F1".into(),
                signal: "s1".into(),
                period: 500,
                jitter: 20,
            },
            SessionEvent::SetBus {
                bus: "can".into(),
                bit_time: 2,
            },
            SessionEvent::SetPayload {
                frame: "F1".into(),
                payload: 4,
            },
        ];
        for e in events {
            let text = e.canonical_json();
            let parsed = json::parse(&text).expect("canonical JSON parses");
            let back = SessionEvent::from_json(&parsed).expect("decodes");
            assert_eq!(back, e);
            assert_eq!(
                back.canonical_json(),
                text,
                "canonical form is a fixed point"
            );
        }
    }

    #[test]
    fn entry_round_trips_through_wal_payload() {
        let entry = LogEntry::new(
            7,
            SessionEvent::SetTask {
                task: "brake".into(),
                bcet: Some(10),
                wcet: Some(99),
                priority: Some(3),
            },
        );
        let payload = entry.canonical_json();
        let back = LogEntry::decode(payload.as_bytes()).expect("decodes");
        assert_eq!(back, entry);
    }

    #[test]
    fn id_is_content_addressed() {
        let a = SessionEvent::SetBus {
            bus: "can".into(),
            bit_time: 2,
        };
        let b = SessionEvent::SetBus {
            bus: "can".into(),
            bit_time: 3,
        };
        assert_eq!(entry_id(4, &a), entry_id(4, &a));
        assert_ne!(entry_id(4, &a), entry_id(5, &a), "seq participates");
        assert_ne!(entry_id(4, &a), entry_id(4, &b), "content participates");
    }

    #[test]
    fn decode_rejects_id_mismatch() {
        let entry = LogEntry::new(
            1,
            SessionEvent::SetBus {
                bus: "can".into(),
                bit_time: 2,
            },
        );
        let tampered = entry
            .canonical_json()
            .replace("\"bit_time\":2", "\"bit_time\":3");
        let err = LogEntry::decode(tampered.as_bytes()).expect_err("mismatch");
        assert_eq!(err.kind, "bad_entry");
    }
}
