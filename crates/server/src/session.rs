//! An event-sourced analysis session: log, spec, materialized result.
//!
//! A session is three views of the same truth, kept consistent in one
//! place:
//!
//! 1. the **log** — the WAL-backed sequence of [`LogEntry`]s, the only
//!    durable state;
//! 2. the **spec** — the [`SystemSpec`] obtained by replaying the log,
//!    mutated in place so untouched external models keep their `Arc`
//!    identity (the handle `analyze_incremental` diffs against);
//! 3. the **materialized result** — the rendered JSON of the last
//!    *converged* analysis, plus the warm-start snapshot that makes the
//!    next analysis pay only for the damage cone.
//!
//! Crash recovery is nothing special: reopen the WAL (torn tails are
//! truncated), replay the entries through the same
//! [`SessionEvent::apply`] path as live traffic, re-analyze. Because
//! the engine is bit-for-bit deterministic and warm starts are
//! bit-identical to cold runs, a recovered session's materialized
//! state cannot be told apart from an uninterrupted one — the property
//! the recovery tests pin down byte for byte.

use std::path::{Path, PathBuf};

use hem_analysis::AnalysisBudget;
use hem_system::{
    analyze_incremental, dsl, AnalysisMode, ConvergenceStatus, RobustAnalysis, StopReason,
    SystemConfig, SystemError, SystemSpec, WarmStart,
};

use crate::event::{entry_id, EventError, LogEntry, SessionEvent};
use crate::hash::id_hex;
use crate::wal::{Wal, WalError};

/// A session-layer failure with a stable machine-readable kind.
#[derive(Debug)]
pub enum SessionError {
    /// The write-ahead log failed.
    Wal(WalError),
    /// An event failed to decode or apply.
    Event(EventError),
    /// The opening scenario failed to parse.
    Scenario(dsl::ParseError),
    /// The spec itself is invalid (dangling references etc.).
    Analysis(SystemError),
    /// A resent event disagrees with the stored entry at its sequence
    /// number — same position, different content.
    Conflict {
        /// The contested log position.
        seq: u64,
        /// ID already stored at that position.
        stored: u64,
        /// ID of the conflicting resend.
        got: u64,
    },
    /// An explicit sequence number skipped ahead of the log.
    Gap {
        /// The next position the log will accept.
        expected: u64,
        /// The position the client asked for.
        got: u64,
    },
    /// A recovered log is structurally unusable (e.g. does not start
    /// with `open`).
    Corrupt(String),
}

impl SessionError {
    /// Stable lower-snake error kind for protocol responses.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SessionError::Wal(_) => "wal",
            SessionError::Event(e) => e.kind,
            SessionError::Scenario(_) => "bad_scenario",
            SessionError::Analysis(_) => "bad_spec",
            SessionError::Conflict { .. } => "conflict",
            SessionError::Gap { .. } => "gap",
            SessionError::Corrupt(_) => "corrupt_log",
        }
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Wal(e) => write!(f, "{e}"),
            SessionError::Event(e) => write!(f, "{e}"),
            SessionError::Scenario(e) => write!(f, "scenario: {e}"),
            SessionError::Analysis(e) => write!(f, "spec: {e}"),
            SessionError::Conflict { seq, stored, got } => write!(
                f,
                "conflicting resend at seq {seq}: stored {}, got {}",
                id_hex(*stored),
                id_hex(*got)
            ),
            SessionError::Gap { expected, got } => {
                write!(f, "sequence gap: expected {expected}, got {got}")
            }
            SessionError::Corrupt(msg) => write!(f, "corrupt log: {msg}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<WalError> for SessionError {
    fn from(e: WalError) -> Self {
        SessionError::Wal(e)
    }
}

impl From<EventError> for SessionError {
    fn from(e: EventError) -> Self {
        SessionError::Event(e)
    }
}

/// The last converged, rendered analysis of a session.
#[derive(Debug, Clone)]
pub struct Materialized {
    /// Log position the result reflects (last seq applied before the
    /// analysis ran).
    pub seq: u64,
    /// The deterministic result JSON body.
    pub body: String,
}

/// How an append was absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// A new entry was written and applied.
    Applied {
        /// Its log position.
        seq: u64,
        /// Its content-hash ID.
        id: u64,
    },
    /// The event was already in the log — an idempotent resend.
    Duplicate {
        /// The existing entry's position.
        seq: u64,
        /// The existing entry's ID.
        id: u64,
    },
}

/// What `analyze` served, per the degradation contract.
#[derive(Debug, Clone)]
pub enum Analyzed {
    /// A fresh converged result; the materialized state was updated.
    Fresh {
        /// Rendered result body.
        body: String,
        /// Resources re-analysed vs. replayed from the warm snapshot.
        replayed: u64,
    },
    /// The deadline expired before convergence; the last materialized
    /// result is served instead, marked stale.
    Stale {
        /// The previous materialized body.
        body: String,
        /// Log position that body reflects (behind the current log).
        seq: u64,
    },
    /// The run stopped short of convergence and no materialized result
    /// exists to fall back on: the partial salvage, marked incomplete.
    Partial {
        /// Rendered partial body (`"complete":false`).
        body: String,
    },
}

/// How a session came back from disk.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// Entries replayed from the WAL.
    pub replayed: usize,
    /// Whether a torn tail was detected and truncated.
    pub torn: bool,
}

/// One live analysis session.
#[derive(Debug)]
pub struct Session {
    name: String,
    wal: Wal,
    entries: Vec<LogEntry>,
    spec: SystemSpec,
    warm: Option<WarmStart>,
    materialized: Option<Materialized>,
}

/// The WAL path of a session inside a data directory.
#[must_use]
pub fn wal_path(data_dir: &Path, name: &str) -> PathBuf {
    data_dir.join(format!("{name}.wal"))
}

/// Whether a session name is acceptable as a file stem.
#[must_use]
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

impl Session {
    /// Opens a session: recovers an existing WAL or starts a fresh log
    /// whose first entry is `open` with `scenario`.
    ///
    /// Opening an existing session with the *same* scenario is
    /// idempotent; a different scenario is a [`SessionError::Conflict`]
    /// — the log, not the request, owns the topology.
    ///
    /// # Errors
    ///
    /// On WAL I/O failure, an unparsable scenario, or a scenario
    /// conflict with an existing log.
    pub fn open(
        data_dir: &Path,
        name: &str,
        scenario: &str,
    ) -> Result<(Self, RecoveryReport), SessionError> {
        let recovered = Wal::open(&wal_path(data_dir, name))?;
        if recovered.records.is_empty() {
            let spec = dsl::parse(scenario).map_err(SessionError::Scenario)?;
            let entry = LogEntry::new(
                0,
                SessionEvent::Open {
                    scenario: scenario.to_string(),
                },
            );
            let mut wal = recovered.wal;
            wal.append(entry.canonical_json().as_bytes())?;
            Ok((
                Session {
                    name: name.to_string(),
                    wal,
                    entries: vec![entry],
                    spec,
                    warm: None,
                    materialized: None,
                },
                RecoveryReport {
                    replayed: 0,
                    torn: recovered.torn,
                },
            ))
        } else {
            let session = Self::from_recovered(name, recovered.wal, &recovered.records)?;
            let open_id = entry_id(
                0,
                &SessionEvent::Open {
                    scenario: scenario.to_string(),
                },
            );
            if session.entries[0].id != open_id {
                return Err(SessionError::Conflict {
                    seq: 0,
                    stored: session.entries[0].id,
                    got: open_id,
                });
            }
            let replayed = session.entries.len();
            Ok((
                session,
                RecoveryReport {
                    replayed,
                    torn: recovered.torn,
                },
            ))
        }
    }

    /// Rebuilds a session purely from its WAL, without needing the
    /// scenario — the quarantine path after a panic, and the restart
    /// path after a crash.
    ///
    /// Returns `Ok(None)` when no log exists (nothing to recover).
    ///
    /// # Errors
    ///
    /// On WAL I/O failure or a structurally unusable log.
    pub fn recover(
        data_dir: &Path,
        name: &str,
    ) -> Result<Option<(Self, RecoveryReport)>, SessionError> {
        let path = wal_path(data_dir, name);
        if !path.exists() {
            return Ok(None);
        }
        let recovered = Wal::open(&path)?;
        if recovered.records.is_empty() {
            return Ok(None);
        }
        let session = Self::from_recovered(name, recovered.wal, &recovered.records)?;
        let replayed = session.entries.len();
        Ok(Some((
            session,
            RecoveryReport {
                replayed,
                torn: recovered.torn,
            },
        )))
    }

    fn from_recovered(name: &str, wal: Wal, records: &[Vec<u8>]) -> Result<Self, SessionError> {
        let mut entries = Vec::with_capacity(records.len());
        for (i, payload) in records.iter().enumerate() {
            let entry = LogEntry::decode(payload)?;
            if entry.seq != i as u64 {
                return Err(SessionError::Corrupt(format!(
                    "entry {i} carries seq {}",
                    entry.seq
                )));
            }
            entries.push(entry);
        }
        let SessionEvent::Open { scenario } = &entries[0].event else {
            return Err(SessionError::Corrupt("log does not start with open".into()));
        };
        let mut spec = dsl::parse(scenario).map_err(SessionError::Scenario)?;
        for entry in &entries[1..] {
            entry.event.apply(&mut spec)?;
        }
        Ok(Session {
            name: name.to_string(),
            wal,
            entries,
            spec,
            warm: None,
            materialized: None,
        })
    }

    /// The session's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The position of the last applied entry.
    #[must_use]
    pub fn current_seq(&self) -> u64 {
        (self.entries.len() - 1) as u64
    }

    /// The content-hash ID of the opening entry — what an `open`
    /// request must match to count as an idempotent re-open.
    #[must_use]
    pub fn open_id(&self) -> u64 {
        self.entries[0].id
    }

    /// Appends a mutation, durably (WAL first) and idempotently.
    ///
    /// `seq: None` assigns the next position. `seq: Some(n)` is the
    /// replay form: `n` at or below the current position must carry the
    /// ID already stored there (→ [`AppendOutcome::Duplicate`], a
    /// no-op); a mismatch is a [`SessionError::Conflict`]; a position
    /// past the next free slot is a [`SessionError::Gap`].
    ///
    /// # Errors
    ///
    /// On conflict, gap, apply failure, or WAL I/O failure.
    pub fn append(
        &mut self,
        seq: Option<u64>,
        event: SessionEvent,
    ) -> Result<AppendOutcome, SessionError> {
        let next = self.entries.len() as u64;
        let at = seq.unwrap_or(next);
        if at < next {
            let stored = &self.entries[at as usize];
            let got = entry_id(at, &event);
            return if stored.id == got {
                Ok(AppendOutcome::Duplicate {
                    seq: at,
                    id: stored.id,
                })
            } else {
                Err(SessionError::Conflict {
                    seq: at,
                    stored: stored.id,
                    got,
                })
            };
        }
        if at > next {
            return Err(SessionError::Gap {
                expected: next,
                got: at,
            });
        }
        // Validate against a scratch copy first: an event that fails to
        // apply must reach neither the WAL nor the live spec.
        let mut staged = self.spec.clone();
        event.apply(&mut staged)?;
        let entry = LogEntry::new(at, event);
        self.wal.append(entry.canonical_json().as_bytes())?;
        self.spec = staged;
        let id = entry.id;
        self.entries.push(entry);
        Ok(AppendOutcome::Applied { seq: at, id })
    }

    /// Runs (or re-runs) the analysis under `budget`, per the
    /// degradation contract: a converged run refreshes the
    /// materialized result; an exhausted budget serves the previous
    /// materialized result marked stale (keeping the warm snapshot for
    /// a retry); any other incomplete stop yields the partial salvage.
    ///
    /// # Errors
    ///
    /// Only on genuine spec errors surfaced by the engine.
    pub fn analyze(&mut self, budget: AnalysisBudget) -> Result<Analyzed, SessionError> {
        let config = SystemConfig::new(AnalysisMode::Hierarchical)
            .with_threads(1)
            .with_budget(budget);
        let outcome = analyze_incremental(&self.spec, &config, self.warm.as_ref())
            .map_err(SessionError::Analysis)?;
        let replayed = outcome.reuse.replayed_results;
        if outcome.analysis.results.is_complete() {
            self.warm = outcome.snapshot;
            let body = render_result(&outcome.analysis);
            self.materialized = Some(Materialized {
                seq: self.current_seq(),
                body: body.clone(),
            });
            return Ok(Analyzed::Fresh { body, replayed });
        }
        if outcome.analysis.diagnostics.budget_exhausted() {
            if let Some(m) = &self.materialized {
                return Ok(Analyzed::Stale {
                    body: m.body.clone(),
                    seq: m.seq,
                });
            }
        }
        Ok(Analyzed::Partial {
            body: render_result(&outcome.analysis),
        })
    }

    /// The last materialized result, if any, with its staleness: stale
    /// means mutations were appended after it was computed.
    #[must_use]
    pub fn last_result(&self) -> Option<(&Materialized, bool)> {
        self.materialized
            .as_ref()
            .map(|m| (m, m.seq < self.current_seq()))
    }
}

fn status_name(status: Option<ConvergenceStatus>) -> String {
    match status {
        Some(ConvergenceStatus::Converged) => "converged".into(),
        Some(ConvergenceStatus::Growing { streak }) => format!("growing:{streak}"),
        Some(ConvergenceStatus::Unsettled) => "unsettled".into(),
        Some(ConvergenceStatus::Failed) => "failed".into(),
        None | Some(ConvergenceStatus::Unknown) => "unknown".into(),
    }
}

fn stop_name(stop: &StopReason) -> String {
    match stop {
        StopReason::Converged => "converged".into(),
        StopReason::DivergenceDetected { entity, streak } => {
            format!("divergence:{entity}:{streak}")
        }
        StopReason::LocalAnalysisFailed { entity, .. } => format!("local_failed:{entity}"),
        StopReason::BudgetExhausted => "budget_exhausted".into(),
        StopReason::IterationLimitReached => "iteration_limit".into(),
    }
}

/// Renders an analysis into the deterministic result body.
///
/// Deliberately excludes anything wall-clock (elapsed time, replay
/// savings): two runs of the same log must render byte-identically, on
/// any machine, warm or cold — that equality *is* the recovery
/// guarantee the smoke test asserts.
#[must_use]
pub fn render_result(analysis: &RobustAnalysis) -> String {
    use std::collections::BTreeMap;
    let results = &analysis.results;
    let mut out = String::with_capacity(256);
    out.push_str("{\"complete\":");
    out.push_str(if results.is_complete() {
        "true"
    } else {
        "false"
    });
    out.push_str(&format!(
        ",\"iterations\":{},\"stop\":\"{}\"",
        results.iterations(),
        stop_name(&analysis.diagnostics.stop)
    ));
    for (section, items, status_of) in [
        ("tasks", results.tasks().collect::<BTreeMap<_, _>>(), true),
        (
            "frames",
            results.frames().collect::<BTreeMap<_, _>>(),
            false,
        ),
    ] {
        out.push_str(&format!(",\"{section}\":{{"));
        for (i, (name, r)) in items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let status = if status_of {
                results.task_convergence(name)
            } else {
                results.frame_convergence(name)
            };
            hem_obs::json::write_escaped(&mut out, name);
            out.push_str(&format!(
                ":{{\"r_minus\":{},\"r_plus\":{},\"busy_activations\":{},\"status\":\"{}\"}}",
                r.response.r_minus.ticks(),
                r.response.r_plus.ticks(),
                r.busy_activations,
                status_name(status)
            ));
        }
        out.push('}');
    }
    out.push('}');
    out
}
