//! An event-sourced analysis session: log, spec, materialized result.
//!
//! A session is three views of the same truth, kept consistent in one
//! place:
//!
//! 1. the **log** — the WAL-backed sequence of [`LogEntry`]s, the only
//!    durable state;
//! 2. the **spec** — the [`SystemSpec`] obtained by replaying the log,
//!    mutated in place so untouched external models keep their `Arc`
//!    identity (the handle `analyze_incremental` diffs against);
//! 3. the **materialized result** — the rendered JSON of the last
//!    *converged* analysis, plus the warm-start snapshot that makes the
//!    next analysis pay only for the damage cone.
//!
//! Crash recovery is nothing special: reopen the WAL (torn tails are
//! truncated), replay the entries through the same
//! [`SessionEvent::apply`] path as live traffic, re-analyze. Because
//! the engine is bit-for-bit deterministic and warm starts are
//! bit-identical to cold runs, a recovered session's materialized
//! state cannot be told apart from an uninterrupted one — the property
//! the recovery tests pin down byte for byte.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use hem_analysis::AnalysisBudget;
use hem_obs::{Counter, RecorderHandle};
use hem_system::{
    analyze_incremental, dsl, AnalysisMode, ConvergenceStatus, RobustAnalysis, StopReason,
    SystemConfig, SystemError, SystemSpec, WarmStart,
};

use crate::checkpoint::{self, RecoveredLog};
use crate::event::{entry_id, EventError, LogEntry, SessionEvent};
use crate::hash::id_hex;
use crate::storage::Storage;
use crate::wal::{Wal, WalError};

/// The environment a session does its I/O in: where, through what
/// storage, and under which durability policy.
#[derive(Debug, Clone)]
pub struct SessionEnv {
    /// The storage all WAL and checkpoint I/O goes through.
    pub storage: Arc<dyn Storage>,
    /// Directory holding one WAL (plus checkpoints) per session.
    pub data_dir: PathBuf,
    /// Whether appends `fsync` before the mutation is acknowledged.
    /// On by default: an acked mutation survives a power cut.
    pub sync_appends: bool,
    /// WAL size (bytes) that triggers a checkpoint + compaction after
    /// an append. `0` disables checkpointing.
    pub checkpoint_bytes: u64,
    /// Counter sink for durability events (fsync failures, checkpoints,
    /// compacted bytes).
    pub metrics: RecorderHandle,
}

/// A session-layer failure with a stable machine-readable kind.
#[derive(Debug)]
pub enum SessionError {
    /// The write-ahead log failed.
    Wal(WalError),
    /// An event failed to decode or apply.
    Event(EventError),
    /// The opening scenario failed to parse.
    Scenario(dsl::ParseError),
    /// The spec itself is invalid (dangling references etc.).
    Analysis(SystemError),
    /// A resent event disagrees with the stored entry at its sequence
    /// number — same position, different content.
    Conflict {
        /// The contested log position.
        seq: u64,
        /// ID already stored at that position.
        stored: u64,
        /// ID of the conflicting resend.
        got: u64,
    },
    /// An explicit sequence number skipped ahead of the log.
    Gap {
        /// The next position the log will accept.
        expected: u64,
        /// The position the client asked for.
        got: u64,
    },
    /// A recovered log is structurally unusable (e.g. does not start
    /// with `open`).
    Corrupt(String),
}

impl SessionError {
    /// Stable lower-snake error kind for protocol responses.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SessionError::Wal(_) => "wal",
            SessionError::Event(e) => e.kind,
            SessionError::Scenario(_) => "bad_scenario",
            SessionError::Analysis(_) => "bad_spec",
            SessionError::Conflict { .. } => "conflict",
            SessionError::Gap { .. } => "gap",
            SessionError::Corrupt(_) => "corrupt_log",
        }
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Wal(e) => write!(f, "{e}"),
            SessionError::Event(e) => write!(f, "{e}"),
            SessionError::Scenario(e) => write!(f, "scenario: {e}"),
            SessionError::Analysis(e) => write!(f, "spec: {e}"),
            SessionError::Conflict { seq, stored, got } => write!(
                f,
                "conflicting resend at seq {seq}: stored {}, got {}",
                id_hex(*stored),
                id_hex(*got)
            ),
            SessionError::Gap { expected, got } => {
                write!(f, "sequence gap: expected {expected}, got {got}")
            }
            SessionError::Corrupt(msg) => write!(f, "corrupt log: {msg}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<WalError> for SessionError {
    fn from(e: WalError) -> Self {
        SessionError::Wal(e)
    }
}

impl From<EventError> for SessionError {
    fn from(e: EventError) -> Self {
        SessionError::Event(e)
    }
}

/// The last converged, rendered analysis of a session.
#[derive(Debug, Clone)]
pub struct Materialized {
    /// Log position the result reflects (last seq applied before the
    /// analysis ran).
    pub seq: u64,
    /// The deterministic result JSON body.
    pub body: String,
}

/// How an append was absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// A new entry was written and applied.
    Applied {
        /// Its log position.
        seq: u64,
        /// Its content-hash ID.
        id: u64,
    },
    /// The event was already in the log — an idempotent resend.
    Duplicate {
        /// The existing entry's position.
        seq: u64,
        /// The existing entry's ID.
        id: u64,
    },
}

/// What `analyze` served, per the degradation contract.
#[derive(Debug, Clone)]
pub enum Analyzed {
    /// A fresh converged result; the materialized state was updated.
    Fresh {
        /// Rendered result body.
        body: String,
        /// Resources re-analysed vs. replayed from the warm snapshot.
        replayed: u64,
    },
    /// The deadline expired before convergence; the last materialized
    /// result is served instead, marked stale.
    Stale {
        /// The previous materialized body.
        body: String,
        /// Log position that body reflects (behind the current log).
        seq: u64,
    },
    /// The run stopped short of convergence and no materialized result
    /// exists to fall back on: the partial salvage, marked incomplete.
    Partial {
        /// Rendered partial body (`"complete":false`).
        body: String,
    },
}

/// How a session came back from disk.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// Entries replayed from the WAL.
    pub replayed: usize,
    /// Whether a torn tail was detected and truncated.
    pub torn: bool,
}

/// One live analysis session.
#[derive(Debug)]
pub struct Session {
    env: SessionEnv,
    name: String,
    wal: Wal,
    entries: Vec<LogEntry>,
    spec: SystemSpec,
    warm: Option<WarmStart>,
    materialized: Option<Materialized>,
    /// Generation number the next checkpoint will be written as.
    next_generation: u64,
}

/// The WAL path of a session inside a data directory.
#[must_use]
pub fn wal_path(data_dir: &Path, name: &str) -> PathBuf {
    data_dir.join(format!("{name}.wal"))
}

/// Whether a session name is acceptable as a file stem.
#[must_use]
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

impl Session {
    /// Opens a session: recovers an existing WAL or starts a fresh log
    /// whose first entry is `open` with `scenario`.
    ///
    /// Opening an existing session with the *same* scenario is
    /// idempotent; a different scenario is a [`SessionError::Conflict`]
    /// — the log, not the request, owns the topology.
    ///
    /// # Errors
    ///
    /// On WAL I/O failure, an unparsable scenario, or a scenario
    /// conflict with an existing log.
    pub fn open(
        env: &SessionEnv,
        name: &str,
        scenario: &str,
    ) -> Result<(Self, RecoveryReport), SessionError> {
        let recovered = checkpoint::recover_log(&env.storage, &env.data_dir, name)?;
        if recovered.entries.is_empty() {
            let spec = dsl::parse(scenario).map_err(SessionError::Scenario)?;
            let entry = LogEntry::new(
                0,
                SessionEvent::Open {
                    scenario: scenario.to_string(),
                },
            );
            let torn = recovered.torn;
            let mut session = Session {
                env: env.clone(),
                name: name.to_string(),
                wal: recovered.wal,
                entries: Vec::new(),
                spec,
                warm: None,
                materialized: None,
                next_generation: recovered.next_generation,
            };
            session.append_record(&entry)?;
            session.entries.push(entry);
            Ok((session, RecoveryReport { replayed: 0, torn }))
        } else {
            let torn = recovered.torn;
            let session = Self::from_recovered(env, name, recovered)?;
            let open_id = entry_id(
                0,
                &SessionEvent::Open {
                    scenario: scenario.to_string(),
                },
            );
            if session.entries[0].id != open_id {
                return Err(SessionError::Conflict {
                    seq: 0,
                    stored: session.entries[0].id,
                    got: open_id,
                });
            }
            let replayed = session.entries.len();
            Ok((session, RecoveryReport { replayed, torn }))
        }
    }

    /// Rebuilds a session purely from its durable state (checkpoint +
    /// WAL), without needing the scenario — the quarantine path after a
    /// panic, and the restart path after a crash.
    ///
    /// Returns `Ok(None)` when no log exists (nothing to recover).
    ///
    /// # Errors
    ///
    /// On WAL I/O failure or a structurally unusable log.
    pub fn recover(
        env: &SessionEnv,
        name: &str,
    ) -> Result<Option<(Self, RecoveryReport)>, SessionError> {
        let recovered = checkpoint::recover_log(&env.storage, &env.data_dir, name)?;
        if recovered.entries.is_empty() {
            return Ok(None);
        }
        let torn = recovered.torn;
        let session = Self::from_recovered(env, name, recovered)?;
        let replayed = session.entries.len();
        Ok(Some((session, RecoveryReport { replayed, torn })))
    }

    fn from_recovered(
        env: &SessionEnv,
        name: &str,
        recovered: RecoveredLog,
    ) -> Result<Self, SessionError> {
        let RecoveredLog {
            wal,
            entries,
            next_generation,
            ..
        } = recovered;
        for (i, entry) in entries.iter().enumerate() {
            if entry.seq != i as u64 {
                return Err(SessionError::Corrupt(format!(
                    "entry {i} carries seq {}",
                    entry.seq
                )));
            }
        }
        let SessionEvent::Open { scenario } = &entries[0].event else {
            return Err(SessionError::Corrupt("log does not start with open".into()));
        };
        let mut spec = dsl::parse(scenario).map_err(SessionError::Scenario)?;
        for entry in &entries[1..] {
            entry.event.apply(&mut spec)?;
        }
        Ok(Session {
            env: env.clone(),
            name: name.to_string(),
            wal,
            entries,
            spec,
            warm: None,
            materialized: None,
            next_generation,
        })
    }

    /// Appends one entry to the WAL under the session's durability
    /// policy, counting fsync failures.
    fn append_record(&mut self, entry: &LogEntry) -> Result<(), SessionError> {
        let _span = crate::trace::span("wal_append");
        let pre = self.wal.len();
        let result = self
            .wal
            .append(entry.canonical_json().as_bytes(), self.env.sync_appends);
        if let Err(WalError::Io { op: "sync", .. }) = &result {
            self.env.metrics.add(Counter::FsyncFailures, 1);
        }
        if result.is_ok() {
            crate::trace::note_wal_bytes(self.wal.len().saturating_sub(pre));
        }
        result.map_err(SessionError::Wal)
    }

    /// Writes a checkpoint and compacts the WAL when it has outgrown
    /// the configured threshold. Never fatal: every entry is already
    /// durable in the WAL, so a failed checkpoint is simply retried at
    /// the next append.
    fn maybe_checkpoint(&mut self) {
        if self.env.checkpoint_bytes == 0 || self.wal.len() < self.env.checkpoint_bytes {
            return;
        }
        let _span = crate::trace::span("checkpoint_write");
        let generation = self.next_generation;
        if checkpoint::write(
            &self.env.storage,
            &self.env.data_dir,
            &self.name,
            generation,
            &self.entries,
        )
        .is_err()
        {
            return;
        }
        crate::trace::note_ckpt_gen(generation);
        self.next_generation = generation + 1;
        self.env.metrics.add(Counter::Checkpoints, 1);
        // If the compaction truncate fails, recovery still prefers the
        // new checkpoint and cross-checks the stale WAL overlap.
        if let Ok(reclaimed) = self.wal.reset() {
            self.env.metrics.add(Counter::CompactedBytes, reclaimed);
        }
    }

    /// The session's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The position of the last applied entry.
    #[must_use]
    pub fn current_seq(&self) -> u64 {
        (self.entries.len() - 1) as u64
    }

    /// The content-hash ID of the opening entry — what an `open`
    /// request must match to count as an idempotent re-open.
    #[must_use]
    pub fn open_id(&self) -> u64 {
        self.entries[0].id
    }

    /// Appends a mutation, durably (WAL first) and idempotently.
    ///
    /// `seq: None` assigns the next position. `seq: Some(n)` is the
    /// replay form: `n` at or below the current position must carry the
    /// ID already stored there (→ [`AppendOutcome::Duplicate`], a
    /// no-op); a mismatch is a [`SessionError::Conflict`]; a position
    /// past the next free slot is a [`SessionError::Gap`].
    ///
    /// # Errors
    ///
    /// On conflict, gap, apply failure, or WAL I/O failure.
    pub fn append(
        &mut self,
        seq: Option<u64>,
        event: SessionEvent,
    ) -> Result<AppendOutcome, SessionError> {
        let next = self.entries.len() as u64;
        let at = seq.unwrap_or(next);
        if at < next {
            let stored = &self.entries[at as usize];
            let got = entry_id(at, &event);
            return if stored.id == got {
                Ok(AppendOutcome::Duplicate {
                    seq: at,
                    id: stored.id,
                })
            } else {
                Err(SessionError::Conflict {
                    seq: at,
                    stored: stored.id,
                    got,
                })
            };
        }
        if at > next {
            return Err(SessionError::Gap {
                expected: next,
                got: at,
            });
        }
        // Validate against a scratch copy first: an event that fails to
        // apply must reach neither the WAL nor the live spec.
        let mut staged = self.spec.clone();
        event.apply(&mut staged)?;
        let entry = LogEntry::new(at, event);
        self.append_record(&entry)?;
        self.spec = staged;
        let id = entry.id;
        self.entries.push(entry);
        self.maybe_checkpoint();
        Ok(AppendOutcome::Applied { seq: at, id })
    }

    /// Bytes currently in the session's WAL (post-compaction tail).
    #[must_use]
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len()
    }

    /// The generation of the newest checkpoint written, if any.
    #[must_use]
    pub fn checkpoint_generation(&self) -> Option<u64> {
        (self.next_generation > 1).then_some(self.next_generation - 1)
    }

    /// Runs (or re-runs) the analysis under `budget`, per the
    /// degradation contract: a converged run refreshes the
    /// materialized result; an exhausted budget serves the previous
    /// materialized result marked stale (keeping the warm snapshot for
    /// a retry); any other incomplete stop yields the partial salvage.
    ///
    /// # Errors
    ///
    /// Only on genuine spec errors surfaced by the engine.
    pub fn analyze(&mut self, budget: AnalysisBudget) -> Result<Analyzed, SessionError> {
        let _span = crate::trace::span("engine_analyze");
        let config = SystemConfig::new(AnalysisMode::Hierarchical)
            .with_threads(1)
            .with_budget(budget);
        let outcome = analyze_incremental(&self.spec, &config, self.warm.as_ref())
            .map_err(SessionError::Analysis)?;
        let replayed = outcome.reuse.replayed_results;
        if outcome.analysis.results.is_complete() {
            self.warm = outcome.snapshot;
            let body = render_result(&outcome.analysis);
            self.materialized = Some(Materialized {
                seq: self.current_seq(),
                body: body.clone(),
            });
            return Ok(Analyzed::Fresh { body, replayed });
        }
        if outcome.analysis.diagnostics.budget_exhausted() {
            if let Some(m) = &self.materialized {
                return Ok(Analyzed::Stale {
                    body: m.body.clone(),
                    seq: m.seq,
                });
            }
        }
        Ok(Analyzed::Partial {
            body: render_result(&outcome.analysis),
        })
    }

    /// The last materialized result, if any, with its staleness: stale
    /// means mutations were appended after it was computed.
    #[must_use]
    pub fn last_result(&self) -> Option<(&Materialized, bool)> {
        self.materialized
            .as_ref()
            .map(|m| (m, m.seq < self.current_seq()))
    }
}

fn status_name(status: Option<ConvergenceStatus>) -> String {
    match status {
        Some(ConvergenceStatus::Converged) => "converged".into(),
        Some(ConvergenceStatus::Growing { streak }) => format!("growing:{streak}"),
        Some(ConvergenceStatus::Unsettled) => "unsettled".into(),
        Some(ConvergenceStatus::Failed) => "failed".into(),
        None | Some(ConvergenceStatus::Unknown) => "unknown".into(),
    }
}

fn stop_name(stop: &StopReason) -> String {
    match stop {
        StopReason::Converged => "converged".into(),
        StopReason::DivergenceDetected { entity, streak } => {
            format!("divergence:{entity}:{streak}")
        }
        StopReason::LocalAnalysisFailed { entity, .. } => format!("local_failed:{entity}"),
        StopReason::BudgetExhausted => "budget_exhausted".into(),
        StopReason::IterationLimitReached => "iteration_limit".into(),
    }
}

/// Renders an analysis into the deterministic result body.
///
/// Deliberately excludes anything wall-clock (elapsed time, replay
/// savings): two runs of the same log must render byte-identically, on
/// any machine, warm or cold — that equality *is* the recovery
/// guarantee the smoke test asserts.
#[must_use]
pub fn render_result(analysis: &RobustAnalysis) -> String {
    use std::collections::BTreeMap;
    let results = &analysis.results;
    let mut out = String::with_capacity(256);
    out.push_str("{\"complete\":");
    out.push_str(if results.is_complete() {
        "true"
    } else {
        "false"
    });
    out.push_str(&format!(
        ",\"iterations\":{},\"stop\":\"{}\"",
        results.iterations(),
        stop_name(&analysis.diagnostics.stop)
    ));
    for (section, items, status_of) in [
        ("tasks", results.tasks().collect::<BTreeMap<_, _>>(), true),
        (
            "frames",
            results.frames().collect::<BTreeMap<_, _>>(),
            false,
        ),
    ] {
        out.push_str(&format!(",\"{section}\":{{"));
        for (i, (name, r)) in items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let status = if status_of {
                results.task_convergence(name)
            } else {
                results.frame_convergence(name)
            };
            hem_obs::json::write_escaped(&mut out, name);
            out.push_str(&format!(
                ":{{\"r_minus\":{},\"r_plus\":{},\"busy_activations\":{},\"status\":\"{}\"}}",
                r.response.r_minus.ticks(),
                r.response.r_plus.ticks(),
                r.busy_activations,
                status_name(status)
            ));
        }
        out.push('}');
    }
    out.push('}');
    out
}
