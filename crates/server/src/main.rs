//! The `hem-server` binary: analysis-as-a-service over TCP.
//!
//! ```text
//! hem-server [--listen HOST:PORT] [--data-dir PATH] [--workers N]
//!            [--queue-depth N] [--max-conns N] [--test-ops]
//!            [--checkpoint-bytes N] [--no-fsync] [--write-timeout-ms N]
//!            [--trace-out PATH]
//! ```
//!
//! Binds, prints `LISTENING <addr>` on stdout (so harnesses using
//! `--listen 127.0.0.1:0` learn the ephemeral port), then serves until
//! killed. Sessions live under `--data-dir` as one WAL per session;
//! killing the process at any instant loses at most a torn tail, which
//! the next start truncates and recovers past.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use hem_server::core::DEFAULT_CHECKPOINT_BYTES;
use hem_server::net::{serve, NetConfig};
use hem_server::{CoreOptions, ServerCore, WorkQueue};

struct Options {
    listen: String,
    data_dir: String,
    workers: usize,
    queue_depth: usize,
    max_conns: usize,
    test_ops: bool,
    checkpoint_bytes: u64,
    no_fsync: bool,
    write_timeout_ms: u64,
    trace_out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            listen: "127.0.0.1:0".into(),
            data_dir: "hem-server-data".into(),
            workers: 4,
            queue_depth: 64,
            max_conns: 256,
            test_ops: false,
            checkpoint_bytes: DEFAULT_CHECKPOINT_BYTES,
            no_fsync: false,
            write_timeout_ms: 5000,
            trace_out: None,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--listen" => opts.listen = value("--listen")?,
            "--data-dir" => opts.data_dir = value("--data-dir")?,
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-depth" => {
                opts.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--max-conns" => {
                opts.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--test-ops" => opts.test_ops = true,
            "--checkpoint-bytes" => {
                opts.checkpoint_bytes = value("--checkpoint-bytes")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-bytes: {e}"))?;
            }
            "--no-fsync" => opts.no_fsync = true,
            "--write-timeout-ms" => {
                opts.write_timeout_ms = value("--write-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--write-timeout-ms: {e}"))?;
            }
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--help" | "-h" => {
                return Err(
                    "usage: hem-server [--listen HOST:PORT] [--data-dir PATH] [--workers N] \
                     [--queue-depth N] [--max-conns N] [--test-ops] [--checkpoint-bytes N] \
                     [--no-fsync] [--write-timeout-ms N] [--trace-out PATH]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut core_options = CoreOptions::new(&opts.data_dir)
        .test_ops(opts.test_ops)
        .sync_appends(!opts.no_fsync)
        .checkpoint_bytes(opts.checkpoint_bytes);
    if let Some(path) = &opts.trace_out {
        core_options = core_options.trace_out(path);
    }
    let core = match ServerCore::with_options(core_options) {
        Ok(c) => Arc::new(c),
        Err(e) => {
            eprintln!("cannot prepare data dir {}: {e}", opts.data_dir);
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(&opts.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", opts.listen);
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(addr) => {
            // Harnesses block on this exact line to learn the port.
            println!("LISTENING {addr}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("cannot resolve bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    let queue = Arc::new(WorkQueue::new(core, opts.queue_depth, opts.workers));
    let net = NetConfig {
        max_connections: opts.max_conns,
        write_timeout: (opts.write_timeout_ms > 0)
            .then(|| Duration::from_millis(opts.write_timeout_ms)),
    };
    match serve(listener, queue, net) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
