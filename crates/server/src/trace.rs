//! Deterministic per-request tracing for the serving layer.
//!
//! Wall clocks make traces non-reproducible, so request spans are
//! timed on a **logical tick clock** instead: every span begin and
//! every span end consumes one tick. A request's spans therefore nest
//! exactly like the call tree that produced them — and two runs of the
//! same request sequence produce byte-identical traces, on any
//! machine, at any thread count (the property the chaos tier-1 test
//! pins down).
//!
//! The scope lives in a thread-local installed by
//! [`begin_request`] and collected by [`finish_request`]; in between,
//! instrumented code anywhere down the call stack
//! ([`session`](crate::session), [`wal`](crate::wal),
//! [`checkpoint`](crate::checkpoint)) opens spans with [`span`]
//! without any plumbing. Span guards close LIFO on drop — including
//! during a panic unwind into the core's `catch_unwind` — so every
//! emitted trace has balanced, properly nested slices even when the
//! request died half-way.

use std::cell::RefCell;

use hem_obs::TraceEvent;

use crate::hash::fnv1a64;

/// The lane (`tid`) request slices render on in a trace viewer.
pub const REQUEST_LANE: u32 = 1;

/// One still-open span frame.
struct Frame {
    name: &'static str,
    start_tick: u64,
}

/// The per-request trace scope.
struct Scope {
    trace_id: u64,
    op: &'static str,
    clock: u64,
    stack: Vec<Frame>,
    /// Whether closed spans are materialized into [`TraceEvent`]s.
    /// Off when the core has no trace sink: the tick clock and the
    /// span stack still run identically (`ticks` lands in the flight
    /// recorder either way), but nothing is built just to be thrown
    /// away.
    collect: bool,
    /// Closed spans, in close order (children before parents).
    events: Vec<TraceEvent>,
    wal_bytes: u64,
    ckpt_gen: Option<u64>,
}

thread_local! {
    static SCOPE: RefCell<Option<Scope>> = const { RefCell::new(None) };
}

/// Everything a finished request's scope collected.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// The deterministic trace id (see [`trace_id`]).
    pub trace_id: u64,
    /// The request's root span name (its op).
    pub op: &'static str,
    /// Closed spans with request-local tick timestamps; the caller
    /// offsets them onto the server-wide tick clock before emission.
    /// Empty when the scope was begun with `collect` false.
    pub events: Vec<TraceEvent>,
    /// Logical ticks the request consumed (2 per span).
    pub ticks: u64,
    /// WAL bytes appended while handling the request.
    pub wal_bytes: u64,
    /// Checkpoint generation written during the request, if any.
    pub ckpt_gen: Option<u64>,
}

/// The deterministic trace id of a request: fnv1a64 over
/// `"<session>/<seq>"` with `-` for a session-less request and seq 0
/// when the request carries none. Stable across runs, machines, and
/// thread counts by construction.
#[must_use]
pub fn trace_id(session: Option<&str>, seq: u64) -> u64 {
    let key = format!("{}/{seq}", session.unwrap_or("-"));
    fnv1a64(key.as_bytes())
}

/// Installs a fresh scope for the current thread and opens the root
/// span (named after the op). With `collect` false the scope only
/// runs the tick clock (no [`TraceEvent`]s are built — see
/// [`RequestTrace::events`]). Replaces any scope a previous request
/// leaked (it cannot happen through `handle_line`, which always
/// finishes, but a replaced scope must not poison the next request).
pub fn begin_request(id: u64, op: &'static str, collect: bool) {
    SCOPE.with(|scope| {
        let mut scope = scope.borrow_mut();
        let mut fresh = Scope {
            trace_id: id,
            op,
            clock: 0,
            stack: Vec::with_capacity(8),
            collect,
            events: Vec::new(),
            wal_bytes: 0,
            ckpt_gen: None,
        };
        fresh.stack.push(Frame {
            name: op,
            start_tick: 0,
        });
        fresh.clock = 1;
        *scope = Some(fresh);
    });
}

/// Closes the current thread's scope and returns what it collected.
/// Any spans still open (the root; inner ones only if a guard was
/// forgotten) are closed LIFO first so the trace stays balanced.
pub fn finish_request() -> Option<RequestTrace> {
    SCOPE.with(|scope| {
        let mut slot = scope.borrow_mut();
        let mut s = slot.take()?;
        while let Some(frame) = s.stack.pop() {
            let end = s.clock;
            s.clock += 1;
            if s.collect {
                s.events.push(
                    TraceEvent::complete(
                        frame.name,
                        "request",
                        frame.start_tick,
                        end - frame.start_tick,
                        REQUEST_LANE,
                    )
                    .arg("trace_id", format!("{:016x}", s.trace_id)),
                );
            }
        }
        Some(RequestTrace {
            trace_id: s.trace_id,
            op: s.op,
            events: s.events,
            ticks: s.clock,
            wal_bytes: s.wal_bytes,
            ckpt_gen: s.ckpt_gen,
        })
    })
}

/// Opens a span on the current request's scope. Outside a scope (no
/// tracing, or code driven without a request — e.g. recovery at
/// startup) the guard is inert and the call is two thread-local reads.
#[must_use = "a span measures until dropped"]
pub fn span(name: &'static str) -> SpanGuard {
    let armed = SCOPE.with(|scope| {
        let mut scope = scope.borrow_mut();
        if let Some(s) = scope.as_mut() {
            let start_tick = s.clock;
            s.clock += 1;
            s.stack.push(Frame { name, start_tick });
            true
        } else {
            false
        }
    });
    SpanGuard { armed }
}

/// Records WAL bytes appended on behalf of the current request.
pub fn note_wal_bytes(bytes: u64) {
    SCOPE.with(|scope| {
        if let Some(s) = scope.borrow_mut().as_mut() {
            s.wal_bytes += bytes;
        }
    });
}

/// Records a checkpoint generation written during the current request.
pub fn note_ckpt_gen(generation: u64) {
    SCOPE.with(|scope| {
        if let Some(s) = scope.borrow_mut().as_mut() {
            s.ckpt_gen = Some(generation);
        }
    });
}

/// Closes its span on drop — LIFO with all other live guards, which is
/// what keeps the emitted slices properly nested (Rust drops locals in
/// reverse declaration order, and unwinding drops them the same way).
#[derive(Debug)]
pub struct SpanGuard {
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        SCOPE.with(|scope| {
            let mut scope = scope.borrow_mut();
            if let Some(s) = scope.as_mut() {
                if let Some(frame) = s.stack.pop() {
                    let end = s.clock;
                    s.clock += 1;
                    if s.collect {
                        s.events.push(TraceEvent::complete(
                            frame.name,
                            "request",
                            frame.start_tick,
                            end - frame.start_tick,
                            REQUEST_LANE,
                        ));
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        assert_eq!(trace_id(Some("s1"), 3), trace_id(Some("s1"), 3));
        assert_ne!(trace_id(Some("s1"), 3), trace_id(Some("s1"), 4));
        assert_ne!(trace_id(Some("s1"), 3), trace_id(Some("s2"), 3));
        assert_eq!(trace_id(None, 0), fnv1a64(b"-/0"));
    }

    #[test]
    fn spans_nest_and_balance_on_logical_ticks() {
        begin_request(7, "mutate", true);
        {
            let _outer = span("wal_append");
            let _inner = span("storage_write");
        }
        let trace = finish_request().expect("scope installed");
        assert_eq!(trace.ticks, 6); // 3 spans × (begin + end)
        assert_eq!(trace.events.len(), 3);
        // Close order: inner, outer, root.
        assert_eq!(trace.events[0].name, "storage_write");
        assert_eq!(trace.events[1].name, "wal_append");
        assert_eq!(trace.events[2].name, "mutate");
        // Proper containment: child [2,3) inside parent [1,4) inside
        // root [0,5).
        let (inner, outer, root) = (&trace.events[0], &trace.events[1], &trace.events[2]);
        assert!(outer.ts_us <= inner.ts_us);
        assert!(inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us);
        assert!(root.ts_us <= outer.ts_us);
        assert!(outer.ts_us + outer.dur_us <= root.ts_us + root.dur_us);
    }

    #[test]
    fn spans_outside_a_scope_are_inert() {
        let guard = span("orphan");
        assert!(!guard.armed);
        drop(guard);
        assert!(finish_request().is_none());
        note_wal_bytes(10); // must not panic
    }

    #[test]
    fn notes_accumulate_on_the_scope() {
        begin_request(1, "mutate", true);
        note_wal_bytes(10);
        note_wal_bytes(5);
        note_ckpt_gen(3);
        let trace = finish_request().expect("scope");
        assert_eq!(trace.wal_bytes, 15);
        assert_eq!(trace.ckpt_gen, Some(3));
    }

    #[test]
    fn unbalanced_guards_are_closed_by_finish() {
        begin_request(1, "analyze", true);
        let guard = span("engine_analyze");
        std::mem::forget(guard); // worst case: a leaked guard
        let trace = finish_request().expect("scope");
        // finish closed both the leaked span and the root, LIFO.
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].name, "engine_analyze");
        assert_eq!(trace.events[1].name, "analyze");
    }
}
