//! The crash flight recorder: a bounded ring of recent requests.
//!
//! Every request the core handles leaves one structured
//! [`FlightRecord`] in an in-memory ring buffer. The ring is dumped as
//! deterministic JSONL to `flight.jsonl` in the data directory on the
//! three moments that matter for post-mortems — a panic-quarantine, a
//! WAL recovery, and graceful shutdown — and can be snapshotted live
//! through the `debug_dump` protocol op. Records carry only
//! deterministic fields (logical ticks, byte counts, outcomes — never
//! wall-clock latencies, which live in the metrics histograms), so a
//! dump is byte-identical across runs and thread counts and the chaos
//! harness can assert on it exactly.

use std::collections::VecDeque;
use std::sync::Mutex;

use hem_obs::json::write_escaped;

/// How many requests the ring retains (older records are evicted).
pub const FLIGHT_CAPACITY: usize = 256;

/// The dump file name inside the server's data directory. Chosen so it
/// can never collide with per-session files (session names are valid
/// file stems, but their artifacts are `<name>.wal` / `<name>.ckpt.*`).
pub const FLIGHT_FILE: &str = "flight.jsonl";

/// One request, as the flight recorder remembers it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Position in the server's request history (0-based, monotone).
    pub ordinal: u64,
    /// The deterministic trace id (see [`crate::trace::trace_id`]).
    pub trace_id: u64,
    /// The request op (`"open"`, `"mutate"`, … or `"?"` when the
    /// request never parsed far enough to have one).
    pub op: String,
    /// The session the request addressed, if any.
    pub session: Option<String>,
    /// The stable outcome tag: `ok`, `ok_duplicate`, `ok_stale`,
    /// `ok_recovered`, `shed`, `panic`, or `error:<kind>`.
    pub outcome: String,
    /// The sequence number the response acknowledged, if any.
    pub seq: Option<u64>,
    /// Logical trace ticks the request consumed.
    pub ticks: u64,
    /// WAL bytes appended on behalf of the request.
    pub wal_bytes: u64,
    /// Checkpoint generation written during the request, if any.
    pub ckpt_gen: Option<u64>,
}

impl FlightRecord {
    /// The record's JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"request\",\"ordinal\":{},\"trace_id\":\"{:016x}\",\"op\":",
            self.ordinal, self.trace_id
        );
        write_escaped(&mut out, &self.op);
        out.push_str(",\"session\":");
        match &self.session {
            Some(name) => write_escaped(&mut out, name),
            None => out.push_str("null"),
        }
        out.push_str(",\"outcome\":");
        write_escaped(&mut out, &self.outcome);
        out.push_str(",\"seq\":");
        match self.seq {
            Some(seq) => out.push_str(&seq.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            ",\"ticks\":{},\"wal_bytes\":{},\"ckpt_gen\":",
            self.ticks, self.wal_bytes
        ));
        match self.ckpt_gen {
            Some(g) => out.push_str(&g.to_string()),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

/// The bounded in-memory ring of recent [`FlightRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    state: Mutex<FlightState>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct FlightState {
    ring: VecDeque<FlightRecord>,
    next_ordinal: u64,
}

impl FlightRecorder {
    /// An empty ring holding at most [`FLIGHT_CAPACITY`] records.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(FLIGHT_CAPACITY)
    }

    /// An empty ring with an explicit capacity (tests use small ones).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            state: Mutex::new(FlightState::default()),
            capacity: capacity.max(1),
        }
    }

    /// Appends one record, assigning its ordinal; the oldest record is
    /// evicted when the ring is full.
    pub fn push(&self, mut record: FlightRecord) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        record.ordinal = state.next_ordinal;
        state.next_ordinal += 1;
        if state.ring.len() == self.capacity {
            state.ring.pop_front();
        }
        state.ring.push_back(record);
    }

    /// Total requests recorded so far (including evicted ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .next_ordinal
    }

    /// A copy of the ring's current contents, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.ring.iter().cloned().collect()
    }

    /// Renders a dump: one header line naming the `reason`, then one
    /// line per retained record, oldest first. Byte-deterministic for
    /// a given request history.
    #[must_use]
    pub fn render_dump(&self, reason: &str) -> String {
        let state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::from("{\"type\":\"flight_header\",\"reason\":");
        write_escaped(&mut out, reason);
        out.push_str(&format!(
            ",\"recorded\":{},\"retained\":{},\"capacity\":{}}}\n",
            state.next_ordinal,
            state.ring.len(),
            self.capacity
        ));
        for record in &state.ring {
            out.push_str(&record.to_json());
            out.push('\n');
        }
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_obs::json;

    fn record(op: &str, outcome: &str) -> FlightRecord {
        FlightRecord {
            ordinal: 0,
            trace_id: 0xABCD,
            op: op.to_string(),
            session: Some("s1".to_string()),
            outcome: outcome.to_string(),
            seq: Some(4),
            ticks: 6,
            wal_bytes: 120,
            ckpt_gen: None,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_ordinals() {
        let ring = FlightRecorder::with_capacity(2);
        ring.push(record("open", "ok"));
        ring.push(record("mutate", "ok"));
        ring.push(record("analyze", "ok"));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].ordinal, 1);
        assert_eq!(snap[0].op, "mutate");
        assert_eq!(snap[1].ordinal, 2);
        assert_eq!(ring.recorded(), 3);
    }

    #[test]
    fn dump_is_valid_jsonl_with_header_first() {
        let ring = FlightRecorder::with_capacity(4);
        ring.push(record("open", "ok_recovered"));
        ring.push(record("mutate", "error:gap"));
        let dump = ring.render_dump("shutdown");
        json::validate_jsonl(&dump).expect("valid JSONL");
        let mut lines = dump.lines();
        let header = lines.next().expect("header line");
        assert!(header.starts_with("{\"type\":\"flight_header\",\"reason\":\"shutdown\""));
        assert!(header.contains("\"recorded\":2,\"retained\":2,\"capacity\":4"));
        assert_eq!(lines.count(), 2);
        // Dumps are deterministic for a given history.
        assert_eq!(dump, ring.render_dump("shutdown"));
    }

    #[test]
    fn record_json_encodes_optionals_and_hex_trace_id() {
        let mut r = record("mutate", "ok");
        r.session = None;
        r.seq = None;
        r.ckpt_gen = Some(2);
        let line = r.to_json();
        json::validate(&line).expect("valid JSON");
        assert!(line.contains("\"trace_id\":\"000000000000abcd\""));
        assert!(line.contains("\"session\":null"));
        assert!(line.contains("\"seq\":null"));
        assert!(line.contains("\"ckpt_gen\":2"));
    }
}
