//! The TCP transport: newline-delimited JSON over accepted sockets.
//!
//! Deliberately thin — one thread per connection reading lines,
//! submitting them to the bounded [`WorkQueue`], and writing exactly
//! one response line per request, in request order. All protocol logic
//! lives in [`ServerCore`](crate::core::ServerCore); everything here
//! could be swapped for another transport without touching a test.
//!
//! The accept side is bounded too: beyond `max_connections` concurrent
//! clients, a new connection is greeted with a single shed line and
//! closed, mirroring the work-queue's load-shedding contract at the
//! transport layer.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hem_obs::Counter;

use crate::queue::{Shed, WorkQueue};

/// Transport limits.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Maximum concurrent connections before accepts are shed.
    pub max_connections: usize,
    /// Deadline on every response write. A peer that sends requests but
    /// stops reading eventually fills both socket buffers; without a
    /// deadline the blocked `write` wedges the connection thread (and
    /// its slot against `max_connections`) forever. `None` disables.
    pub write_timeout: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 256,
            write_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// Serves connections from `listener` forever (until accept fails).
///
/// # Errors
///
/// Returns the first fatal accept error.
pub fn serve(
    listener: TcpListener,
    queue: Arc<WorkQueue>,
    config: NetConfig,
) -> std::io::Result<()> {
    let live = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        let stream = stream?;
        queue.metrics().add(Counter::ConnectionsAccepted, 1);
        // Applied before *any* write — including the shed greeting,
        // which runs on the accept thread and must never wedge it.
        if stream.set_write_timeout(config.write_timeout).is_err() {
            continue;
        }
        let queue = queue.clone();
        let live = live.clone();
        if live.fetch_add(1, Ordering::SeqCst) >= config.max_connections {
            live.fetch_sub(1, Ordering::SeqCst);
            // Over the connection bound: one shed line, then hang up.
            let mut w = BufWriter::new(&stream);
            let _ = writeln!(
                w,
                "{}",
                Shed {
                    retry_after_ms: 100
                }
                .response()
            );
            let _ = w.flush();
            continue;
        }
        let live_for_conn = live.clone();
        let spawned = std::thread::Builder::new()
            .name("hem-conn".into())
            .spawn(move || {
                let _ = handle_connection(&stream, &queue);
                live_for_conn.fetch_sub(1, Ordering::SeqCst);
            });
        if let Err(e) = spawned {
            live.fetch_sub(1, Ordering::SeqCst);
            return Err(e);
        }
    }
    Ok(())
}

fn handle_connection(stream: &TcpStream, queue: &WorkQueue) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match queue.submit(line) {
            Ok(rx) => rx
                .recv()
                .unwrap_or_else(|_| "{\"ok\":false,\"error\":\"internal\"}".to_string()),
            Err(shed) => shed.response(),
        };
        writeln!(writer, "{response}")?;
        writer.flush()?;
    }
    Ok(())
}
