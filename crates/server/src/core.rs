//! The protocol core: one JSON request line in, one response line out.
//!
//! [`ServerCore::handle_line`] is the entire server logic, independent
//! of any transport — the TCP layer, the in-process tests, and the
//! `load_gen` bench all drive exactly this function, so what the tests
//! pin down is what the wire serves.
//!
//! Robustness posture:
//!
//! * every request against a session runs under `catch_unwind`; a panic
//!   **quarantines** the session (the in-memory object — possibly
//!   mid-mutation, possibly holding a poisoned lock — is discarded) and
//!   rebuilds it from its WAL, so one poisoned request can never take
//!   down the server or corrupt durable state;
//! * deadlines arrive as `deadline_ms` and become an
//!   [`AnalysisBudget`]; an expired budget degrades to the last
//!   materialized result with `"stale":true` rather than an error;
//! * all failures are explicit `{"ok":false,"error":<kind>}` responses
//!   with stable kinds — clients never have to parse prose.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hem_analysis::AnalysisBudget;
use hem_obs::json::{self, JsonValue};
use hem_obs::{Counter, Gauge, MemoryRecorder, RecorderHandle, TraceEvent};

use crate::event::SessionEvent;
use crate::flight::{FlightRecord, FlightRecorder, FLIGHT_FILE};
use crate::hash::id_hex;
use crate::session::{valid_name, Analyzed, AppendOutcome, Session, SessionEnv};
use crate::storage::{RealStorage, Storage};
use crate::trace;

/// Default WAL size that triggers a checkpoint + compaction.
pub const DEFAULT_CHECKPOINT_BYTES: u64 = 64 * 1024;

/// Construction-time knobs of a [`ServerCore`].
#[derive(Debug, Clone)]
pub struct CoreOptions {
    /// Directory holding one WAL (plus checkpoints) per session.
    pub data_dir: PathBuf,
    /// Enables `debug_panic`, the fault-injection op used by tests and
    /// the smoke driver. Never on in normal serving.
    pub test_ops: bool,
    /// Whether mutation appends `fsync` before being acknowledged.
    /// Defaults to `true`: an acked mutation survives a power cut.
    pub sync_appends: bool,
    /// WAL size (bytes) that triggers a checkpoint; `0` disables.
    pub checkpoint_bytes: u64,
    /// The storage all durable I/O goes through. Defaults to
    /// [`RealStorage`]; tests and the chaos harness substitute
    /// [`ChaosStorage`](crate::storage::ChaosStorage).
    pub storage: Arc<dyn Storage>,
    /// Master switch for serving telemetry (request scopes, latency
    /// histograms, the flight recorder). On by default; the overhead
    /// bench turns it off to measure the instrumented path against a
    /// true no-op baseline.
    pub observe: bool,
    /// Where the Chrome/Perfetto trace is exported on every flight
    /// dump. `None` (the default) keeps trace-event emission off
    /// entirely; spans still tick the logical clock for flight records.
    pub trace_out: Option<PathBuf>,
}

impl CoreOptions {
    /// Production defaults: real storage, synced appends, 64 KiB
    /// checkpoint threshold, debug ops off.
    #[must_use]
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        CoreOptions {
            data_dir: data_dir.into(),
            test_ops: false,
            sync_appends: true,
            checkpoint_bytes: DEFAULT_CHECKPOINT_BYTES,
            storage: Arc::new(RealStorage),
            observe: true,
            trace_out: None,
        }
    }

    /// Enables or disables the test-only ops (`debug_panic`).
    #[must_use]
    pub fn test_ops(mut self, on: bool) -> Self {
        self.test_ops = on;
        self
    }

    /// Sets whether appends `fsync` before acknowledging.
    #[must_use]
    pub fn sync_appends(mut self, on: bool) -> Self {
        self.sync_appends = on;
        self
    }

    /// Sets the checkpoint threshold in bytes (`0` disables).
    #[must_use]
    pub fn checkpoint_bytes(mut self, bytes: u64) -> Self {
        self.checkpoint_bytes = bytes;
        self
    }

    /// Substitutes the storage implementation.
    #[must_use]
    pub fn storage(mut self, storage: Arc<dyn Storage>) -> Self {
        self.storage = storage;
        self
    }

    /// Enables or disables serving telemetry (on by default).
    #[must_use]
    pub fn observe(mut self, on: bool) -> Self {
        self.observe = on;
        self
    }

    /// Sets the trace export path (enables trace-event emission).
    #[must_use]
    pub fn trace_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_out = Some(path.into());
        self
    }
}

/// Shared server state: the session map plus instrumentation.
pub struct ServerCore {
    env: SessionEnv,
    sessions: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
    metrics: RecorderHandle,
    recorder: Arc<MemoryRecorder>,
    /// Enables `debug_panic`, the fault-injection op used by tests and
    /// the smoke driver. Never on in normal serving.
    test_ops: bool,
    panics_isolated: AtomicU64,
    flight: FlightRecorder,
    /// Server-wide logical clock the per-request tick traces are
    /// spliced onto, so the exported trace is one consistent timeline.
    trace_clock: AtomicU64,
    /// Requests handled so far — the deterministic "uptime" unit.
    uptime_ticks: AtomicU64,
    observe: bool,
    trace_out: Option<PathBuf>,
}

impl std::fmt::Debug for ServerCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerCore")
            .field("data_dir", &self.env.data_dir)
            .field("test_ops", &self.test_ops)
            .finish()
    }
}

fn ok_prefix(op: &str) -> String {
    format!("{{\"ok\":true,\"op\":\"{op}\"")
}

fn error_response(kind: &str, message: &str) -> String {
    let mut out = String::from("{\"ok\":false,\"error\":");
    json::write_escaped(&mut out, kind);
    out.push_str(",\"message\":");
    json::write_escaped(&mut out, message);
    out.push('}');
    out
}

/// A parsed request line's addressing fields.
struct Request {
    op: String,
    session: Option<String>,
    parsed: JsonValue,
}

/// The op as a `'static` name, for span/histogram/flight labels.
/// Unknown ops become `"?"` so labels stay a closed set.
fn op_static(op: &str) -> &'static str {
    match op {
        "ping" => "ping",
        "stats" => "stats",
        "metrics" => "metrics",
        "debug_dump" => "debug_dump",
        "open" => "open",
        "mutate" => "mutate",
        "analyze" => "analyze",
        "result" => "result",
        "close" => "close",
        "debug_panic" => "debug_panic",
        _ => "?",
    }
}

/// Histogram name for queue wait of `op`. Only the serving-relevant
/// ops get their own series; the rest pool under `other`.
fn queue_wait_histogram(op: &'static str) -> &'static str {
    match op {
        "open" => "queue_wait_us/open",
        "mutate" => "queue_wait_us/mutate",
        "analyze" => "queue_wait_us/analyze",
        "result" => "queue_wait_us/result",
        _ => "queue_wait_us/other",
    }
}

/// Histogram name for service time of `op` (queue wait excluded).
fn service_histogram(op: &'static str) -> &'static str {
    match op {
        "open" => "service_us/open",
        "mutate" => "service_us/mutate",
        "analyze" => "service_us/analyze",
        "result" => "service_us/result",
        _ => "service_us/other",
    }
}

/// Derives the flight-record outcome tag from the response line. The
/// protocol's responses are shaped by this module, so substring checks
/// against the stable markers are exact, not heuristic.
fn outcome_of(op: &'static str, response: &str) -> String {
    if response.starts_with("{\"ok\":true") {
        if response.contains("\"duplicate\":true") {
            return "ok_duplicate".to_string();
        }
        if response.contains("\"stale\":true") {
            return "ok_stale".to_string();
        }
        if op == "open" && response.contains("\"recovered\":true") {
            return "ok_recovered".to_string();
        }
        return "ok".to_string();
    }
    let kind = response
        .split("\"error\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or("unknown");
    if kind == "panic" {
        "panic".to_string()
    } else {
        format!("error:{kind}")
    }
}

/// The `"seq"` the response acknowledged, if it carries one.
fn response_seq(response: &str) -> Option<u64> {
    let rest = response.split("\"seq\":").nth(1)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

impl ServerCore {
    /// Creates a core with production defaults serving sessions out of
    /// `data_dir` (created if absent).
    ///
    /// # Errors
    ///
    /// When the data directory cannot be created.
    pub fn new(data_dir: impl Into<PathBuf>, test_ops: bool) -> std::io::Result<Self> {
        Self::with_options(CoreOptions::new(data_dir).test_ops(test_ops))
    }

    /// Creates a core with explicit [`CoreOptions`] — the entry point
    /// for chaos storage, alternative durability policies, and custom
    /// checkpoint thresholds.
    ///
    /// # Errors
    ///
    /// When the data directory cannot be created.
    pub fn with_options(options: CoreOptions) -> std::io::Result<Self> {
        let CoreOptions {
            data_dir,
            test_ops,
            sync_appends,
            checkpoint_bytes,
            storage,
            observe,
            trace_out,
        } = options;
        storage.create_dir_all(&data_dir)?;
        // Without a trace sink the collected events could never be
        // exported, so don't pay for collecting them: the metrics-only
        // recorder keeps every counter/gauge/histogram (including
        // span_us/*) but drops the per-span trace events.
        let (recorder, real_metrics) = if trace_out.is_some() {
            MemoryRecorder::handle()
        } else {
            MemoryRecorder::metrics_only_handle()
        };
        // With telemetry off every record call must reduce to one
        // branch, so the core keeps a noop handle; the recorder still
        // exists (stats reads it) but nothing ever reaches it.
        let metrics = if observe {
            real_metrics
        } else {
            RecorderHandle::noop()
        };
        storage.attach_recorder(metrics.clone());
        if trace_out.is_some() {
            metrics.emit(TraceEvent::thread_name(trace::REQUEST_LANE, "requests"));
        }
        let env = SessionEnv {
            storage,
            data_dir,
            sync_appends,
            checkpoint_bytes,
            metrics: metrics.clone(),
        };
        Ok(ServerCore {
            env,
            sessions: Mutex::new(HashMap::new()),
            metrics,
            recorder,
            test_ops,
            panics_isolated: AtomicU64::new(0),
            flight: FlightRecorder::new(),
            trace_clock: AtomicU64::new(0),
            uptime_ticks: AtomicU64::new(0),
            observe,
            trace_out,
        })
    }

    /// The metrics handle (shared with the queue for shed counting).
    #[must_use]
    pub fn metrics(&self) -> RecorderHandle {
        self.metrics.clone()
    }

    /// Number of requests whose panic was isolated so far.
    #[must_use]
    pub fn panics_isolated(&self) -> u64 {
        self.panics_isolated.load(Ordering::Relaxed)
    }

    /// Handles one request line, returning exactly one response line
    /// (no trailing newline). Never panics: request panics are caught,
    /// the touched session is quarantined and rebuilt from its WAL.
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_line_timed(line, None)
    }

    /// [`ServerCore::handle_line`] with the time the request spent
    /// waiting in the work queue, which lands in the per-op
    /// `queue_wait_us/...` histograms (service time is measured here).
    pub fn handle_line_timed(&self, line: &str, queue_wait: Option<Duration>) -> String {
        let request = Self::parse_request(line);
        if !self.observe {
            return match request {
                Ok(req) => self.dispatch_guarded(&req),
                Err(resp) => resp,
            };
        }
        let (op_name, session, req_seq) = match &request {
            Ok(req) => (
                op_static(&req.op),
                req.session.clone(),
                req.parsed
                    .get("seq")
                    .and_then(JsonValue::as_f64)
                    .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                    .map_or(0, |n| n as u64),
            ),
            Err(_) => ("?", None, 0),
        };
        let id = trace::trace_id(session.as_deref(), req_seq);
        trace::begin_request(id, op_name, self.trace_out.is_some());
        let started = Instant::now();
        let response = match request {
            Ok(req) => self.dispatch_guarded(&req),
            Err(resp) => resp,
        };
        let service = started.elapsed();
        let collected = trace::finish_request()
            .unwrap_or_else(|| unreachable!("begin_request installed a scope on this thread"));
        if let Some(wait) = queue_wait {
            self.metrics
                .observe(queue_wait_histogram(op_name), wait.as_micros() as u64);
        }
        self.metrics
            .observe(service_histogram(op_name), service.as_micros() as u64);
        let up = self.uptime_ticks.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.set_gauge(Gauge::UptimeTicks, up);
        if self.trace_out.is_some() {
            // Claim a contiguous tick range on the server-wide clock,
            // then splice the request-local spans into it.
            let base = self
                .trace_clock
                .fetch_add(collected.ticks, Ordering::Relaxed);
            for event in &collected.events {
                let mut event = event.clone();
                event.ts_us += base;
                self.metrics.emit(event);
            }
        }
        let outcome = outcome_of(op_name, &response);
        let panicked = outcome == "panic";
        let recovered_open = op_name == "open" && response.contains("\"recovered\":true");
        self.flight.push(FlightRecord {
            ordinal: 0, // assigned by the ring
            trace_id: id,
            op: op_name.to_string(),
            session,
            outcome,
            seq: response_seq(&response),
            ticks: collected.ticks,
            wal_bytes: collected.wal_bytes,
            ckpt_gen: collected.ckpt_gen,
        });
        if panicked {
            self.write_flight_dump("panic");
        } else if recovered_open {
            self.write_flight_dump("wal_recovery");
        }
        response
    }

    /// Splits a request line into its addressing fields, or the error
    /// response to send back.
    fn parse_request(line: &str) -> Result<Request, String> {
        let parsed = json::parse(line)
            .map_err(|e| error_response("bad_request", &format!("request JSON: {e}")))?;
        let Some(op) = parsed.get("op").and_then(JsonValue::as_str) else {
            return Err(error_response(
                "bad_request",
                "request needs a string \"op\"",
            ));
        };
        let op = op.to_string();
        let session = parsed
            .get("session")
            .and_then(JsonValue::as_str)
            .map(String::from);
        Ok(Request {
            op,
            session,
            parsed,
        })
    }

    fn dispatch_guarded(&self, request: &Request) -> String {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            self.dispatch(&request.op, request.session.as_deref(), &request.parsed)
        }));
        match outcome {
            Ok(response) => response,
            Err(_) => {
                self.panics_isolated.fetch_add(1, Ordering::Relaxed);
                let recovered = request
                    .session
                    .as_deref()
                    .is_some_and(|name| self.quarantine_and_rebuild(name));
                let mut out = String::from(
                    "{\"ok\":false,\"error\":\"panic\",\"message\":\"request panicked; session quarantined\",\"recovered\":",
                );
                out.push_str(if recovered { "true" } else { "false" });
                out.push('}');
                out
            }
        }
    }

    /// Discards the in-memory session (whatever state the panic left it
    /// in) and rebuilds it from its WAL. Returns whether a rebuilt
    /// session is live again.
    fn quarantine_and_rebuild(&self, name: &str) -> bool {
        let mut sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
        sessions.remove(name);
        match Session::recover(&self.env, name) {
            Ok(Some((session, _report))) => {
                self.metrics.add(Counter::WalRecoveries, 1);
                sessions.insert(name.to_string(), Arc::new(Mutex::new(session)));
                true
            }
            Ok(None) | Err(_) => false,
        }
    }

    fn session(&self, name: &str) -> Result<Arc<Mutex<Session>>, String> {
        let sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
        sessions
            .get(name)
            .cloned()
            .ok_or_else(|| error_response("unknown_session", &format!("no open session {name:?}")))
    }

    fn dispatch(&self, op: &str, session_name: Option<&str>, request: &JsonValue) -> String {
        match op {
            "ping" => format!("{}}}", ok_prefix("ping")),
            "stats" => self.op_stats(),
            "metrics" => self.op_metrics(),
            "debug_dump" => self.op_debug_dump(),
            "open" | "mutate" | "analyze" | "result" | "close" | "debug_panic" => {
                let Some(name) = session_name else {
                    return error_response("bad_request", "request needs a string \"session\"");
                };
                if !valid_name(name) {
                    return error_response(
                        "bad_request",
                        "session names are 1-64 chars of [A-Za-z0-9_-]",
                    );
                }
                match op {
                    "open" => self.op_open(name, request),
                    "mutate" => self.op_mutate(name, request),
                    "analyze" => self.op_analyze(name, request),
                    "result" => self.op_result(name),
                    "close" => self.op_close(name),
                    "debug_panic" => self.op_debug_panic(name),
                    _ => unreachable!("guarded above"),
                }
            }
            other => error_response("bad_request", &format!("unknown op {other:?}")),
        }
    }

    fn op_open(&self, name: &str, request: &JsonValue) -> String {
        let Some(scenario) = request.get("scenario").and_then(JsonValue::as_str) else {
            return error_response("bad_request", "open needs a string \"scenario\"");
        };
        // Hold the map lock across the open so two racing opens of the
        // same name cannot both create WALs; opens are rare and cheap
        // (no analysis happens here).
        let mut sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(existing) = sessions.get(name).cloned() {
            // Already live: idempotent iff the scenario matches the
            // log's opening entry.
            let Ok(session) = existing.lock() else {
                return error_response("recovering", "session is being rebuilt; retry");
            };
            let requested = crate::event::entry_id(
                0,
                &SessionEvent::Open {
                    scenario: scenario.to_string(),
                },
            );
            return if requested == session.open_id() {
                format!(
                    "{},\"session\":{},\"seq\":{},\"recovered\":false,\"torn\":false}}",
                    ok_prefix("open"),
                    json::escaped(name),
                    session.current_seq()
                )
            } else {
                error_response(
                    "conflict",
                    "session is already open with a different scenario",
                )
            };
        }
        match Session::open(&self.env, name, scenario) {
            Ok((session, report)) => {
                if report.torn {
                    self.metrics.add(Counter::WalRecoveries, 1);
                }
                self.metrics.add(Counter::SessionsOpen, 1);
                let seq = session.current_seq();
                sessions.insert(name.to_string(), Arc::new(Mutex::new(session)));
                format!(
                    "{},\"session\":{},\"seq\":{},\"recovered\":{},\"torn\":{}}}",
                    ok_prefix("open"),
                    json::escaped(name),
                    seq,
                    report.replayed > 0,
                    report.torn
                )
            }
            Err(e) => error_response(e.kind(), &e.to_string()),
        }
    }

    fn op_mutate(&self, name: &str, request: &JsonValue) -> String {
        let slot = match self.session(name) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let Some(event_json) = request.get("event") else {
            return error_response("bad_request", "mutate needs an \"event\" object");
        };
        let event = match SessionEvent::from_json(event_json) {
            Ok(e) => e,
            Err(e) => return error_response(e.kind, &e.message),
        };
        if matches!(event, SessionEvent::Open { .. }) {
            return error_response("bad_event", "open travels via the open op, not mutate");
        }
        let seq = match request.get("seq") {
            None | Some(JsonValue::Null) => None,
            Some(v) => match v.as_f64().filter(|n| n.fract() == 0.0 && *n >= 0.0) {
                Some(n) => Some(n as u64),
                None => {
                    return error_response("bad_request", "\"seq\" must be a non-negative integer")
                }
            },
        };
        let Ok(mut session) = slot.lock() else {
            return error_response("recovering", "session is being rebuilt; retry");
        };
        match session.append(seq, event) {
            Ok(AppendOutcome::Applied { seq, id }) => format!(
                "{},\"seq\":{seq},\"id\":\"{}\",\"duplicate\":false}}",
                ok_prefix("mutate"),
                id_hex(id)
            ),
            Ok(AppendOutcome::Duplicate { seq, id }) => format!(
                "{},\"seq\":{seq},\"id\":\"{}\",\"duplicate\":true}}",
                ok_prefix("mutate"),
                id_hex(id)
            ),
            Err(e) => error_response(e.kind(), &e.to_string()),
        }
    }

    fn op_analyze(&self, name: &str, request: &JsonValue) -> String {
        let slot = match self.session(name) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let budget = match request.get("deadline_ms") {
            None | Some(JsonValue::Null) => AnalysisBudget::UNLIMITED,
            Some(v) => match v.as_f64().filter(|n| *n >= 0.0 && n.is_finite()) {
                Some(ms) => AnalysisBudget::within(Duration::from_micros((ms * 1000.0) as u64)),
                None => {
                    return error_response(
                        "bad_request",
                        "\"deadline_ms\" must be a non-negative number",
                    )
                }
            },
        };
        let Ok(mut session) = slot.lock() else {
            return error_response("recovering", "session is being rebuilt; retry");
        };
        let current = session.current_seq();
        match session.analyze(budget) {
            Ok(Analyzed::Fresh { body, replayed }) => format!(
                "{},\"seq\":{current},\"stale\":false,\"replayed\":{replayed},\"result\":{body}}}",
                ok_prefix("analyze")
            ),
            Ok(Analyzed::Stale { body, seq }) => {
                self.metrics.add(Counter::StaleServed, 1);
                format!(
                    "{},\"seq\":{current},\"stale\":true,\"result_seq\":{seq},\"result\":{body}}}",
                    ok_prefix("analyze")
                )
            }
            Ok(Analyzed::Partial { body }) => format!(
                "{},\"seq\":{current},\"stale\":false,\"result\":{body}}}",
                ok_prefix("analyze")
            ),
            Err(e) => error_response(e.kind(), &e.to_string()),
        }
    }

    fn op_result(&self, name: &str) -> String {
        let slot = match self.session(name) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let Ok(session) = slot.lock() else {
            return error_response("recovering", "session is being rebuilt; retry");
        };
        match session.last_result() {
            Some((m, stale)) => format!(
                "{},\"seq\":{},\"stale\":{},\"result_seq\":{},\"result\":{}}}",
                ok_prefix("result"),
                session.current_seq(),
                stale,
                m.seq,
                m.body
            ),
            None => error_response("no_result", "session has no materialized result yet"),
        }
    }

    fn op_close(&self, name: &str) -> String {
        let mut sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
        match sessions.remove(name) {
            Some(_) => format!("{}}}", ok_prefix("close")),
            None => error_response("unknown_session", &format!("no open session {name:?}")),
        }
    }

    fn op_debug_panic(&self, name: &str) -> String {
        if !self.test_ops {
            return error_response("bad_request", "debug ops are disabled");
        }
        let slot = match self.session(name) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        // Panic while *holding* the session lock: the worst case the
        // quarantine path must absorb (poisoned mutex, half-done op).
        let _guard = slot.lock();
        panic!("injected debug panic in session {name}");
    }

    fn op_stats(&self) -> String {
        self.refresh_gauges();
        let sessions = {
            let map = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
            map.len()
        };
        let snapshot = self.recorder.snapshot();
        let mut out = format!(
            "{},\"sessions\":{sessions},\"panics_isolated\":{},\"uptime_ticks\":{},\"queue_depth\":{},\"checkpoint_generation\":{},\"counters\":{{",
            ok_prefix("stats"),
            self.panics_isolated(),
            self.uptime_ticks.load(Ordering::Relaxed),
            snapshot.gauge(Gauge::QueueDepth),
            snapshot.gauge(Gauge::CheckpointGeneration),
        );
        for (i, (name, value)) in snapshot.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push_str("}}");
        out
    }

    fn op_metrics(&self) -> String {
        self.refresh_gauges();
        let snapshot = self.recorder.snapshot();
        let mut out = format!(
            "{},\"snapshot\":{},\"exposition\":",
            ok_prefix("metrics"),
            snapshot.to_json()
        );
        json::write_escaped(&mut out, &snapshot.to_prometheus());
        out.push('}');
        out
    }

    fn op_debug_dump(&self) -> String {
        let records = self.flight.snapshot();
        let mut out = format!(
            "{},\"recorded\":{},\"records\":[",
            ok_prefix("debug_dump"),
            self.flight.recorded()
        );
        for (i, record) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&record.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Recomputes the session-derived gauges from the live map; the
    /// queue-depth gauge is owned by the work queue and left alone.
    fn refresh_gauges(&self) {
        if !self.observe {
            return;
        }
        let (live, wal_bytes, ckpt_gen) = {
            let map = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
            let mut wal_bytes = 0u64;
            let mut ckpt_gen = 0u64;
            for slot in map.values() {
                if let Ok(session) = slot.lock() {
                    wal_bytes += session.wal_bytes();
                    ckpt_gen = ckpt_gen.max(session.checkpoint_generation().unwrap_or(0));
                }
            }
            (map.len() as u64, wal_bytes, ckpt_gen)
        };
        self.metrics.set_gauge(Gauge::SessionsLive, live);
        self.metrics.set_gauge(Gauge::WalBytes, wal_bytes);
        self.metrics
            .set_gauge(Gauge::CheckpointGeneration, ckpt_gen);
        self.metrics.set_gauge(
            Gauge::UptimeTicks,
            self.uptime_ticks.load(Ordering::Relaxed),
        );
    }

    /// Dumps the flight ring (and the trace, when tracing) to durable
    /// storage. Best-effort by design: a dump is forensic output, so
    /// storage failures are swallowed rather than turned into request
    /// errors — on chaos storage a crashed disk simply keeps the
    /// previous dump.
    pub fn write_flight_dump(&self, reason: &str) {
        if !self.observe {
            return;
        }
        let dump = self.flight.render_dump(reason);
        let path = self.env.data_dir.join(FLIGHT_FILE);
        let _ = self.env.storage.write(&path, dump.as_bytes());
        if let Some(trace_path) = &self.trace_out {
            let trace_json = self.recorder.chrome_trace().to_json();
            let _ = self.env.storage.write(trace_path, trace_json.as_bytes());
        }
    }

    /// The Chrome trace collected so far, as Perfetto-loadable JSON.
    #[must_use]
    pub fn trace_json(&self) -> String {
        self.recorder.chrome_trace().to_json()
    }

    /// The flight recorder (tests assert on its contents directly).
    #[must_use]
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }
}

impl Drop for ServerCore {
    fn drop(&mut self) {
        self.write_flight_dump("shutdown");
    }
}
