//! The protocol core: one JSON request line in, one response line out.
//!
//! [`ServerCore::handle_line`] is the entire server logic, independent
//! of any transport — the TCP layer, the in-process tests, and the
//! `load_gen` bench all drive exactly this function, so what the tests
//! pin down is what the wire serves.
//!
//! Robustness posture:
//!
//! * every request against a session runs under `catch_unwind`; a panic
//!   **quarantines** the session (the in-memory object — possibly
//!   mid-mutation, possibly holding a poisoned lock — is discarded) and
//!   rebuilds it from its WAL, so one poisoned request can never take
//!   down the server or corrupt durable state;
//! * deadlines arrive as `deadline_ms` and become an
//!   [`AnalysisBudget`]; an expired budget degrades to the last
//!   materialized result with `"stale":true` rather than an error;
//! * all failures are explicit `{"ok":false,"error":<kind>}` responses
//!   with stable kinds — clients never have to parse prose.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use hem_analysis::AnalysisBudget;
use hem_obs::json::{self, JsonValue};
use hem_obs::{Counter, MemoryRecorder, RecorderHandle};

use crate::event::SessionEvent;
use crate::hash::id_hex;
use crate::session::{valid_name, Analyzed, AppendOutcome, Session, SessionEnv};
use crate::storage::{RealStorage, Storage};

/// Default WAL size that triggers a checkpoint + compaction.
pub const DEFAULT_CHECKPOINT_BYTES: u64 = 64 * 1024;

/// Construction-time knobs of a [`ServerCore`].
#[derive(Debug, Clone)]
pub struct CoreOptions {
    /// Directory holding one WAL (plus checkpoints) per session.
    pub data_dir: PathBuf,
    /// Enables `debug_panic`, the fault-injection op used by tests and
    /// the smoke driver. Never on in normal serving.
    pub test_ops: bool,
    /// Whether mutation appends `fsync` before being acknowledged.
    /// Defaults to `true`: an acked mutation survives a power cut.
    pub sync_appends: bool,
    /// WAL size (bytes) that triggers a checkpoint; `0` disables.
    pub checkpoint_bytes: u64,
    /// The storage all durable I/O goes through. Defaults to
    /// [`RealStorage`]; tests and the chaos harness substitute
    /// [`ChaosStorage`](crate::storage::ChaosStorage).
    pub storage: Arc<dyn Storage>,
}

impl CoreOptions {
    /// Production defaults: real storage, synced appends, 64 KiB
    /// checkpoint threshold, debug ops off.
    #[must_use]
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        CoreOptions {
            data_dir: data_dir.into(),
            test_ops: false,
            sync_appends: true,
            checkpoint_bytes: DEFAULT_CHECKPOINT_BYTES,
            storage: Arc::new(RealStorage),
        }
    }

    /// Enables or disables the test-only ops (`debug_panic`).
    #[must_use]
    pub fn test_ops(mut self, on: bool) -> Self {
        self.test_ops = on;
        self
    }

    /// Sets whether appends `fsync` before acknowledging.
    #[must_use]
    pub fn sync_appends(mut self, on: bool) -> Self {
        self.sync_appends = on;
        self
    }

    /// Sets the checkpoint threshold in bytes (`0` disables).
    #[must_use]
    pub fn checkpoint_bytes(mut self, bytes: u64) -> Self {
        self.checkpoint_bytes = bytes;
        self
    }

    /// Substitutes the storage implementation.
    #[must_use]
    pub fn storage(mut self, storage: Arc<dyn Storage>) -> Self {
        self.storage = storage;
        self
    }
}

/// Shared server state: the session map plus instrumentation.
pub struct ServerCore {
    env: SessionEnv,
    sessions: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
    metrics: RecorderHandle,
    recorder: Arc<MemoryRecorder>,
    /// Enables `debug_panic`, the fault-injection op used by tests and
    /// the smoke driver. Never on in normal serving.
    test_ops: bool,
    panics_isolated: AtomicU64,
}

impl std::fmt::Debug for ServerCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerCore")
            .field("data_dir", &self.env.data_dir)
            .field("test_ops", &self.test_ops)
            .finish()
    }
}

fn ok_prefix(op: &str) -> String {
    format!("{{\"ok\":true,\"op\":\"{op}\"")
}

fn error_response(kind: &str, message: &str) -> String {
    let mut out = String::from("{\"ok\":false,\"error\":");
    json::write_escaped(&mut out, kind);
    out.push_str(",\"message\":");
    json::write_escaped(&mut out, message);
    out.push('}');
    out
}

impl ServerCore {
    /// Creates a core with production defaults serving sessions out of
    /// `data_dir` (created if absent).
    ///
    /// # Errors
    ///
    /// When the data directory cannot be created.
    pub fn new(data_dir: impl Into<PathBuf>, test_ops: bool) -> std::io::Result<Self> {
        Self::with_options(CoreOptions::new(data_dir).test_ops(test_ops))
    }

    /// Creates a core with explicit [`CoreOptions`] — the entry point
    /// for chaos storage, alternative durability policies, and custom
    /// checkpoint thresholds.
    ///
    /// # Errors
    ///
    /// When the data directory cannot be created.
    pub fn with_options(options: CoreOptions) -> std::io::Result<Self> {
        let CoreOptions {
            data_dir,
            test_ops,
            sync_appends,
            checkpoint_bytes,
            storage,
        } = options;
        storage.create_dir_all(&data_dir)?;
        let (recorder, metrics) = MemoryRecorder::handle();
        storage.attach_recorder(metrics.clone());
        let env = SessionEnv {
            storage,
            data_dir,
            sync_appends,
            checkpoint_bytes,
            metrics: metrics.clone(),
        };
        Ok(ServerCore {
            env,
            sessions: Mutex::new(HashMap::new()),
            metrics,
            recorder,
            test_ops,
            panics_isolated: AtomicU64::new(0),
        })
    }

    /// The metrics handle (shared with the queue for shed counting).
    #[must_use]
    pub fn metrics(&self) -> RecorderHandle {
        self.metrics.clone()
    }

    /// Number of requests whose panic was isolated so far.
    #[must_use]
    pub fn panics_isolated(&self) -> u64 {
        self.panics_isolated.load(Ordering::Relaxed)
    }

    /// Handles one request line, returning exactly one response line
    /// (no trailing newline). Never panics: request panics are caught,
    /// the touched session is quarantined and rebuilt from its WAL.
    pub fn handle_line(&self, line: &str) -> String {
        let parsed = match json::parse(line) {
            Ok(v) => v,
            Err(e) => return error_response("bad_request", &format!("request JSON: {e}")),
        };
        let Some(op) = parsed.get("op").and_then(JsonValue::as_str) else {
            return error_response("bad_request", "request needs a string \"op\"");
        };
        let op = op.to_string();
        let session_name = parsed
            .get("session")
            .and_then(JsonValue::as_str)
            .map(String::from);
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            self.dispatch(&op, session_name.as_deref(), &parsed)
        }));
        match outcome {
            Ok(response) => response,
            Err(_) => {
                self.panics_isolated.fetch_add(1, Ordering::Relaxed);
                let recovered = session_name
                    .as_deref()
                    .is_some_and(|name| self.quarantine_and_rebuild(name));
                let mut out = String::from(
                    "{\"ok\":false,\"error\":\"panic\",\"message\":\"request panicked; session quarantined\",\"recovered\":",
                );
                out.push_str(if recovered { "true" } else { "false" });
                out.push('}');
                out
            }
        }
    }

    /// Discards the in-memory session (whatever state the panic left it
    /// in) and rebuilds it from its WAL. Returns whether a rebuilt
    /// session is live again.
    fn quarantine_and_rebuild(&self, name: &str) -> bool {
        let mut sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
        sessions.remove(name);
        match Session::recover(&self.env, name) {
            Ok(Some((session, _report))) => {
                self.metrics.add(Counter::WalRecoveries, 1);
                sessions.insert(name.to_string(), Arc::new(Mutex::new(session)));
                true
            }
            Ok(None) | Err(_) => false,
        }
    }

    fn session(&self, name: &str) -> Result<Arc<Mutex<Session>>, String> {
        let sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
        sessions
            .get(name)
            .cloned()
            .ok_or_else(|| error_response("unknown_session", &format!("no open session {name:?}")))
    }

    fn dispatch(&self, op: &str, session_name: Option<&str>, request: &JsonValue) -> String {
        match op {
            "ping" => format!("{}}}", ok_prefix("ping")),
            "stats" => self.op_stats(),
            "open" | "mutate" | "analyze" | "result" | "close" | "debug_panic" => {
                let Some(name) = session_name else {
                    return error_response("bad_request", "request needs a string \"session\"");
                };
                if !valid_name(name) {
                    return error_response(
                        "bad_request",
                        "session names are 1-64 chars of [A-Za-z0-9_-]",
                    );
                }
                match op {
                    "open" => self.op_open(name, request),
                    "mutate" => self.op_mutate(name, request),
                    "analyze" => self.op_analyze(name, request),
                    "result" => self.op_result(name),
                    "close" => self.op_close(name),
                    "debug_panic" => self.op_debug_panic(name),
                    _ => unreachable!("guarded above"),
                }
            }
            other => error_response("bad_request", &format!("unknown op {other:?}")),
        }
    }

    fn op_open(&self, name: &str, request: &JsonValue) -> String {
        let Some(scenario) = request.get("scenario").and_then(JsonValue::as_str) else {
            return error_response("bad_request", "open needs a string \"scenario\"");
        };
        // Hold the map lock across the open so two racing opens of the
        // same name cannot both create WALs; opens are rare and cheap
        // (no analysis happens here).
        let mut sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(existing) = sessions.get(name).cloned() {
            // Already live: idempotent iff the scenario matches the
            // log's opening entry.
            let Ok(session) = existing.lock() else {
                return error_response("recovering", "session is being rebuilt; retry");
            };
            let requested = crate::event::entry_id(
                0,
                &SessionEvent::Open {
                    scenario: scenario.to_string(),
                },
            );
            return if requested == session.open_id() {
                format!(
                    "{},\"session\":{},\"seq\":{},\"recovered\":false,\"torn\":false}}",
                    ok_prefix("open"),
                    json::escaped(name),
                    session.current_seq()
                )
            } else {
                error_response(
                    "conflict",
                    "session is already open with a different scenario",
                )
            };
        }
        match Session::open(&self.env, name, scenario) {
            Ok((session, report)) => {
                if report.torn {
                    self.metrics.add(Counter::WalRecoveries, 1);
                }
                self.metrics.add(Counter::SessionsOpen, 1);
                let seq = session.current_seq();
                sessions.insert(name.to_string(), Arc::new(Mutex::new(session)));
                format!(
                    "{},\"session\":{},\"seq\":{},\"recovered\":{},\"torn\":{}}}",
                    ok_prefix("open"),
                    json::escaped(name),
                    seq,
                    report.replayed > 0,
                    report.torn
                )
            }
            Err(e) => error_response(e.kind(), &e.to_string()),
        }
    }

    fn op_mutate(&self, name: &str, request: &JsonValue) -> String {
        let slot = match self.session(name) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let Some(event_json) = request.get("event") else {
            return error_response("bad_request", "mutate needs an \"event\" object");
        };
        let event = match SessionEvent::from_json(event_json) {
            Ok(e) => e,
            Err(e) => return error_response(e.kind, &e.message),
        };
        if matches!(event, SessionEvent::Open { .. }) {
            return error_response("bad_event", "open travels via the open op, not mutate");
        }
        let seq = match request.get("seq") {
            None | Some(JsonValue::Null) => None,
            Some(v) => match v.as_f64().filter(|n| n.fract() == 0.0 && *n >= 0.0) {
                Some(n) => Some(n as u64),
                None => {
                    return error_response("bad_request", "\"seq\" must be a non-negative integer")
                }
            },
        };
        let Ok(mut session) = slot.lock() else {
            return error_response("recovering", "session is being rebuilt; retry");
        };
        match session.append(seq, event) {
            Ok(AppendOutcome::Applied { seq, id }) => format!(
                "{},\"seq\":{seq},\"id\":\"{}\",\"duplicate\":false}}",
                ok_prefix("mutate"),
                id_hex(id)
            ),
            Ok(AppendOutcome::Duplicate { seq, id }) => format!(
                "{},\"seq\":{seq},\"id\":\"{}\",\"duplicate\":true}}",
                ok_prefix("mutate"),
                id_hex(id)
            ),
            Err(e) => error_response(e.kind(), &e.to_string()),
        }
    }

    fn op_analyze(&self, name: &str, request: &JsonValue) -> String {
        let slot = match self.session(name) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let budget = match request.get("deadline_ms") {
            None | Some(JsonValue::Null) => AnalysisBudget::UNLIMITED,
            Some(v) => match v.as_f64().filter(|n| *n >= 0.0 && n.is_finite()) {
                Some(ms) => AnalysisBudget::within(Duration::from_micros((ms * 1000.0) as u64)),
                None => {
                    return error_response(
                        "bad_request",
                        "\"deadline_ms\" must be a non-negative number",
                    )
                }
            },
        };
        let Ok(mut session) = slot.lock() else {
            return error_response("recovering", "session is being rebuilt; retry");
        };
        let current = session.current_seq();
        match session.analyze(budget) {
            Ok(Analyzed::Fresh { body, replayed }) => format!(
                "{},\"seq\":{current},\"stale\":false,\"replayed\":{replayed},\"result\":{body}}}",
                ok_prefix("analyze")
            ),
            Ok(Analyzed::Stale { body, seq }) => {
                self.metrics.add(Counter::StaleServed, 1);
                format!(
                    "{},\"seq\":{current},\"stale\":true,\"result_seq\":{seq},\"result\":{body}}}",
                    ok_prefix("analyze")
                )
            }
            Ok(Analyzed::Partial { body }) => format!(
                "{},\"seq\":{current},\"stale\":false,\"result\":{body}}}",
                ok_prefix("analyze")
            ),
            Err(e) => error_response(e.kind(), &e.to_string()),
        }
    }

    fn op_result(&self, name: &str) -> String {
        let slot = match self.session(name) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let Ok(session) = slot.lock() else {
            return error_response("recovering", "session is being rebuilt; retry");
        };
        match session.last_result() {
            Some((m, stale)) => format!(
                "{},\"seq\":{},\"stale\":{},\"result_seq\":{},\"result\":{}}}",
                ok_prefix("result"),
                session.current_seq(),
                stale,
                m.seq,
                m.body
            ),
            None => error_response("no_result", "session has no materialized result yet"),
        }
    }

    fn op_close(&self, name: &str) -> String {
        let mut sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
        match sessions.remove(name) {
            Some(_) => format!("{}}}", ok_prefix("close")),
            None => error_response("unknown_session", &format!("no open session {name:?}")),
        }
    }

    fn op_debug_panic(&self, name: &str) -> String {
        if !self.test_ops {
            return error_response("bad_request", "debug ops are disabled");
        }
        let slot = match self.session(name) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        // Panic while *holding* the session lock: the worst case the
        // quarantine path must absorb (poisoned mutex, half-done op).
        let _guard = slot.lock();
        panic!("injected debug panic in session {name}");
    }

    fn op_stats(&self) -> String {
        let sessions = {
            let map = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
            map.len()
        };
        let snapshot = self.recorder.snapshot();
        let mut out = format!(
            "{},\"sessions\":{sessions},\"panics_isolated\":{},\"counters\":{{",
            ok_prefix("stats"),
            self.panics_isolated(),
        );
        for (i, (name, value)) in snapshot.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push_str("}}");
        out
    }
}
