//! Crash-safe analysis-as-a-service for the HEM engine.
//!
//! Serves the compositional fixed-point analysis ([`hem_system`]) as a
//! long-lived multi-session service: clients open a session from a
//! textual scenario ([`hem_system::dsl`]), append timing mutations, and
//! re-analyze — each re-analysis paying only for the damage cone via
//! `analyze_incremental` warm starts.
//!
//! The design is event sourcing end to end:
//!
//! * a session's only durable state is its **log** of mutation events
//!   ([`event`]), each carrying a deterministic content-hash ID so
//!   replays are idempotent;
//! * the log lives in a **checksummed WAL** ([`wal`]) with torn-write
//!   detection: after `kill -9`, recovery truncates the torn tail and
//!   replays the intact prefix into a state bit-identical to an
//!   uninterrupted run;
//! * everything else — the spec, the warm-start snapshot, the
//!   materialized result ([`session`]) — is a cache, rebuilt from the
//!   log on demand (including after a request panic, which quarantines
//!   the session instead of taking down the server, [`core`]);
//! * overload is explicit: a bounded queue ([`queue`]) sheds with
//!   retry-after hints, and per-request deadlines degrade to the last
//!   materialized result with a staleness marker rather than failing;
//! * serving is observable end to end: every request carries a
//!   deterministic trace id through a logical-tick span tree
//!   ([`trace`], exported Perfetto-loadable via `--trace-out`), live
//!   gauges and latency histograms are scraped with the `metrics` op,
//!   and a bounded **flight recorder** ([`flight`]) dumps the recent
//!   request history on panic, WAL recovery, and shutdown.
//!
//! The wire protocol (newline-delimited JSON over TCP, [`net`]) is
//! documented in `docs/SERVING.md`; the telemetry is documented in
//! `docs/OBSERVABILITY.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod checkpoint;
pub mod core;
pub mod event;
pub mod flight;
pub mod hash;
pub mod net;
pub mod queue;
pub mod session;
pub mod storage;
pub mod trace;
pub mod wal;

pub use crate::core::{CoreOptions, ServerCore};
pub use event::{EventError, LogEntry, SessionEvent};
pub use flight::{FlightRecord, FlightRecorder, FLIGHT_FILE};
pub use queue::{Shed, WorkQueue};
pub use session::{Analyzed, AppendOutcome, Session, SessionError};
pub use storage::{ChaosOptions, ChaosStorage, RealStorage, Storage};
pub use wal::{Corruption, Wal, WalError};
