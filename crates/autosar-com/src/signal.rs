//! Signals and their COM transfer properties.

use hem_event_models::{EventModelExt, ModelError, ModelRef, StandardEventModel};
use hem_time::Time;

/// The AUTOSAR COM transfer property of a signal (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferProperty {
    /// Each signal write triggers transmission of its frame (for direct
    /// and mixed frames).
    Triggering,
    /// Writes only update the register; the value is transported by the
    /// next frame transmission and may be overwritten before that.
    Pending,
}

/// A COM signal: a named event stream with a transfer property.
#[derive(Debug, Clone)]
pub struct Signal {
    /// Signal name (unique within its frame).
    pub name: String,
    /// The stream of write events produced by the sending task.
    pub model: ModelRef,
    /// Transfer property.
    pub transfer: TransferProperty,
}

impl Signal {
    /// Creates a signal.
    #[must_use]
    pub fn new(name: impl Into<String>, model: ModelRef, transfer: TransferProperty) -> Self {
        Signal {
            name: name.into(),
            model,
            transfer,
        }
    }

    /// Convenience constructor for a triggering signal.
    #[must_use]
    pub fn triggering(name: impl Into<String>, model: ModelRef) -> Self {
        Self::new(name, model, TransferProperty::Triggering)
    }

    /// Convenience constructor for a pending signal.
    #[must_use]
    pub fn pending(name: impl Into<String>, model: ModelRef) -> Self {
        Self::new(name, model, TransferProperty::Pending)
    }
}

/// How a receiving task consumes a signal from its reception register
/// (paper §4: "either the receiving task fetches the register value from
/// time to time or each time new data is written the process is
/// activated").
///
/// The choice between [`ReceptionMode::Interrupt`] and
/// [`ReceptionMode::EveryFrame`] is exactly the AUTOSAR *update bit*
/// configuration: with update bits the COM layer can tell which signals
/// of a received frame are fresh and notify only their consumers (the
/// unpacked inner stream); without them every frame reception notifies
/// every consumer (the total frame stream) — which is precisely the flat
/// activation model the paper's Table 3 shows to be so pessimistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReceptionMode {
    /// The task is activated per *fresh value* of its signal (update
    /// bits present): its activation stream is the unpacked inner signal
    /// stream.
    Interrupt,
    /// The task is activated on *every* reception of the transporting
    /// frame (no update bits): its activation stream is the total frame
    /// stream.
    EveryFrame,
    /// The task polls the register periodically with the given period:
    /// its activation stream is a plain periodic model, independent of
    /// the signal timing.
    Polling(Time),
}

impl ReceptionMode {
    /// The activation event model of a receiving task, given the
    /// (already unpacked) signal stream and the total frame stream after
    /// transport.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for a polling period < 1.
    pub fn activation_model(
        self,
        unpacked_signal: &ModelRef,
        frame_stream: &ModelRef,
    ) -> Result<ModelRef, ModelError> {
        match self {
            ReceptionMode::Interrupt => Ok(unpacked_signal.clone()),
            ReceptionMode::EveryFrame => Ok(frame_stream.clone()),
            ReceptionMode::Polling(period) => Ok(StandardEventModel::periodic(period)?.shared()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_event_models::EventModel;

    fn periodic(p: i64) -> ModelRef {
        StandardEventModel::periodic(Time::new(p)).unwrap().shared()
    }

    #[test]
    fn constructors_set_transfer() {
        let t = Signal::triggering("a", periodic(100));
        assert_eq!(t.transfer, TransferProperty::Triggering);
        let p = Signal::pending("b", periodic(100));
        assert_eq!(p.transfer, TransferProperty::Pending);
        assert_eq!(p.name, "b");
    }

    #[test]
    fn interrupt_reception_passes_signal_through() {
        let s = periodic(150);
        let f = periodic(50);
        let m = ReceptionMode::Interrupt.activation_model(&s, &f).unwrap();
        assert_eq!(m.delta_min(2), Time::new(150));
    }

    #[test]
    fn every_frame_reception_uses_frame_stream() {
        let s = periodic(150);
        let f = periodic(50);
        let m = ReceptionMode::EveryFrame.activation_model(&s, &f).unwrap();
        assert_eq!(m.delta_min(2), Time::new(50));
    }

    #[test]
    fn polling_reception_is_periodic() {
        let s = periodic(150);
        let f = periodic(50);
        let m = ReceptionMode::Polling(Time::new(40))
            .activation_model(&s, &f)
            .unwrap();
        assert_eq!(m.delta_min(2), Time::new(40));
        assert!(ReceptionMode::Polling(Time::ZERO)
            .activation_model(&s, &f)
            .is_err());
    }
}
