//! AUTOSAR COM-layer model (paper §4).
//!
//! In an AUTOSAR communication stack, application tasks do not send bus
//! messages directly. They write their output data into **registers**
//! provided by the COM layer (overwriting previous values); each register
//! has a fixed position inside a **frame**. The COM layer decides when a
//! frame is transmitted:
//!
//! * a **periodic** frame is sent on a timer, unaffected by signal
//!   arrivals,
//! * a **direct** frame is sent whenever one of its *triggering* signals
//!   arrives,
//! * a **mixed** frame is both: timer *and* triggering signals.
//!
//! Independently, each signal has a *transfer property*: **triggering**
//! signals cause transmission (for direct/mixed frames), **pending**
//! signals only update their register and ride along with the next frame
//! — possibly being overwritten before ever reaching the bus.
//!
//! [`ComFrame::packed`] turns such a frame into a
//! [`HierarchicalEventModel`](hem_core::HierarchicalEventModel) via the
//! pack constructor `Ω_pa`: the frame-activation (outer) stream is the
//! OR-combination of timer + triggering signals (paper eqs. (3),(4) reused
//! for frames), and per-signal inner streams follow eqs. (5)–(8).
//!
//! # Examples
//!
//! ```
//! use hem_autosar_com::{ComFrame, FrameType, Signal, TransferProperty};
//! use hem_event_models::{EventModel, EventModelExt, StandardEventModel};
//! use hem_time::Time;
//!
//! // The paper's frame F1: three signals, two triggering, one pending.
//! let f1 = ComFrame::new("F1", FrameType::Direct, 4, vec![
//!     Signal::new("s1", StandardEventModel::periodic(Time::new(250))?.shared(),
//!                 TransferProperty::Triggering),
//!     Signal::new("s2", StandardEventModel::periodic(Time::new(450))?.shared(),
//!                 TransferProperty::Triggering),
//!     Signal::new("s3", StandardEventModel::periodic(Time::new(600))?.shared(),
//!                 TransferProperty::Pending),
//! ])?;
//! let hem = f1.packed()?;
//! // Frames are triggered by s1 and s2 only: within a 501-tick window at
//! // most 3 s1-frames and 2 s2-frames.
//! assert_eq!(hem.outer().eta_plus(Time::new(501)), 3 + 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod com_frame;
mod signal;

pub use com_frame::{ComError, ComFrame, FrameType, TIMER_SIGNAL_SUFFIX};
pub use signal::{ReceptionMode, Signal, TransferProperty};
