//! COM frames and their hierarchical packing.

use std::error::Error;
use std::fmt;

use hem_core::{
    HierarchicalEventModel, HierarchicalStreamConstructor, PackConstructor, PackInput, StreamRole,
};
use hem_event_models::{EventModelExt, ModelError, StandardEventModel};
use hem_time::Time;

use crate::signal::{Signal, TransferProperty};

/// Suffix of the synthetic timer stream's inner-stream name:
/// `"<frame name>/timer"`.
pub const TIMER_SIGNAL_SUFFIX: &str = "/timer";

/// When the COM layer transmits a frame (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// Sent strictly periodically; signal arrivals never trigger it.
    Periodic(Time),
    /// Sent whenever a triggering signal arrives.
    Direct,
    /// Sent periodically *and* on each triggering signal arrival.
    Mixed(Time),
}

/// Error for invalid COM frame configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComError {
    /// A direct frame has no triggering signal — it would never be sent.
    NoTrigger(String),
    /// A frame has no signals at all.
    Empty(String),
    /// Signal names within the frame collide.
    DuplicateSignal(String),
    /// Construction of the underlying event models failed.
    Model(ModelError),
}

impl fmt::Display for ComError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComError::NoTrigger(frame) => write!(
                f,
                "direct frame `{frame}` has no triggering signal and would never be sent"
            ),
            ComError::Empty(frame) => write!(f, "frame `{frame}` carries no signals"),
            ComError::DuplicateSignal(name) => {
                write!(f, "duplicate signal name `{name}` within one frame")
            }
            ComError::Model(e) => write!(f, "event model construction failed: {e}"),
        }
    }
}

impl Error for ComError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ComError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ComError {
    fn from(e: ModelError) -> Self {
        ComError::Model(e)
    }
}

/// A COM-layer frame: transmission rule, payload size and the signals
/// packed into it.
#[derive(Debug, Clone)]
pub struct ComFrame {
    name: String,
    frame_type: FrameType,
    payload_bytes: u8,
    signals: Vec<Signal>,
}

impl ComFrame {
    /// Creates a frame description.
    ///
    /// # Errors
    ///
    /// * [`ComError::Empty`] if `signals` is empty,
    /// * [`ComError::DuplicateSignal`] on name collisions,
    /// * [`ComError::NoTrigger`] for a [`FrameType::Direct`] frame without
    ///   any [`TransferProperty::Triggering`] signal.
    pub fn new(
        name: impl Into<String>,
        frame_type: FrameType,
        payload_bytes: u8,
        signals: Vec<Signal>,
    ) -> Result<Self, ComError> {
        let name = name.into();
        if signals.is_empty() {
            return Err(ComError::Empty(name));
        }
        for (i, a) in signals.iter().enumerate() {
            if signals[i + 1..].iter().any(|b| b.name == a.name) {
                return Err(ComError::DuplicateSignal(a.name.clone()));
            }
        }
        if frame_type == FrameType::Direct
            && !signals
                .iter()
                .any(|s| s.transfer == TransferProperty::Triggering)
        {
            return Err(ComError::NoTrigger(name));
        }
        Ok(ComFrame {
            name,
            frame_type,
            payload_bytes,
            signals,
        })
    }

    /// The frame name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The transmission rule.
    #[must_use]
    pub fn frame_type(&self) -> FrameType {
        self.frame_type
    }

    /// Payload size in bytes (used by the bus timing model).
    #[must_use]
    pub fn payload_bytes(&self) -> u8 {
        self.payload_bytes
    }

    /// The packed signals.
    #[must_use]
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// Builds the hierarchical event model of this frame's transmission
    /// stream via the pack constructor `Ω_pa`.
    ///
    /// The mapping from COM semantics to pack roles:
    ///
    /// * **Direct** frame — triggering signals trigger; pending signals
    ///   ride along.
    /// * **Periodic** frame — only the synthetic timer triggers; *every*
    ///   signal is treated as pending (signal arrivals do not influence
    ///   transmission), regardless of its declared transfer property.
    /// * **Mixed** frame — timer and triggering signals trigger; pending
    ///   signals ride along.
    ///
    /// The timer appears as an additional inner stream named
    /// `"<frame>/timer"` (the paper treats the timer as "an additional
    /// triggering signal").
    ///
    /// # Errors
    ///
    /// Returns [`ComError::Model`] if the underlying constructors reject
    /// the configuration.
    pub fn packed(&self) -> Result<HierarchicalEventModel, ComError> {
        let mut inputs: Vec<PackInput> = Vec::with_capacity(self.signals.len() + 1);
        let timer_period = match self.frame_type {
            FrameType::Periodic(p) | FrameType::Mixed(p) => Some(p),
            FrameType::Direct => None,
        };
        for s in &self.signals {
            let role = match (self.frame_type, s.transfer) {
                // Periodic frames ignore transfer properties entirely.
                (FrameType::Periodic(_), _) => StreamRole::Pending,
                (_, TransferProperty::Triggering) => StreamRole::Triggering,
                (_, TransferProperty::Pending) => StreamRole::Pending,
            };
            inputs.push(PackInput::new(s.name.clone(), s.model.clone(), role));
        }
        if let Some(p) = timer_period {
            let timer = StandardEventModel::periodic(p)?.shared();
            inputs.push(PackInput::triggering(
                format!("{}{TIMER_SIGNAL_SUFFIX}", self.name),
                timer,
            ));
        }
        Ok(PackConstructor::new(inputs)?.construct()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_event_models::{EventModel, ModelRef};
    use hem_time::TimeBound;

    fn periodic(p: i64) -> ModelRef {
        StandardEventModel::periodic(Time::new(p)).unwrap().shared()
    }

    fn three_signals() -> Vec<Signal> {
        vec![
            Signal::triggering("s1", periodic(250)),
            Signal::triggering("s2", periodic(450)),
            Signal::pending("s3", periodic(600)),
        ]
    }

    #[test]
    fn direct_frame_triggers_on_signals() {
        let f = ComFrame::new("F1", FrameType::Direct, 4, three_signals()).unwrap();
        let hem = f.packed().unwrap();
        // Outer = OR(s1, s2): 3 + 2 arrivals within 601 ticks.
        assert_eq!(hem.outer().eta_plus(Time::new(601)), 3 + 2);
        // No timer inner stream.
        assert!(hem.unpack_by_name("F1/timer").is_none());
        // Triggering inner keeps its timing; pending is resampled.
        assert_eq!(
            hem.unpack_by_name("s1").unwrap().delta_min(2),
            Time::new(250)
        );
        assert_eq!(
            hem.unpack_by_name("s3").unwrap().delta_plus(2),
            TimeBound::Infinite
        );
    }

    #[test]
    fn periodic_frame_ignores_transfer_properties() {
        let f =
            ComFrame::new("F", FrameType::Periodic(Time::new(100)), 4, three_signals()).unwrap();
        let hem = f.packed().unwrap();
        // Outer is exactly the timer.
        assert_eq!(hem.outer().delta_min(2), Time::new(100));
        assert_eq!(hem.outer().delta_plus(2), TimeBound::finite(100));
        // Even the "triggering" s1 is pending here: resampled by frames.
        let s1 = hem.unpack_by_name("s1").unwrap();
        assert_eq!(s1.delta_plus(2), TimeBound::Infinite);
        // δ'⁻(2) = max(250 − 100, 100) = 150.
        assert_eq!(s1.delta_min(2), Time::new(150));
        // Timer is exposed as an inner stream.
        assert!(hem.unpack_by_name("F/timer").is_some());
    }

    #[test]
    fn mixed_frame_combines_timer_and_triggers() {
        let f = ComFrame::new(
            "M",
            FrameType::Mixed(Time::new(500)),
            2,
            vec![
                Signal::triggering("a", periodic(300)),
                Signal::pending("b", periodic(900)),
            ],
        )
        .unwrap();
        let hem = f.packed().unwrap();
        // Outer = OR(a, timer): ⌈Δt/300⌉ + ⌈Δt/500⌉ within 901 ticks = 4 + 2.
        assert_eq!(hem.outer().eta_plus(Time::new(901)), 4 + 2);
        // The pending signal sees a max frame gap δ_out⁺(2) = 300 … wait:
        // OR of periodic 300 and 500 has δ⁺(2) = 300 (the faster stream
        // guarantees a frame at least every 300).
        let b = hem.unpack_by_name("b").unwrap();
        assert_eq!(b.delta_min(2), Time::new(900 - 300));
    }

    #[test]
    fn direct_frame_without_trigger_rejected() {
        let err = ComFrame::new(
            "bad",
            FrameType::Direct,
            1,
            vec![Signal::pending("p", periodic(100))],
        )
        .unwrap_err();
        assert!(matches!(err, ComError::NoTrigger(_)));
        assert!(err.to_string().contains("bad"));
    }

    #[test]
    fn periodic_frame_with_only_pending_is_fine() {
        let f = ComFrame::new(
            "ok",
            FrameType::Periodic(Time::new(200)),
            1,
            vec![Signal::pending("p", periodic(100))],
        )
        .unwrap();
        let hem = f.packed().unwrap();
        assert_eq!(hem.outer().delta_min(2), Time::new(200));
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            ComFrame::new("e", FrameType::Direct, 1, vec![]).unwrap_err(),
            ComError::Empty(_)
        ));
        let dup = ComFrame::new(
            "d",
            FrameType::Direct,
            1,
            vec![
                Signal::triggering("x", periodic(100)),
                Signal::pending("x", periodic(200)),
            ],
        );
        assert!(matches!(dup.unwrap_err(), ComError::DuplicateSignal(_)));
    }

    #[test]
    fn accessors() {
        let f = ComFrame::new("F1", FrameType::Direct, 4, three_signals()).unwrap();
        assert_eq!(f.name(), "F1");
        assert_eq!(f.frame_type(), FrameType::Direct);
        assert_eq!(f.payload_bytes(), 4);
        assert_eq!(f.signals().len(), 3);
    }
}
