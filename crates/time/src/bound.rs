//! [`TimeBound`]: a finite time or positive infinity.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Sub};

use crate::Time;

/// A time value extended with positive infinity.
///
/// The maximum-distance functions `δ⁺(n)` of an event stream may be
/// unbounded: a stream with no minimum arrival rate (e.g. a sporadic
/// stream, or a *pending* AUTOSAR signal whose value can be overwritten
/// before transmission) admits arbitrarily long gaps. `TimeBound` makes
/// that case explicit instead of abusing a sentinel tick value.
///
/// Ordering places [`TimeBound::INFINITE`] above every finite value;
/// addition and subtraction of finite times absorb into infinity.
///
/// # Examples
///
/// ```
/// use hem_time::{Time, TimeBound};
///
/// let f = TimeBound::finite(100);
/// assert_eq!(f + Time::new(20), TimeBound::finite(120));
/// assert_eq!(TimeBound::INFINITE - Time::new(20), TimeBound::INFINITE);
/// assert!(f < TimeBound::INFINITE);
/// assert_eq!(f.as_finite(), Some(Time::new(100)));
/// assert_eq!(TimeBound::INFINITE.as_finite(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeBound {
    /// A finite bound.
    Finite(Time),
    /// No finite bound exists (`+∞`).
    Infinite,
}

impl TimeBound {
    /// Positive infinity.
    pub const INFINITE: TimeBound = TimeBound::Infinite;

    /// Creates a finite bound from raw ticks.
    #[must_use]
    pub const fn finite(ticks: i64) -> Self {
        TimeBound::Finite(Time::new(ticks))
    }

    /// The zero bound.
    pub const ZERO: TimeBound = TimeBound::Finite(Time::ZERO);

    /// Returns the finite value, or `None` if infinite.
    #[must_use]
    pub const fn as_finite(self) -> Option<Time> {
        match self {
            TimeBound::Finite(t) => Some(t),
            TimeBound::Infinite => None,
        }
    }

    /// Returns `true` if the bound is infinite.
    #[must_use]
    pub const fn is_infinite(self) -> bool {
        matches!(self, TimeBound::Infinite)
    }

    /// Returns `true` if the bound is finite.
    #[must_use]
    pub const fn is_finite(self) -> bool {
        matches!(self, TimeBound::Finite(_))
    }

    /// Returns the finite value.
    ///
    /// # Panics
    ///
    /// Panics if the bound is infinite.
    #[must_use]
    pub fn expect_finite(self, msg: &str) -> Time {
        match self {
            TimeBound::Finite(t) => t,
            TimeBound::Infinite => panic!("expected finite time bound: {msg}"),
        }
    }

    /// Clamps a finite negative bound to zero; infinity is unchanged.
    #[must_use]
    pub fn clamp_non_negative(self) -> Self {
        match self {
            TimeBound::Finite(t) => TimeBound::Finite(t.clamp_non_negative()),
            TimeBound::Infinite => TimeBound::Infinite,
        }
    }

    /// The smaller of two bounds (infinity loses to anything finite).
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two bounds (infinity wins).
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Saturating finite addition; infinity absorbs.
    #[must_use]
    pub fn saturating_add(self, rhs: Time) -> Self {
        match self {
            TimeBound::Finite(t) => TimeBound::Finite(t.saturating_add(rhs)),
            TimeBound::Infinite => TimeBound::Infinite,
        }
    }
}

impl fmt::Display for TimeBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Respect width/alignment flags (f.pad), so `{:>8}` works.
        match self {
            TimeBound::Finite(t) => f.pad(&t.ticks().to_string()),
            TimeBound::Infinite => f.pad("inf"),
        }
    }
}

impl From<Time> for TimeBound {
    fn from(t: Time) -> Self {
        TimeBound::Finite(t)
    }
}

impl PartialOrd for TimeBound {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeBound {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (TimeBound::Finite(a), TimeBound::Finite(b)) => a.cmp(b),
            (TimeBound::Finite(_), TimeBound::Infinite) => Ordering::Less,
            (TimeBound::Infinite, TimeBound::Finite(_)) => Ordering::Greater,
            (TimeBound::Infinite, TimeBound::Infinite) => Ordering::Equal,
        }
    }
}

impl Add<Time> for TimeBound {
    type Output = TimeBound;
    fn add(self, rhs: Time) -> TimeBound {
        match self {
            TimeBound::Finite(t) => TimeBound::Finite(t + rhs),
            TimeBound::Infinite => TimeBound::Infinite,
        }
    }
}

impl Add for TimeBound {
    type Output = TimeBound;
    fn add(self, rhs: TimeBound) -> TimeBound {
        match (self, rhs) {
            (TimeBound::Finite(a), TimeBound::Finite(b)) => TimeBound::Finite(a + b),
            _ => TimeBound::Infinite,
        }
    }
}

impl Sub<Time> for TimeBound {
    type Output = TimeBound;
    fn sub(self, rhs: Time) -> TimeBound {
        match self {
            TimeBound::Finite(t) => TimeBound::Finite(t - rhs),
            TimeBound::Infinite => TimeBound::Infinite,
        }
    }
}

impl Mul<i64> for TimeBound {
    type Output = TimeBound;
    fn mul(self, rhs: i64) -> TimeBound {
        match self {
            TimeBound::Finite(t) => TimeBound::Finite(t * rhs),
            TimeBound::Infinite => TimeBound::Infinite,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_places_infinity_last() {
        assert!(TimeBound::finite(i64::MAX) < TimeBound::INFINITE);
        assert!(TimeBound::finite(1) < TimeBound::finite(2));
        assert_eq!(
            TimeBound::INFINITE.cmp(&TimeBound::INFINITE),
            Ordering::Equal
        );
        assert!(TimeBound::INFINITE > TimeBound::finite(0));
    }

    #[test]
    fn arithmetic_absorbs_infinity() {
        assert_eq!(TimeBound::INFINITE + Time::new(7), TimeBound::INFINITE);
        assert_eq!(TimeBound::INFINITE - Time::new(7), TimeBound::INFINITE);
        assert_eq!(TimeBound::INFINITE * 3, TimeBound::INFINITE);
        assert_eq!(
            TimeBound::INFINITE + TimeBound::finite(3),
            TimeBound::INFINITE
        );
        assert_eq!(
            TimeBound::finite(3) + TimeBound::finite(4),
            TimeBound::finite(7)
        );
    }

    #[test]
    fn finite_arithmetic() {
        assert_eq!(TimeBound::finite(10) + Time::new(5), TimeBound::finite(15));
        assert_eq!(TimeBound::finite(10) - Time::new(5), TimeBound::finite(5));
        assert_eq!(TimeBound::finite(10) * 2, TimeBound::finite(20));
    }

    #[test]
    fn accessors() {
        assert_eq!(TimeBound::finite(4).as_finite(), Some(Time::new(4)));
        assert_eq!(TimeBound::INFINITE.as_finite(), None);
        assert!(TimeBound::INFINITE.is_infinite());
        assert!(!TimeBound::INFINITE.is_finite());
        assert!(TimeBound::finite(0).is_finite());
        assert_eq!(TimeBound::from(Time::new(9)), TimeBound::finite(9));
    }

    #[test]
    fn min_max() {
        assert_eq!(
            TimeBound::finite(3).min(TimeBound::INFINITE),
            TimeBound::finite(3)
        );
        assert_eq!(
            TimeBound::finite(3).max(TimeBound::INFINITE),
            TimeBound::INFINITE
        );
        assert_eq!(
            TimeBound::finite(3).max(TimeBound::finite(5)),
            TimeBound::finite(5)
        );
    }

    #[test]
    fn clamp() {
        assert_eq!(
            TimeBound::finite(-4).clamp_non_negative(),
            TimeBound::finite(0)
        );
        assert_eq!(
            TimeBound::INFINITE.clamp_non_negative(),
            TimeBound::INFINITE
        );
    }

    #[test]
    fn display() {
        assert_eq!(TimeBound::finite(5).to_string(), "5");
        assert_eq!(TimeBound::INFINITE.to_string(), "inf");
        assert_eq!(format!("{:>6}", TimeBound::finite(5)), "     5");
        assert_eq!(format!("{:>6}", TimeBound::INFINITE), "   inf");
    }

    #[test]
    #[should_panic(expected = "expected finite")]
    fn expect_finite_panics_on_infinity() {
        let _ = TimeBound::INFINITE.expect_finite("test");
    }
}
