//! Discrete time arithmetic for compositional scheduling analysis.
//!
//! Timing analysis in the CPA framework manipulates two kinds of values:
//!
//! * [`Time`] — a finite, signed number of discrete ticks. Used for
//!   periods, jitters, execution times, response times, and the minimum
//!   distance functions `δ⁻(n)`, which are always finite.
//! * [`TimeBound`] — a [`Time`] or positive infinity. The maximum distance
//!   functions `δ⁺(n)` can be unbounded (e.g. a *pending* AUTOSAR signal may
//!   be overwritten and never transported, so no finite upper distance
//!   bound exists — eq. (8) of the DATE'08 paper).
//!
//! All arithmetic is integer and panics on overflow in debug builds; the
//! magnitudes used in scheduling analysis (periods, response times) are far
//! below `i64` range, and fixed-point iterations are bounded by explicit
//! horizons, so saturating variants are provided only where derived models
//! may legitimately grow large ([`Time::saturating_add`] and friends).
//!
//! # Examples
//!
//! ```
//! use hem_time::{Time, TimeBound};
//!
//! let period = Time::new(250);
//! let jitter = Time::new(40);
//! assert_eq!(period - jitter, Time::new(210));
//!
//! let unbounded = TimeBound::INFINITE;
//! assert!(TimeBound::finite(1_000_000) < unbounded);
//! assert_eq!(unbounded + Time::new(5), TimeBound::INFINITE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bound;
mod time;

pub use bound::TimeBound;
pub use time::Time;

/// Ceiling division for non-negative integers: `⌈a / b⌉`.
///
/// Helper used throughout the event-model closed forms.
///
/// # Panics
///
/// Panics if `b == 0` or if either argument is negative.
///
/// # Examples
///
/// ```
/// assert_eq!(hem_time::div_ceil(7, 3), 3);
/// assert_eq!(hem_time::div_ceil(6, 3), 2);
/// assert_eq!(hem_time::div_ceil(0, 3), 0);
/// ```
#[must_use]
pub fn div_ceil(a: i64, b: i64) -> i64 {
    assert!(a >= 0 && b > 0, "div_ceil requires a >= 0 and b > 0");
    (a + b - 1) / b
}

/// Floor division for non-negative integers: `⌊a / b⌋`.
///
/// # Panics
///
/// Panics if `b == 0` or if either argument is negative.
///
/// # Examples
///
/// ```
/// assert_eq!(hem_time::div_floor(7, 3), 2);
/// assert_eq!(hem_time::div_floor(6, 3), 2);
/// ```
#[must_use]
pub fn div_floor(a: i64, b: i64) -> i64 {
    assert!(a >= 0 && b > 0, "div_floor requires a >= 0 and b > 0");
    a / b
}
