//! The finite [`Time`] newtype.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

/// A finite point in (or span of) discrete time, measured in ticks.
///
/// `Time` deliberately does not distinguish instants from durations: the
/// CPA literature freely mixes window sizes `Δt`, distances `δ(n)` and
/// absolute activation times, and all of them are plain tick counts here.
/// The value is signed so that intermediate expressions such as
/// `(n-1)·P − J` (the standard-event-model `δ⁻`) may dip below zero before
/// being clamped.
///
/// # Examples
///
/// ```
/// use hem_time::Time;
///
/// let p = Time::new(250);
/// assert_eq!(p * 3, Time::new(750));
/// assert_eq!(p.max(Time::ZERO), p);
/// assert_eq!((Time::new(-5)).clamp_non_negative(), Time::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(i64);

impl Time {
    /// The zero tick.
    pub const ZERO: Time = Time(0);
    /// One tick.
    pub const ONE: Time = Time(1);
    /// Largest representable finite time.
    pub const MAX: Time = Time(i64::MAX);

    /// Creates a time value from a raw tick count.
    ///
    /// # Examples
    ///
    /// ```
    /// let t = hem_time::Time::new(42);
    /// assert_eq!(t.ticks(), 42);
    /// ```
    #[must_use]
    pub const fn new(ticks: i64) -> Self {
        Time(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn ticks(self) -> i64 {
        self.0
    }

    /// Returns `true` if this is exactly zero ticks.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if this value is strictly negative.
    #[must_use]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Clamps negative values to [`Time::ZERO`].
    ///
    /// Distance functions are non-negative by definition; intermediate
    /// arithmetic such as `(n−1)·P − J` may go negative and is clamped at
    /// the boundary of every public δ-function.
    #[must_use]
    pub fn clamp_non_negative(self) -> Self {
        Time(self.0.max(0))
    }

    /// Saturating addition (stays finite, clamps at `i64` bounds).
    #[must_use]
    pub fn saturating_add(self, rhs: Time) -> Self {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Time) -> Self {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication by a scalar.
    #[must_use]
    pub fn saturating_mul(self, rhs: i64) -> Self {
        Time(self.0.saturating_mul(rhs))
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, rhs: Time) -> Option<Self> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// Checked multiplication by a scalar; `None` on overflow.
    #[must_use]
    pub fn checked_mul(self, rhs: i64) -> Option<Self> {
        self.0.checked_mul(rhs).map(Time)
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Self {
        Time(self.0.abs())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Respect width/alignment flags (f.pad), so `{:>8}` works.
        f.pad(&self.0.to_string())
    }
}

impl From<i64> for Time {
    fn from(ticks: i64) -> Self {
        Time(ticks)
    }
}

impl From<Time> for i64 {
    fn from(t: Time) -> Self {
        t.0
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<i64> for Time {
    type Output = Time;
    fn mul(self, rhs: i64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<Time> for i64 {
    type Output = Time;
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Div<i64> for Time {
    type Output = Time;
    fn div(self, rhs: i64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Rem<i64> for Time {
    type Output = Time;
    fn rem(self, rhs: i64) -> Time {
        Time(self.0 % rhs)
    }
}

impl Neg for Time {
    type Output = Time;
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Time::new(5).ticks(), 5);
        assert_eq!(Time::from(7i64), Time::new(7));
        assert_eq!(i64::from(Time::new(7)), 7);
        assert!(Time::ZERO.is_zero());
        assert!(!Time::ONE.is_zero());
        assert!(Time::new(-1).is_negative());
        assert!(!Time::ZERO.is_negative());
    }

    #[test]
    fn arithmetic() {
        let a = Time::new(10);
        let b = Time::new(3);
        assert_eq!(a + b, Time::new(13));
        assert_eq!(a - b, Time::new(7));
        assert_eq!(a * 2, Time::new(20));
        assert_eq!(3 * b, Time::new(9));
        assert_eq!(a / 3, Time::new(3));
        assert_eq!(a % 3, Time::new(1));
        assert_eq!(-a, Time::new(-10));
        let mut c = a;
        c += b;
        assert_eq!(c, Time::new(13));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn clamping() {
        assert_eq!(Time::new(-3).clamp_non_negative(), Time::ZERO);
        assert_eq!(Time::new(3).clamp_non_negative(), Time::new(3));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Time::MAX.saturating_add(Time::ONE), Time::MAX);
        assert_eq!(
            Time::new(i64::MIN).saturating_sub(Time::ONE),
            Time::new(i64::MIN)
        );
        assert_eq!(Time::MAX.saturating_mul(2), Time::MAX);
        assert_eq!(Time::new(4).saturating_mul(2), Time::new(8));
    }

    #[test]
    fn checked_ops() {
        assert_eq!(Time::MAX.checked_add(Time::ONE), None);
        assert_eq!(Time::new(2).checked_add(Time::new(3)), Some(Time::new(5)));
        assert_eq!(Time::MAX.checked_mul(2), None);
        assert_eq!(Time::new(2).checked_mul(3), Some(Time::new(6)));
    }

    #[test]
    fn ordering_and_sum() {
        let mut v = vec![Time::new(3), Time::new(1), Time::new(2)];
        v.sort();
        assert_eq!(v, vec![Time::new(1), Time::new(2), Time::new(3)]);
        let s: Time = v.into_iter().sum();
        assert_eq!(s, Time::new(6));
    }

    #[test]
    fn display() {
        assert_eq!(Time::new(42).to_string(), "42");
        assert_eq!(Time::new(-7).to_string(), "-7");
        assert_eq!(format!("{:>6}", Time::new(42)), "    42");
        assert_eq!(format!("{:<6}|", Time::new(42)), "42    |");
    }
}
