//! Service curves: supply-based local analysis in the style of
//! Real-Time Calculus (Thiele et al., cited as \[11\] by the paper).
//!
//! Where the busy-window analyses assume a dedicated processor minus
//! explicitly enumerated interferers, the service-curve view abstracts
//! *whatever* is left of a resource into a lower **service bound**
//! `β(Δ)`: at least `β(Δ)` execution units are available in any window
//! of length `Δ`. Response times follow from the same multi-activation
//! argument as the busy window:
//!
//! ```text
//! R = max_q [ min{ w : β(w) ≥ q·C } − δ⁻(q) ]
//! ```
//!
//! and static-priority composition chains resources: the service left
//! for the next-lower priority is
//!
//! ```text
//! β'(Δ) = max_{0 ≤ λ ≤ Δ} ( β(λ) − C·η⁺(λ) ) clamped at 0.
//! ```
//!
//! Both constructions are validated against the exact SPP busy window in
//! the tests: equal for a sole task on a full resource, never tighter in
//! general (the remaining-service abstraction loses the information that
//! interference and service align).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use hem_event_models::{EventModel, ModelRef};
use hem_time::Time;

use crate::resource::PeriodicResource;
use crate::{AnalysisConfig, AnalysisError, AnalysisTask, ResponseTime, TaskResult};

/// A lower service bound `β(Δ)`: guaranteed execution units in any
/// window of length `Δ`.
///
/// # Contract
///
/// `β(0) = 0`, non-decreasing, and `β(Δ) → ∞` (the resource has a
/// positive long-run rate).
pub trait ServiceCurve: std::fmt::Debug + Send + Sync {
    /// Guaranteed service in any window of length `dt`.
    fn provide(&self, dt: Time) -> Time;

    /// Smallest window guaranteeing `demand` units (pseudo-inverse).
    ///
    /// The default implementation binary-searches [`ServiceCurve::provide`];
    /// override when a closed form exists.
    ///
    /// # Panics
    ///
    /// Panics if `demand` is negative, or if the curve violates its
    /// rate contract (never reaches `demand`).
    fn provide_inverse(&self, demand: Time) -> Time {
        assert!(!demand.is_negative(), "demand must be non-negative");
        if demand.is_zero() {
            return Time::ZERO;
        }
        let mut hi = Time::ONE;
        while self.provide(hi) < demand {
            hi = hi * 2;
            assert!(
                hi.ticks() < 1 << 60,
                "service curve never provides {demand}: no positive rate"
            );
        }
        let mut lo = Time::ZERO;
        while (hi - lo).ticks() > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.provide(mid) >= demand {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

/// Shared handle to a service curve.
pub type ServiceRef = Arc<dyn ServiceCurve>;

/// The full, dedicated resource: `β(Δ) = Δ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FullService;

impl ServiceCurve for FullService {
    fn provide(&self, dt: Time) -> Time {
        dt.clamp_non_negative()
    }

    fn provide_inverse(&self, demand: Time) -> Time {
        demand.clamp_non_negative()
    }
}

/// A rate-latency curve `β(Δ) = max(0, ⌊num·(Δ − latency) / den⌋)` — the
/// standard abstraction of a shaped or arbitrated resource providing a
/// long-run fraction `num/den` of the processor after an initial
/// latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLatency {
    latency: Time,
    num: i64,
    den: i64,
}

impl RateLatency {
    /// Creates a rate-latency service curve.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidTaskSet`] unless `latency ≥ 0` and
    /// `0 < num ≤ den`.
    pub fn new(latency: Time, num: i64, den: i64) -> Result<Self, AnalysisError> {
        if latency.is_negative() || num < 1 || den < num {
            return Err(AnalysisError::invalid(format!(
                "rate-latency needs latency ≥ 0 and 0 < num ≤ den, got ({latency}, {num}/{den})"
            )));
        }
        Ok(RateLatency { latency, num, den })
    }

    /// The initial latency `T`.
    #[must_use]
    pub fn latency(&self) -> Time {
        self.latency
    }

    /// The long-run rate as `(numerator, denominator)`.
    #[must_use]
    pub fn rate(&self) -> (i64, i64) {
        (self.num, self.den)
    }
}

impl ServiceCurve for RateLatency {
    fn provide(&self, dt: Time) -> Time {
        let active = (dt - self.latency).clamp_non_negative();
        Time::new(active.ticks() * self.num / self.den)
    }
}

impl ServiceCurve for PeriodicResource {
    fn provide(&self, dt: Time) -> Time {
        self.sbf(dt)
    }

    fn provide_inverse(&self, demand: Time) -> Time {
        self.sbf_inverse(demand)
    }
}

/// The service remaining after a stream `(input, wcet)` is served with
/// static priority on top of `inner`:
/// `β'(Δ) = max_{0 ≤ λ ≤ Δ} (β(λ) − C·η⁺(λ))⁺`.
///
/// Used to chain static-priority tasks: analyse the highest priority
/// against the raw resource, wrap, analyse the next one against the
/// remainder, and so on ([`fp_analyze`] does exactly that).
#[derive(Debug)]
pub struct RemainingService {
    inner: ServiceRef,
    input: ModelRef,
    wcet: Time,
    /// Chained remainders re-query the same window lengths thousands of
    /// times (each level walks the breakpoints of its consumer); without
    /// memoization the recursion multiplies out.
    cache: Mutex<HashMap<i64, Time>>,
}

impl RemainingService {
    /// Creates the remaining-service curve after serving
    /// `(input, wcet)`.
    #[must_use]
    pub fn new(inner: ServiceRef, input: ModelRef, wcet: Time) -> Self {
        RemainingService {
            inner,
            input,
            wcet,
            cache: Mutex::new(HashMap::new()),
        }
    }

    fn provide_uncached(&self, dt: Time) -> Time {
        // max over λ ∈ [0, Δ] of β(λ) − C·η⁺(λ). The expression only
        // changes value at λ = Δ (β grows) and at arrival breakpoints
        // (η⁺ jumps); evaluating at Δ and just before each breakpoint
        // within [0, Δ] is exact. Breakpoints are δ⁻(n) + 1.
        let mut best = self.inner.provide(dt) - self.wcet * self.input.eta_plus(dt) as i64;
        let mut n = 1u64;
        loop {
            let breakpoint = self.input.delta_min(n) + Time::ONE;
            if breakpoint > dt {
                // λ just before the breakpoint, capped at Δ.
                let lambda = (breakpoint - Time::ONE).min(dt);
                let v = self.inner.provide(lambda) - self.wcet * self.input.eta_plus(lambda) as i64;
                best = best.max(v);
                break;
            }
            let lambda = breakpoint - Time::ONE;
            let v = self.inner.provide(lambda) - self.wcet * self.input.eta_plus(lambda) as i64;
            best = best.max(v);
            n += 1;
        }
        best.clamp_non_negative()
    }
}

impl ServiceCurve for RemainingService {
    fn provide(&self, dt: Time) -> Time {
        if let Some(&v) = self.cache.lock().expect("poisoned").get(&dt.ticks()) {
            return v;
        }
        let v = self.provide_uncached(dt);
        self.cache.lock().expect("poisoned").insert(dt.ticks(), v);
        v
    }
}

/// Response time of one task served by an arbitrary service curve.
///
/// # Errors
///
/// Returns [`AnalysisError::NoConvergence`] if the busy period never
/// closes within the configured limits.
pub fn response_time_with(
    task: &AnalysisTask,
    service: &dyn ServiceCurve,
    config: &AnalysisConfig,
) -> Result<TaskResult, AnalysisError> {
    let mut worst = Time::ZERO;
    let mut q = 1u64;
    loop {
        let w = service.provide_inverse(task.wcet * q as i64);
        if w > config.max_busy_window {
            return Err(AnalysisError::no_convergence(
                &task.name,
                format!("service window exceeded {}", config.max_busy_window),
            ));
        }
        worst = worst.max(w - task.input.delta_min(q));
        if task.input.delta_min(q + 1) >= w {
            return Ok(TaskResult {
                name: task.name.clone(),
                response: ResponseTime::new(task.bcet.min(worst), worst),
                busy_activations: q,
            });
        }
        q += 1;
        if q > config.max_activations {
            return Err(AnalysisError::no_convergence(
                &task.name,
                format!(
                    "busy period did not close within {} activations",
                    config.max_activations
                ),
            ));
        }
    }
}

/// Static-priority analysis by service-curve chaining: tasks must be
/// sorted highest priority first; each consumes from the remainder left
/// by its predecessors.
///
/// More abstract (and never tighter) than [`crate::spp::analyze`]; its
/// value is compositionality — the final remainder describes what a
/// *further* component could still use, without knowing these tasks.
/// Returns per-task results and the final remaining service.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from any level.
pub fn fp_analyze(
    tasks: &[AnalysisTask],
    resource: ServiceRef,
    config: &AnalysisConfig,
) -> Result<(Vec<TaskResult>, ServiceRef), AnalysisError> {
    let mut service = resource;
    let mut results = Vec::with_capacity(tasks.len());
    for task in tasks {
        results.push(response_time_with(task, service.as_ref(), config)?);
        service = Arc::new(RemainingService::new(
            service,
            task.input.clone(),
            task.wcet,
        ));
    }
    Ok((results, service))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spp, Priority};
    use hem_event_models::{EventModelExt, StandardEventModel};

    fn task(name: &str, c: i64, prio: u32, p: i64) -> AnalysisTask {
        AnalysisTask::new(
            name,
            Time::new(c),
            Time::new(c),
            Priority::new(prio),
            StandardEventModel::periodic(Time::new(p)).unwrap().shared(),
        )
    }

    #[test]
    fn full_service_matches_dedicated_busy_window() {
        let t = task("solo", 7, 1, 50);
        let via_service = response_time_with(&t, &FullService, &AnalysisConfig::default()).unwrap();
        let via_spp = spp::response_time(&t, &[], Time::ZERO, &AnalysisConfig::default()).unwrap();
        assert_eq!(via_service.response, via_spp.response);
        assert_eq!(via_service.response.r_plus, Time::new(7));
    }

    #[test]
    fn periodic_resource_is_a_service_curve() {
        let partition = PeriodicResource::new(Time::new(10), Time::new(4)).unwrap();
        let t = task("t", 3, 1, 100);
        let via_service = response_time_with(&t, &partition, &AnalysisConfig::default()).unwrap();
        let via_resource = crate::resource::response_time_on(
            &t,
            &[],
            Time::ZERO,
            &partition,
            &AnalysisConfig::default(),
        )
        .unwrap();
        assert_eq!(via_service.response, via_resource.response);
    }

    #[test]
    fn rate_latency_shapes() {
        // Half rate after latency 5: β(15) = (15−5)/2 = 5.
        let rl = RateLatency::new(Time::new(5), 1, 2).unwrap();
        assert_eq!(rl.provide(Time::new(5)), Time::ZERO);
        assert_eq!(rl.provide(Time::new(15)), Time::new(5));
        // Inverse round trip: smallest window providing each demand.
        for d in 1..30 {
            let d = Time::new(d);
            let w = rl.provide_inverse(d);
            assert!(rl.provide(w) >= d);
            assert!(rl.provide(w - Time::ONE) < d, "w not minimal for {d}");
        }
        assert_eq!(rl.latency(), Time::new(5));
        assert_eq!(rl.rate(), (1, 2));
        assert!(RateLatency::new(Time::new(-1), 1, 2).is_err());
        assert!(RateLatency::new(Time::ZERO, 3, 2).is_err());
        assert!(RateLatency::new(Time::ZERO, 0, 2).is_err());
    }

    #[test]
    fn remaining_service_is_conservative() {
        // β'(Δ) after a periodic consumer never exceeds β(Δ) and never
        // under-reports the long-run remainder.
        let consumer = StandardEventModel::periodic(Time::new(10))
            .unwrap()
            .shared();
        let rem = RemainingService::new(Arc::new(FullService), consumer, Time::new(4));
        let mut prev = Time::ZERO;
        for dt in 0..200 {
            let dt = Time::new(dt);
            let v = rem.provide(dt);
            assert!(v <= FullService.provide(dt));
            assert!(v >= prev, "β' must be non-decreasing at {dt}");
            prev = v;
        }
        // Long-run remainder: 6 of every 10 ticks.
        assert!(rem.provide(Time::new(1_000)) >= Time::new(570));
    }

    #[test]
    fn fp_chain_bounds_spp_from_above() {
        // Service-curve chaining is valid but more abstract than the
        // exact busy window: R_service ≥ R_spp for every task, with
        // equality for the top-priority task.
        let tasks = vec![
            task("t1", 1, 1, 4),
            task("t2", 2, 2, 6),
            task("t3", 3, 3, 12),
        ];
        let (via_service, remainder) =
            fp_analyze(&tasks, Arc::new(FullService), &AnalysisConfig::default()).unwrap();
        let via_spp = spp::analyze(&tasks, &AnalysisConfig::default()).unwrap();
        assert_eq!(via_service[0].response.r_plus, via_spp[0].response.r_plus);
        for (s, e) in via_service.iter().zip(&via_spp) {
            assert!(
                s.response.r_plus >= e.response.r_plus,
                "{}: service {} < exact {}",
                s.name,
                s.response.r_plus,
                e.response.r_plus
            );
        }
        // The final remainder still provides the unused fraction:
        // U = 1/4 + 2/6 + 3/12 = 5/6 → about 1/6 of a long window.
        let left = remainder.provide(Time::new(12_000));
        assert!(left >= Time::new(1_500), "left = {left}");
        assert!(left <= Time::new(2_100), "left = {left}");
    }

    #[test]
    fn overloaded_service_reports_divergence() {
        // Demand 6/10 against a 4/10 partition.
        let partition = PeriodicResource::new(Time::new(10), Time::new(4)).unwrap();
        let t = task("hot", 6, 1, 10);
        let err = response_time_with(
            &t,
            &partition,
            &AnalysisConfig::with_max_busy_window(Time::new(100_000)),
        )
        .unwrap_err();
        assert!(matches!(err, AnalysisError::NoConvergence { .. }));
    }
}
