//! Analysis iteration limits, wall-clock budgets, and observability.

use std::time::{Duration, Instant};

use hem_obs::RecorderHandle;
use hem_time::Time;

/// A wall-clock budget for an analysis run.
///
/// Busy-window iteration caps bound the *work* of a single fixed point;
/// a budget bounds the *time* of a whole analysis (across every local
/// fixed point and every global iteration), which is what an interactive
/// or design-space-exploration caller actually cares about. The default
/// budget is unlimited.
///
/// The budget is checked cooperatively: every fixed-point iteration
/// polls [`AnalysisBudget::exhausted`], so an exhausted budget surfaces
/// as [`AnalysisError::BudgetExhausted`](crate::AnalysisError) within
/// one iteration rather than by aborting a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalysisBudget {
    deadline: Option<Instant>,
}

impl AnalysisBudget {
    /// A budget with no deadline (never exhausted).
    pub const UNLIMITED: AnalysisBudget = AnalysisBudget { deadline: None };

    /// A budget expiring `available` from now.
    #[must_use]
    pub fn within(available: Duration) -> Self {
        AnalysisBudget {
            deadline: Instant::now().checked_add(available),
        }
    }

    /// A budget expiring at the given instant.
    #[must_use]
    pub fn until(deadline: Instant) -> Self {
        AnalysisBudget {
            deadline: Some(deadline),
        }
    }

    /// Whether the deadline has passed.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Time left until the deadline (`None` for an unlimited budget;
    /// zero once exhausted).
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// Safety limits for busy-window fixed-point iterations.
///
/// Busy-window analysis converges only for schedulable (utilization < 1)
/// configurations; for overloaded ones the window grows without bound.
/// These limits turn divergence into a clean
/// [`AnalysisError::NoConvergence`](crate::AnalysisError) instead of an
/// endless loop, and the wall-clock budget turns a slow convergence into
/// a clean [`AnalysisError::BudgetExhausted`](crate::AnalysisError).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Abort when a busy window exceeds this length.
    pub max_busy_window: Time,
    /// Abort after this many activations within one busy period.
    pub max_activations: u64,
    /// Abort a single fixed-point computation after this many iterations.
    pub max_iterations: u64,
    /// Wall-clock budget shared by all fixed points of this analysis.
    pub budget: AnalysisBudget,
    /// Observability sink for counters, histograms, and spans. The
    /// default no-op recorder reduces every hot-path report to a single
    /// branch (see `hem_obs`).
    pub recorder: RecorderHandle,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            max_busy_window: Time::new(10_000_000),
            max_activations: 100_000,
            max_iterations: 100_000,
            budget: AnalysisBudget::UNLIMITED,
            recorder: RecorderHandle::noop(),
        }
    }
}

impl AnalysisConfig {
    /// A configuration with a custom busy-window cap (other limits
    /// default).
    #[must_use]
    pub fn with_max_busy_window(max_busy_window: Time) -> Self {
        AnalysisConfig {
            max_busy_window,
            ..Self::default()
        }
    }

    /// This configuration with the given wall-clock budget.
    #[must_use]
    pub fn with_budget(self, budget: AnalysisBudget) -> Self {
        AnalysisConfig { budget, ..self }
    }

    /// This configuration reporting to the given recorder.
    #[must_use]
    pub fn with_recorder(self, recorder: RecorderHandle) -> Self {
        AnalysisConfig { recorder, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_limits_are_generous() {
        let c = AnalysisConfig::default();
        assert!(c.max_busy_window >= Time::new(1_000_000));
        assert!(c.max_activations >= 1000);
        assert!(c.max_iterations >= 1000);
    }

    #[test]
    fn custom_window_cap() {
        let c = AnalysisConfig::with_max_busy_window(Time::new(500));
        assert_eq!(c.max_busy_window, Time::new(500));
        assert_eq!(c.max_activations, AnalysisConfig::default().max_activations);
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = AnalysisBudget::UNLIMITED;
        assert!(!b.exhausted());
        assert_eq!(b.remaining(), None);
        assert_eq!(AnalysisBudget::default(), b);
    }

    #[test]
    fn elapsed_deadline_exhausts() {
        let b = AnalysisBudget::within(Duration::ZERO);
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
        let generous = AnalysisBudget::within(Duration::from_secs(3600));
        assert!(!generous.exhausted());
        assert!(generous.remaining().is_some_and(|r| r > Duration::ZERO));
    }

    #[test]
    fn until_matches_within() {
        let b = AnalysisBudget::until(Instant::now());
        assert!(b.exhausted());
    }

    #[test]
    fn config_with_budget_keeps_limits() {
        let c = AnalysisConfig::with_max_busy_window(Time::new(500))
            .with_budget(AnalysisBudget::within(Duration::ZERO));
        assert_eq!(c.max_busy_window, Time::new(500));
        assert!(c.budget.exhausted());
    }
}
