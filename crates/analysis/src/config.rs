//! Analysis iteration limits.

use hem_time::Time;

/// Safety limits for busy-window fixed-point iterations.
///
/// Busy-window analysis converges only for schedulable (utilization < 1)
/// configurations; for overloaded ones the window grows without bound.
/// These limits turn divergence into a clean
/// [`AnalysisError::NoConvergence`](crate::AnalysisError) instead of an
/// endless loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Abort when a busy window exceeds this length.
    pub max_busy_window: Time,
    /// Abort after this many activations within one busy period.
    pub max_activations: u64,
    /// Abort a single fixed-point computation after this many iterations.
    pub max_iterations: u64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            max_busy_window: Time::new(10_000_000),
            max_activations: 100_000,
            max_iterations: 100_000,
        }
    }
}

impl AnalysisConfig {
    /// A configuration with a custom busy-window cap (other limits
    /// default).
    #[must_use]
    pub fn with_max_busy_window(max_busy_window: Time) -> Self {
        AnalysisConfig {
            max_busy_window,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_limits_are_generous() {
        let c = AnalysisConfig::default();
        assert!(c.max_busy_window >= Time::new(1_000_000));
        assert!(c.max_activations >= 1000);
        assert!(c.max_iterations >= 1000);
    }

    #[test]
    fn custom_window_cap() {
        let c = AnalysisConfig::with_max_busy_window(Time::new(500));
        assert_eq!(c.max_busy_window, Time::new(500));
        assert_eq!(c.max_activations, AnalysisConfig::default().max_activations);
    }
}
