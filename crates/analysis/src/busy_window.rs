//! Generic monotone fixed-point iteration for busy windows.

use hem_time::Time;

use crate::{AnalysisConfig, AnalysisError};

/// How many fixed-point iterations run between two wall-clock reads of
/// the [`AnalysisBudget`](crate::AnalysisBudget). Polling every
/// iteration would put an `Instant::now()` syscall on the hottest loop
/// of the analysis; 64 iterations keeps cancellation latency in the
/// microsecond range while making the clock cost unmeasurable.
pub const BUDGET_POLL_INTERVAL: u64 = 64;

/// Computes the least fixed point of a monotone window function.
///
/// Busy-window analyses all reduce to solving `w = f(w)` for the smallest
/// `w ≥ init` where `f` is monotone non-decreasing (a sum of
/// load terms `η⁺(w)·C`). Iterating `w ← f(w)` from `init` converges to
/// the least fixed point above `init` or diverges; divergence is cut off
/// by the limits in [`AnalysisConfig`].
///
/// # Errors
///
/// Returns [`AnalysisError::NoConvergence`] if the window exceeds
/// `config.max_busy_window` or the iteration count exceeds
/// `config.max_iterations`, and [`AnalysisError::BudgetExhausted`] if
/// `config.budget` expires mid-iteration (checked cooperatively every
/// [`BUDGET_POLL_INTERVAL`] iterations to keep clock reads off the hot
/// path).
///
/// # Examples
///
/// ```
/// use hem_analysis::{fixed_point, AnalysisConfig};
/// use hem_time::Time;
///
/// // w = 10 + w/2 has fixed point 20 (integer division converges to 19..20).
/// let w = fixed_point("demo", Time::new(10), |w| Time::new(10) + w / 2,
///     &AnalysisConfig::default())?;
/// assert!(w >= Time::new(19) && w <= Time::new(20));
/// # Ok::<(), hem_analysis::AnalysisError>(())
/// ```
pub fn fixed_point(
    task_name: &str,
    init: Time,
    mut f: impl FnMut(Time) -> Time,
    config: &AnalysisConfig,
) -> Result<Time, AnalysisError> {
    // One enabled-check up front; per-fixed-point totals are reported
    // on every exit path without putting any recorder call inside the
    // iteration loop itself.
    let recording = config.recorder.enabled();
    let mut iterations = 0u64;
    let report = |iterations: u64| {
        if recording {
            config.recorder.add_labeled(
                hem_obs::Counter::BusyWindowIterations,
                task_name,
                iterations,
            );
            config
                .recorder
                .observe(hem_obs::HIST_BUSY_WINDOW_ITERATIONS, iterations);
        }
    };
    let mut w = init;
    for i in 0..config.max_iterations {
        if i % BUDGET_POLL_INTERVAL == 0 && config.budget.exhausted() {
            report(iterations);
            return Err(AnalysisError::budget_exhausted(task_name));
        }
        let next = f(w);
        iterations = i + 1;
        debug_assert!(
            next >= w || next >= init,
            "window function must be monotone from init"
        );
        if next > config.max_busy_window {
            report(iterations);
            return Err(AnalysisError::no_convergence(
                task_name,
                format!(
                    "busy window exceeded the configured maximum of {}",
                    config.max_busy_window
                ),
            ));
        }
        if next == w {
            report(iterations);
            return Ok(w);
        }
        w = next;
    }
    report(iterations);
    Err(AnalysisError::no_convergence(
        task_name,
        format!(
            "fixed point not reached within {} iterations",
            config.max_iterations
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_least_fixed_point() {
        // w = 6 + 2·⌈w/10⌉·2 — a typical interference shape.
        let f = |w: Time| Time::new(6) + Time::new(2) * ((w.ticks() + 9) / 10) * 2;
        let w = fixed_point("t", Time::new(6), f, &AnalysisConfig::default()).unwrap();
        assert_eq!(w, f(w));
        // Verify minimality: no smaller fixed point at or above init.
        for cand in 6..w.ticks() {
            assert_ne!(Time::new(cand), f(Time::new(cand)));
        }
    }

    #[test]
    fn detects_divergence_via_window_cap() {
        let cfg = AnalysisConfig::with_max_busy_window(Time::new(1000));
        // w = w + 1 never stabilizes.
        let err = fixed_point("t", Time::ONE, |w| w + Time::ONE, &cfg).unwrap_err();
        assert!(matches!(err, AnalysisError::NoConvergence { .. }));
    }

    #[test]
    fn detects_divergence_via_iteration_cap() {
        let cfg = AnalysisConfig {
            max_iterations: 10,
            ..AnalysisConfig::default()
        };
        let err = fixed_point("t", Time::ONE, |w| w + Time::ONE, &cfg).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("10 iterations"), "got: {msg}");
    }

    #[test]
    fn exhausted_budget_cancels_before_first_iteration() {
        let cfg = AnalysisConfig::default()
            .with_budget(crate::AnalysisBudget::within(std::time::Duration::ZERO));
        let err = fixed_point("t", Time::ONE, |w| w, &cfg).unwrap_err();
        assert!(err.is_budget_exhausted());
        assert!(err.to_string().contains("wall-clock budget"), "{err}");
    }

    #[test]
    fn unlimited_budget_does_not_cancel() {
        let cfg = AnalysisConfig::default();
        assert_eq!(
            fixed_point("t", Time::ONE, |_| Time::ONE, &cfg),
            Ok(Time::ONE)
        );
    }

    #[test]
    fn immediate_fixed_point() {
        let w = fixed_point(
            "t",
            Time::new(42),
            |_| Time::new(42),
            &AnalysisConfig::default(),
        )
        .unwrap();
        assert_eq!(w, Time::new(42));
    }
}
