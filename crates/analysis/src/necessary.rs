//! Cheap **necessary** schedulability tests for pruning candidate
//! configurations before a full busy-window fixed point runs.
//!
//! A necessary test looks at a candidate's per-resource load — each
//! task or frame reduced to its WCET, an *optimistic* activation model
//! (a source-level stream whose `η` curves never exceed the propagated
//! stream the full analysis would use), and an optional deadline — and
//! may reject the candidate outright. The contract is one-sided:
//!
//! > **A rejection implies the full analysis also finds the candidate
//! > infeasible** (a deadline miss or divergence). An admission means
//! > nothing; the full fixed point must still run.
//!
//! The contract holds *because* the supplied activations are optimistic
//! and the tests only certify lower bounds on demand: whatever demand a
//! test exhibits, the full analysis sees at least as much. The
//! exploration engine (`hem-system`'s `explore` module) builds the
//! loads and property tests the contract against the real engine
//! (`crates/system/tests/explore_soundness.rs`).
//!
//! Three tests are provided, in increasing cost:
//!
//! * [`UtilizationBound`] — a lower bound on long-run utilization via
//!   `η⁻` exceeds the resource capacity.
//! * [`EtaLoad`] — an activation burst of some task alone overruns its
//!   deadline: `n·C > δ⁻(n) + D` for some burst length `n`.
//! * [`EdfDbf`] — the processor-demand criterion fails on a preemptive
//!   resource; since EDF is optimal there, no priority assignment can
//!   succeed either.

use hem_event_models::EventModel;
use hem_event_models::ModelRef;
use hem_time::Time;

use crate::assignment::Scheduling;
use crate::dbf::{edf_schedulable, EdfTask, EdfVerdict};
use crate::AnalysisConfig;

/// Strict slack added to the unit-capacity comparison so that loads at
/// *exactly* 1.0 are never pruned (they may still converge).
const UTILIZATION_MARGIN: f64 = 1e-9;

/// Longest self-burst examined by [`EtaLoad`].
const MAX_BURST: u64 = 64;

/// One task (or frame) of a candidate load, reduced to the fields the
/// necessary tests consume.
///
/// `input` must be **optimistic**: a stream whose `η⁺`/`η⁻` curves are
/// pointwise no larger than those of the activation the full analysis
/// will derive (e.g. the raw external source, before propagation adds
/// jitter). A task whose activation cannot be bounded this way should
/// simply be omitted — missing demand only weakens the tests, never
/// breaks the contract.
///
/// A task may appear several times under the same `name` when its
/// activation is a union of several source streams (an OR-join): each
/// *component* is individually optimistic, and long-run rates add up
/// across components.
#[derive(Debug, Clone)]
pub struct LoadTask {
    /// Entity name (task or frame); repeated entries are components of
    /// one OR-joined activation.
    pub name: String,
    /// Worst-case execution (or transmission) time.
    pub wcet: Time,
    /// Relative deadline, if this entity has one.
    pub deadline: Option<Time>,
    /// Optimistic activation stream of this component.
    pub input: ModelRef,
}

/// The load a candidate configuration places on one resource.
#[derive(Debug)]
pub struct ResourceLoad<'a> {
    /// Resource name, used in diagnostics only.
    pub resource: &'a str,
    /// Scheduling policy of the resource ([`EdfDbf`] only applies to
    /// [`Scheduling::Preemptive`] resources).
    pub scheduling: Scheduling,
    /// The demand components, see [`LoadTask`].
    pub tasks: &'a [LoadTask],
    /// Limits for any fixed-point iteration a test may run.
    pub config: &'a AnalysisConfig,
    /// Horizon over which [`UtilizationBound`] estimates long-run
    /// rates; larger is tighter but slower. Must be positive.
    pub horizon: Time,
}

/// A cheap test that can prove a candidate load infeasible.
pub trait NecessaryTest {
    /// Short identifier used in prune diagnostics (`utilization_bound`,
    /// `eta_load`, `edf_dbf`).
    fn name(&self) -> &'static str;

    /// `false` rejects the load: the full analysis is guaranteed to
    /// find it infeasible. `true` means "cannot tell".
    fn admits(&self, load: &ResourceLoad<'_>) -> bool;
}

/// Rejects when a lower bound on the long-run utilization exceeds 1.
///
/// `η⁻(H)/H` never exceeds the long-run rate of a stream (`η⁻` is
/// super-additive), so `Σ C·η⁻(H)/H > 1` proves true demand outruns
/// the resource; every busy window then grows without bound and the
/// full analysis diverges. Components of an OR-join sum, which is
/// exact for unions of streams.
#[derive(Debug, Clone, Copy, Default)]
pub struct UtilizationBound;

impl NecessaryTest for UtilizationBound {
    fn name(&self) -> &'static str {
        "utilization_bound"
    }

    fn admits(&self, load: &ResourceLoad<'_>) -> bool {
        let horizon = load.horizon.ticks().max(1) as f64;
        let lower: f64 = load
            .tasks
            .iter()
            .map(|t| t.wcet.ticks().max(0) as f64 * t.input.eta_minus(load.horizon) as f64)
            .sum::<f64>()
            / horizon;
        lower <= 1.0 + UTILIZATION_MARGIN
    }
}

/// Rejects when a self-burst of one task alone overruns its deadline.
///
/// `n` activations of a task can arrive within `δ⁻(n)`; they are
/// processed in arrival order, so even on an otherwise idle resource
/// the last one completes no earlier than `n·C` after the first
/// arrival, while its deadline expires at `δ⁻(n) + D`. A rejection
/// needs no assumption about other tasks, so it holds under every
/// priority order and policy. `n = 1` degenerates to `C > D`.
#[derive(Debug, Clone, Copy, Default)]
pub struct EtaLoad;

impl NecessaryTest for EtaLoad {
    fn name(&self) -> &'static str {
        "eta_load"
    }

    fn admits(&self, load: &ResourceLoad<'_>) -> bool {
        for task in load.tasks {
            let Some(deadline) = task.deadline else {
                continue;
            };
            let c = task.wcet.ticks().max(0);
            if c == 0 {
                continue;
            }
            for n in 1..=MAX_BURST {
                let spread = task.input.delta_min(n);
                if n as i64 * c > spread.ticks().saturating_add(deadline.ticks()) {
                    return false;
                }
                // Once the burst spreads past n·C the backlog drains
                // and longer bursts cannot get tighter.
                if spread.ticks() >= n as i64 * c {
                    break;
                }
            }
        }
        true
    }
}

/// Rejects when the processor-demand criterion fails on a preemptive
/// resource.
///
/// EDF is optimal on a dedicated preemptive resource: if the demand
/// bound function overruns supply for the deadline-constrained subset,
/// no priority assignment schedules it either. Non-preemptive
/// resources and tasks without deadlines are ignored, and an analysis
/// breakdown (`Err`) admits — only a definite
/// [`EdfVerdict::Overload`] rejects.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdfDbf;

impl NecessaryTest for EdfDbf {
    fn name(&self) -> &'static str {
        "edf_dbf"
    }

    fn admits(&self, load: &ResourceLoad<'_>) -> bool {
        if load.scheduling != Scheduling::Preemptive {
            return true;
        }
        // One component per task: extra components would overstate the
        // union's burst demand, which a necessary test must not do.
        let mut seen: Vec<&str> = Vec::new();
        let mut set: Vec<EdfTask> = Vec::new();
        for task in load.tasks {
            let Some(deadline) = task.deadline else {
                continue;
            };
            if task.wcet.ticks() < 1 || seen.contains(&task.name.as_str()) {
                continue;
            }
            if deadline < task.wcet {
                // Response ≥ C > D: infeasible without any demand
                // argument (also keeps `EdfTask::new` panic-free).
                return false;
            }
            seen.push(&task.name);
            set.push(EdfTask::new(
                &task.name,
                task.wcet,
                deadline,
                task.input.clone(),
            ));
        }
        if set.is_empty() {
            return true;
        }
        match edf_schedulable(&set, load.config) {
            Ok(EdfVerdict::Overload { .. }) => false,
            Ok(EdfVerdict::Schedulable { .. }) | Err(_) => true,
        }
    }
}

/// The standard battery, cheapest first.
#[must_use]
pub fn standard_tests() -> Vec<Box<dyn NecessaryTest>> {
    vec![
        Box::new(UtilizationBound),
        Box::new(EtaLoad),
        Box::new(EdfDbf),
    ]
}

/// Runs the standard battery and returns the name of the first test
/// that rejects the load, or `None` when every test admits it.
#[must_use]
pub fn rejection(load: &ResourceLoad<'_>) -> Option<&'static str> {
    standard_tests()
        .iter()
        .find(|test| !test.admits(load))
        .map(|test| test.name())
}

#[cfg(test)]
mod tests {
    use hem_event_models::{EventModelExt, StandardEventModel};

    use super::*;

    fn periodic(period: i64) -> ModelRef {
        StandardEventModel::periodic(Time::new(period))
            .expect("valid period")
            .shared()
    }

    fn jittery(period: i64, jitter: i64) -> ModelRef {
        StandardEventModel::periodic_with_jitter(Time::new(period), Time::new(jitter))
            .expect("valid source")
            .shared()
    }

    fn task(name: &str, wcet: i64, deadline: Option<i64>, input: ModelRef) -> LoadTask {
        LoadTask {
            name: name.into(),
            wcet: Time::new(wcet),
            deadline: deadline.map(Time::new),
            input,
        }
    }

    fn load<'a>(
        tasks: &'a [LoadTask],
        scheduling: Scheduling,
        config: &'a AnalysisConfig,
    ) -> ResourceLoad<'a> {
        ResourceLoad {
            resource: "r",
            scheduling,
            tasks,
            config,
            horizon: Time::new(1_000_000),
        }
    }

    #[test]
    fn overload_is_rejected_by_the_utilization_bound() {
        let config = AnalysisConfig::default();
        let tasks = vec![
            task("a", 6, Some(10), periodic(10)),
            task("b", 6, Some(10), periodic(10)),
        ];
        let l = load(&tasks, Scheduling::Preemptive, &config);
        assert!(!UtilizationBound.admits(&l));
        assert_eq!(rejection(&l), Some("utilization_bound"));
    }

    #[test]
    fn full_utilization_is_not_pruned() {
        // Exactly 1.0 may still converge; only strict overload prunes.
        let config = AnalysisConfig::default();
        let tasks = vec![task("a", 10, None, periodic(10))];
        let l = load(&tasks, Scheduling::Preemptive, &config);
        assert!(UtilizationBound.admits(&l));
    }

    #[test]
    fn deadline_below_wcet_is_rejected_by_eta_load() {
        let config = AnalysisConfig::default();
        let tasks = vec![task("a", 5, Some(4), periodic(100))];
        let l = load(&tasks, Scheduling::NonPreemptive, &config);
        assert!(!EtaLoad.admits(&l));
        assert_eq!(rejection(&l), Some("eta_load"));
    }

    #[test]
    fn burst_demand_past_the_deadline_is_rejected_by_eta_load() {
        // Jitter 150 on period 100 lets two activations coincide:
        // 2·40 = 80 > δ⁻(2) + D = 0 + 70.
        let config = AnalysisConfig::default();
        let tasks = vec![task("a", 40, Some(70), jittery(100, 150))];
        let l = load(&tasks, Scheduling::Preemptive, &config);
        assert!(!EtaLoad.admits(&l));
    }

    #[test]
    fn edf_overload_is_rejected_on_preemptive_resources_only() {
        // Utilization 0.6 and per-task bursts fine, but both deadlines
        // land at 4 with 6 units of demand released at 0.
        let config = AnalysisConfig::default();
        let tasks = vec![
            task("a", 3, Some(4), periodic(10)),
            task("b", 3, Some(4), periodic(10)),
        ];
        let l = load(&tasks, Scheduling::Preemptive, &config);
        assert!(UtilizationBound.admits(&l));
        assert!(EtaLoad.admits(&l));
        assert!(!EdfDbf.admits(&l));
        assert_eq!(rejection(&l), Some("edf_dbf"));

        let np = load(&tasks, Scheduling::NonPreemptive, &config);
        assert!(EdfDbf.admits(&np));
        assert_eq!(rejection(&np), None);
    }

    #[test]
    fn a_comfortable_load_passes_every_test() {
        let config = AnalysisConfig::default();
        let tasks = vec![
            task("a", 10, Some(100), periodic(100)),
            task("b", 20, Some(200), periodic(200)),
            task("c", 5, None, jittery(300, 50)),
        ];
        let l = load(&tasks, Scheduling::Preemptive, &config);
        assert_eq!(rejection(&l), None);
        for test in standard_tests() {
            assert!(test.admits(&l), "{} rejected a feasible load", test.name());
        }
    }
}
