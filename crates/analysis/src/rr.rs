//! Round-robin busy-window analysis.
//!
//! A round-robin arbiter grants each task a slot of up to `θ_j` every
//! round. The interference task `j` can impose on task `i` during a
//! window `w` is bounded both by `j`'s actual demand (`η_j⁺(w)·C_j⁺`) and
//! by the slot budget of the rounds that `i` itself needs
//! (`⌈q·C_i⁺ / θ_i⌉` rounds, each granting `j` at most `θ_j`):
//!
//! ```text
//! w_i(q) = q·C_i⁺ + Σ_{j≠i} min( η_j⁺(w)·C_j⁺, ⌈q·C_i⁺/θ_i⌉·θ_j )
//! ```
//!
//! This is the simplified round-robin bound used in CPA tooling; it is
//! conservative for work-conserving round-robin with fixed slot order.

use hem_event_models::EventModel;
use hem_time::{div_ceil, Time};

use crate::{fixed_point, AnalysisConfig, AnalysisError, AnalysisTask, ResponseTime, TaskResult};

/// A task on a round-robin resource: the task description plus its slot
/// length.
#[derive(Debug, Clone)]
pub struct RrTask {
    /// The task description (priority is ignored by round-robin).
    pub task: AnalysisTask,
    /// Slot budget `θ` granted to this task per round (≥ 1 tick).
    pub slot: Time,
}

impl RrTask {
    /// Pairs a task with its round-robin slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot < 1`.
    #[must_use]
    pub fn new(task: AnalysisTask, slot: Time) -> Self {
        assert!(
            slot >= Time::ONE,
            "round-robin slot must be at least one tick"
        );
        RrTask { task, slot }
    }
}

/// Analyses one round-robin task against the others on the resource.
///
/// # Errors
///
/// Returns [`AnalysisError::NoConvergence`] when the busy window diverges.
pub fn response_time(
    me: &RrTask,
    others: &[RrTask],
    config: &AnalysisConfig,
) -> Result<TaskResult, AnalysisError> {
    let mut worst = Time::ZERO;
    let mut q = 1u64;
    loop {
        let own = me.task.wcet * q as i64;
        let rounds = div_ceil(own.ticks(), me.slot.ticks());
        let w = fixed_point(
            &me.task.name,
            own,
            |w| {
                let interference: Time = others
                    .iter()
                    .map(|j| {
                        let demand = j.task.wcet * j.task.input.eta_plus(w) as i64;
                        let budget = j.slot * rounds;
                        demand.min(budget)
                    })
                    .sum();
                own + interference
            },
            config,
        )?;
        let response = w - me.task.input.delta_min(q);
        worst = worst.max(response);
        if me.task.input.delta_min(q + 1) >= w {
            return Ok(TaskResult {
                name: me.task.name.clone(),
                response: ResponseTime::new(me.task.bcet.min(worst), worst),
                busy_activations: q,
            });
        }
        q += 1;
        if q > config.max_activations {
            return Err(AnalysisError::no_convergence(
                &me.task.name,
                format!(
                    "busy period did not close within {} activations",
                    config.max_activations
                ),
            ));
        }
    }
}

/// Analyses a complete round-robin task set; results in input order.
///
/// # Errors
///
/// Propagates the first [`AnalysisError`] encountered.
pub fn analyze(
    tasks: &[RrTask],
    config: &AnalysisConfig,
) -> Result<Vec<TaskResult>, AnalysisError> {
    tasks
        .iter()
        .enumerate()
        .map(|(i, me)| {
            let others: Vec<RrTask> = tasks
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, t)| t.clone())
                .collect();
            response_time(me, &others, config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Priority;
    use hem_event_models::{EventModelExt, StandardEventModel};

    fn rr_task(name: &str, cet: i64, period: i64, slot: i64) -> RrTask {
        RrTask::new(
            AnalysisTask::new(
                name,
                Time::new(cet),
                Time::new(cet),
                Priority::new(0),
                StandardEventModel::periodic(Time::new(period))
                    .unwrap()
                    .shared(),
            ),
            Time::new(slot),
        )
    }

    #[test]
    fn slot_budget_caps_interference() {
        // Two equal tasks, C = 10, P = 100, slot = 10: each needs one
        // round; the other contributes at most one slot.
        let a = rr_task("a", 10, 100, 10);
        let b = rr_task("b", 10, 100, 10);
        let r = analyze(&[a, b], &AnalysisConfig::default()).unwrap();
        assert_eq!(r[0].response.r_plus, Time::new(20));
        assert_eq!(r[1].response.r_plus, Time::new(20));
    }

    #[test]
    fn demand_caps_interference_when_light() {
        // Interferer demands only 5 per 1000 ticks; its slot budget (50)
        // never materializes.
        let heavy = rr_task("heavy", 40, 400, 10);
        let light = rr_task("light", 5, 1000, 50);
        let r = response_time(&heavy, &[light], &AnalysisConfig::default()).unwrap();
        // 40 own + min(5·η, 4 rounds · 50) = 40 + 5 = 45.
        assert_eq!(r.response.r_plus, Time::new(45));
    }

    #[test]
    fn fairness_beats_static_priority_for_low_priority_work() {
        // Under round-robin the "background" task is isolated from a
        // bursty peer by its slot budget.
        let bursty = RrTask::new(
            AnalysisTask::new(
                "bursty",
                Time::new(10),
                Time::new(10),
                Priority::new(0),
                StandardEventModel::periodic_with_jitter(Time::new(50), Time::new(400))
                    .unwrap()
                    .shared(),
            ),
            Time::new(10),
        );
        let victim = rr_task("victim", 10, 200, 10);
        let r = response_time(&victim, &[bursty], &AnalysisConfig::default()).unwrap();
        // One round needed: the burst can inject at most one slot (10).
        assert_eq!(r.response.r_plus, Time::new(20));
    }

    #[test]
    fn multiple_rounds_grant_multiple_slots() {
        // C = 30, slot = 10 → 3 rounds; interferer with plenty of demand
        // gets 3 slots of 10.
        let me = rr_task("me", 30, 1000, 10);
        let other = rr_task("other", 10, 25, 10);
        let r = response_time(&me, &[other], &AnalysisConfig::default()).unwrap();
        // w = 30 + min(10·η⁺(w), 30): 30 → 50 (η⁺(30) = 2) → 50
        // (η⁺(50) = 2, the third arrival lands exactly at 50).
        assert_eq!(r.response.r_plus, Time::new(50));
    }

    #[test]
    #[should_panic(expected = "slot must be at least one tick")]
    fn zero_slot_rejected() {
        let _ = rr_task("x", 10, 100, 0);
    }
}
