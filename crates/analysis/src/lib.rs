//! Local (per-resource) scheduling analyses for Compositional Performance
//! Analysis.
//!
//! CPA analyses each resource of a distributed system in isolation using
//! classic busy-window response-time analysis (Lehoczky's technique, as
//! used by Richter's framework — paper §2). This crate provides the three
//! local analyses needed by the DATE'08 HEM paper's evaluation and common
//! extensions:
//!
//! * [`spp`] — static-priority **preemptive** scheduling (the CPU in the
//!   paper's Table 3),
//! * [`spnp`] — static-priority **non-preemptive** scheduling (the CAN
//!   bus arbitration in Table 2),
//! * [`rr`] — round-robin scheduling (a common alternative arbiter).
//!
//! Each analysis consumes [`AnalysisTask`]s — a worst/best-case execution
//! time interval, a priority, and an activating event model — and
//! produces [`TaskResult`]s with the response-time interval `[r⁻, r⁺]`
//! that the output-stream operation `Θ_τ` needs.
//!
//! # Examples
//!
//! ```
//! use hem_analysis::{spp, AnalysisConfig, AnalysisTask, Priority};
//! use hem_event_models::{EventModelExt, StandardEventModel};
//! use hem_time::Time;
//!
//! let tasks = vec![
//!     AnalysisTask::new("hi", Time::new(24), Time::new(24), Priority::new(1),
//!         StandardEventModel::periodic(Time::new(250))?.shared()),
//!     AnalysisTask::new("lo", Time::new(40), Time::new(40), Priority::new(2),
//!         StandardEventModel::periodic(Time::new(400))?.shared()),
//! ];
//! let results = spp::analyze(&tasks, &AnalysisConfig::default())?;
//! assert_eq!(results[0].response.r_plus, Time::new(24));  // no interference
//! assert_eq!(results[1].response.r_plus, Time::new(64));  // one preemption
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
mod busy_window;
mod config;
pub mod dbf;
mod error;
pub mod necessary;
pub mod resource;
pub mod rr;
pub mod service;
pub mod spnp;
pub mod spp;
mod task;
pub mod tdma;
pub mod utilization;

pub use busy_window::{fixed_point, BUDGET_POLL_INTERVAL};
pub use config::{AnalysisBudget, AnalysisConfig};
pub use error::AnalysisError;
pub use task::{AnalysisTask, Priority, ResponseTime, TaskResult};
