//! The periodic resource model for hierarchical scheduling (Shin/Lee,
//! RTSS 2003 — cited as \[8\] by the paper).
//!
//! A component scheduled inside a larger system receives processor time
//! as a *partition* `Γ = (Π, Θ)`: at least `Θ` units of execution in
//! every period of `Π`. The worst-case supply within a window of length
//! `t` is the **supply bound function**
//!
//! ```text
//! sbf(t) = y·Θ + max(0, t − 2(Π − Θ) − y·Π),
//!          y = ⌊(t − (Π − Θ)) / Π⌋     (0 for t < Π − Θ)
//! ```
//!
//! (the supply may be back-loaded in one period and front-loaded in the
//! next, creating a blackout of `2(Π − Θ)`). Local analyses then replace
//! "demand ≤ window" by "demand ≤ sbf(window)": this module provides the
//! SPP busy-window analysis on a partition — the combination of
//! *hierarchical local scheduling* with the paper's *hierarchical event
//! streams*.

use hem_event_models::EventModel;
use hem_time::{div_ceil, Time};

use crate::{fixed_point, AnalysisConfig, AnalysisError, AnalysisTask, ResponseTime, TaskResult};

/// A periodic resource partition `Γ = (Π, Θ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeriodicResource {
    period: Time,
    allocation: Time,
}

impl PeriodicResource {
    /// Creates a partition supplying `allocation` units every `period`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidTaskSet`] unless
    /// `1 ≤ allocation ≤ period`.
    pub fn new(period: Time, allocation: Time) -> Result<Self, AnalysisError> {
        if period < Time::ONE || allocation < Time::ONE || allocation > period {
            return Err(AnalysisError::invalid(format!(
                "periodic resource needs 1 ≤ Θ ≤ Π, got Θ = {allocation}, Π = {period}"
            )));
        }
        Ok(PeriodicResource { period, allocation })
    }

    /// The replenishment period `Π`.
    #[must_use]
    pub fn period(&self) -> Time {
        self.period
    }

    /// The guaranteed allocation `Θ` per period.
    #[must_use]
    pub fn allocation(&self) -> Time {
        self.allocation
    }

    /// The long-run fraction of the processor this partition provides.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.allocation.ticks() as f64 / self.period.ticks() as f64
    }

    /// The supply bound function `sbf(t)`: minimum guaranteed execution
    /// within any window of length `t`.
    #[must_use]
    pub fn sbf(&self, t: Time) -> Time {
        let gap = self.period - self.allocation;
        if t <= gap {
            return Time::ZERO;
        }
        let y = (t - gap).ticks() / self.period.ticks();
        let full = self.allocation * y;
        let partial = (t - gap * 2 - self.period * y).clamp_non_negative();
        full + partial.min(self.allocation)
    }

    /// The pseudo-inverse of `sbf`: the smallest window guaranteeing
    /// `demand` units of supply.
    ///
    /// # Panics
    ///
    /// Panics if `demand` is negative.
    #[must_use]
    pub fn sbf_inverse(&self, demand: Time) -> Time {
        assert!(!demand.is_negative(), "demand must be non-negative");
        if demand.is_zero() {
            return Time::ZERO;
        }
        let gap = self.period - self.allocation;
        // k full allocations are needed; the last may be partial.
        let k = div_ceil(demand.ticks(), self.allocation.ticks());
        let partial = demand - self.allocation * (k - 1);
        gap * 2 + self.period * (k - 1) + partial
    }
}

/// SPP busy-window analysis on a periodic resource partition.
///
/// Identical to [`crate::spp::response_time`] except that the busy
/// window must also *receive* enough supply: the completion window of
/// the `q`-th activation is the least `w` with
///
/// ```text
/// sbf(w) ≥ q·C_i + B_i + Σ_{j ∈ hp(i)} η_j⁺(w)·C_j
/// ```
///
/// # Errors
///
/// Returns [`AnalysisError::NoConvergence`] on partition overload.
pub fn response_time_on(
    task: &AnalysisTask,
    interferers: &[AnalysisTask],
    blocking: Time,
    resource: &PeriodicResource,
    config: &AnalysisConfig,
) -> Result<TaskResult, AnalysisError> {
    let hp: Vec<&AnalysisTask> = interferers
        .iter()
        .filter(|t| !task.priority.is_higher_than(t.priority))
        .collect();
    let mut worst = Time::ZERO;
    let mut q = 1u64;
    loop {
        let base = task.wcet * q as i64 + blocking;
        let w = fixed_point(
            &task.name,
            resource.sbf_inverse(base),
            |w| {
                let demand: Time = base
                    + hp.iter()
                        .map(|j| j.wcet * j.input.eta_plus(w) as i64)
                        .sum::<Time>();
                resource.sbf_inverse(demand)
            },
            config,
        )?;
        let response = w - task.input.delta_min(q);
        worst = worst.max(response);
        if task.input.delta_min(q + 1) >= w {
            return Ok(TaskResult {
                name: task.name.clone(),
                response: ResponseTime::new(task.bcet.min(worst), worst),
                busy_activations: q,
            });
        }
        q += 1;
        if q > config.max_activations {
            return Err(AnalysisError::no_convergence(
                &task.name,
                format!(
                    "busy period did not close within {} activations",
                    config.max_activations
                ),
            ));
        }
    }
}

/// Analyses a complete SPP task set on a partition; results in input
/// order.
///
/// # Errors
///
/// Propagates the first [`AnalysisError`] encountered.
pub fn analyze_on(
    tasks: &[AnalysisTask],
    resource: &PeriodicResource,
    config: &AnalysisConfig,
) -> Result<Vec<TaskResult>, AnalysisError> {
    tasks
        .iter()
        .enumerate()
        .map(|(i, task)| {
            let others: Vec<AnalysisTask> = tasks
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, t)| t.clone())
                .collect();
            response_time_on(task, &others, Time::ZERO, resource, config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spp, Priority};
    use hem_event_models::{EventModelExt, StandardEventModel};

    fn task(name: &str, c: i64, prio: u32, p: i64) -> AnalysisTask {
        AnalysisTask::new(
            name,
            Time::new(c),
            Time::new(c),
            Priority::new(prio),
            StandardEventModel::periodic(Time::new(p)).unwrap().shared(),
        )
    }

    #[test]
    fn sbf_shape() {
        // Π = 10, Θ = 4: blackout 2(Π−Θ) = 12, then 4 per 10.
        let r = PeriodicResource::new(Time::new(10), Time::new(4)).unwrap();
        assert_eq!(r.sbf(Time::ZERO), Time::ZERO);
        assert_eq!(r.sbf(Time::new(12)), Time::ZERO);
        assert_eq!(r.sbf(Time::new(13)), Time::new(1));
        assert_eq!(r.sbf(Time::new(16)), Time::new(4));
        assert_eq!(r.sbf(Time::new(20)), Time::new(4)); // next blackout
        assert_eq!(r.sbf(Time::new(23)), Time::new(5));
        assert_eq!(r.sbf(Time::new(26)), Time::new(8));
        assert!((r.utilization() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn sbf_full_allocation_resource_is_identity_like() {
        // Θ = Π: the partition is the whole processor, sbf(t) = t.
        let r = PeriodicResource::new(Time::new(10), Time::new(10)).unwrap();
        for t in 0..50 {
            assert_eq!(r.sbf(Time::new(t)), Time::new(t));
        }
    }

    #[test]
    fn sbf_inverse_roundtrip() {
        let r = PeriodicResource::new(Time::new(10), Time::new(4)).unwrap();
        for demand in 1..40 {
            let d = Time::new(demand);
            let t = r.sbf_inverse(d);
            assert!(r.sbf(t) >= d, "demand {d}: sbf({t}) = {}", r.sbf(t));
            assert!(r.sbf(t - Time::ONE) < d, "t not minimal for demand {d}");
        }
        assert_eq!(r.sbf_inverse(Time::ZERO), Time::ZERO);
    }

    #[test]
    fn partition_analysis_matches_dedicated_for_full_supply() {
        let full = PeriodicResource::new(Time::new(5), Time::new(5)).unwrap();
        let tasks = vec![task("a", 2, 1, 20), task("b", 5, 2, 30)];
        let on_partition = analyze_on(&tasks, &full, &AnalysisConfig::default()).unwrap();
        let dedicated = spp::analyze(&tasks, &AnalysisConfig::default()).unwrap();
        assert_eq!(on_partition, dedicated);
    }

    #[test]
    fn partition_stretches_responses() {
        let half = PeriodicResource::new(Time::new(10), Time::new(5)).unwrap();
        let tasks = vec![task("a", 2, 1, 50), task("b", 5, 2, 60)];
        let on_partition = analyze_on(&tasks, &half, &AnalysisConfig::default()).unwrap();
        let dedicated = spp::analyze(&tasks, &AnalysisConfig::default()).unwrap();
        for (p, d) in on_partition.iter().zip(&dedicated) {
            assert!(
                p.response.r_plus > d.response.r_plus,
                "{}: partition {} vs dedicated {}",
                p.name,
                p.response.r_plus,
                d.response.r_plus
            );
        }
        // a: demand 2 → sbf⁻¹(2) = 2·5 + 0·10 + 2 = 12.
        assert_eq!(on_partition[0].response.r_plus, Time::new(12));
    }

    #[test]
    fn partition_overload_detected() {
        // Partition supplies 2/10; task needs 5/20 > 0.2.
        let thin = PeriodicResource::new(Time::new(10), Time::new(2)).unwrap();
        let tasks = vec![task("a", 5, 1, 20)];
        let err = analyze_on(
            &tasks,
            &thin,
            &AnalysisConfig::with_max_busy_window(Time::new(100_000)),
        )
        .unwrap_err();
        assert!(matches!(err, AnalysisError::NoConvergence { .. }));
    }

    #[test]
    fn rejects_invalid_partitions() {
        assert!(PeriodicResource::new(Time::new(10), Time::ZERO).is_err());
        assert!(PeriodicResource::new(Time::new(10), Time::new(11)).is_err());
        assert!(PeriodicResource::new(Time::ZERO, Time::ZERO).is_err());
    }

    #[test]
    fn edf_on_partition_via_supply_hook() {
        use crate::dbf::{edf_schedulable_with_supply, EdfTask};
        let r = PeriodicResource::new(Time::new(10), Time::new(6)).unwrap();
        let tasks = vec![EdfTask::new(
            "t",
            Time::new(4),
            Time::new(30),
            StandardEventModel::periodic(Time::new(40))
                .unwrap()
                .shared(),
        )];
        let v = edf_schedulable_with_supply(
            &tasks,
            |dt| r.sbf(dt),
            "partition",
            &AnalysisConfig::default(),
        )
        .unwrap();
        assert!(v.is_schedulable(), "{v:?}");
        // Deadline shorter than the blackout + service: unschedulable.
        let tight = vec![EdfTask::new(
            "t",
            Time::new(4),
            Time::new(9),
            StandardEventModel::periodic(Time::new(40))
                .unwrap()
                .shared(),
        )];
        let v = edf_schedulable_with_supply(
            &tight,
            |dt| r.sbf(dt),
            "partition",
            &AnalysisConfig::default(),
        )
        .unwrap();
        assert!(!v.is_schedulable());
    }
}
