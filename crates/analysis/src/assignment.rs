//! Optimal priority assignment (Audsley's algorithm).
//!
//! Response-time analysis answers "does this priority order work?";
//! Audsley's Optimal Priority Assignment (OPA) answers "is there *any*
//! priority order that works?" — in `O(n²)` analysis calls instead of
//! `n!`. It assigns the lowest priority level first: any task whose
//! response time at the lowest level (all others interfering) meets its
//! deadline may take that level; recurse on the rest. If at some level
//! no task fits, **no** static priority order is feasible (for analyses
//! where a task's response depends only on the *set* of higher-priority
//! tasks, which holds for both SPP and SPNP busy windows).

use hem_event_models::ModelRef;
use hem_time::Time;

use crate::{spnp, spp, AnalysisConfig, AnalysisError, AnalysisTask, Priority};

/// A task with a deadline but no priority — the input to priority
/// assignment.
#[derive(Debug, Clone)]
pub struct DeadlineTask {
    /// Task name.
    pub name: String,
    /// Best-case execution time.
    pub bcet: Time,
    /// Worst-case execution time.
    pub wcet: Time,
    /// Relative deadline the response time must meet.
    pub deadline: Time,
    /// Activating event stream.
    pub input: ModelRef,
}

impl DeadlineTask {
    /// Creates a deadline task.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`AnalysisTask::new`], or if
    /// `deadline < 1`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        bcet: Time,
        wcet: Time,
        deadline: Time,
        input: ModelRef,
    ) -> Self {
        assert!(deadline >= Time::ONE, "deadline must be at least one tick");
        DeadlineTask {
            name: name.into(),
            bcet,
            wcet,
            deadline,
            input,
        }
    }

    fn with_priority(&self, priority: Priority) -> AnalysisTask {
        AnalysisTask::new(
            self.name.clone(),
            self.bcet,
            self.wcet,
            priority,
            self.input.clone(),
        )
    }
}

/// Which local analysis the assignment should be optimal for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheduling {
    /// Static-priority preemptive (CPU).
    Preemptive,
    /// Static-priority non-preemptive (CAN-style arbitration).
    NonPreemptive,
}

/// Runs Audsley's OPA. On success, returns the task names ordered from
/// highest to lowest priority; returns `None` when no static priority
/// assignment meets all deadlines.
///
/// # Errors
///
/// Returns [`AnalysisError`] only for analysis breakdowns unrelated to
/// schedulability verdicts (iteration caps on pathological inputs); a
/// diverging busy window at some level simply means "this task does not
/// fit at this level" and is handled internally.
pub fn audsley(
    tasks: &[DeadlineTask],
    scheduling: Scheduling,
    config: &AnalysisConfig,
) -> Result<Option<Vec<String>>, AnalysisError> {
    let n = tasks.len();
    let mut order: Vec<Option<&DeadlineTask>> = vec![None; n]; // index = level, 0 = highest
    let mut unassigned: Vec<&DeadlineTask> = tasks.iter().collect();

    // Assign levels from lowest (n−1) upwards.
    for level in (0..n).rev() {
        let mut placed = None;
        for (i, cand) in unassigned.iter().enumerate() {
            if fits_at_lowest(cand, &unassigned, &order[level + 1..], scheduling, config) {
                placed = Some(i);
                break;
            }
        }
        match placed {
            Some(i) => order[level] = Some(unassigned.swap_remove(i)),
            None => return Ok(None),
        }
    }
    Ok(Some(
        order
            .into_iter()
            .map(|t| t.expect("all levels filled").name.clone())
            .collect(),
    ))
}

/// Checks whether `cand` meets its deadline at the lowest open level:
/// all other `unassigned` tasks interfere from above, all already
/// `assigned_below` tasks sit below (relevant only for non-preemptive
/// blocking).
fn fits_at_lowest(
    cand: &DeadlineTask,
    unassigned: &[&DeadlineTask],
    assigned_below: &[Option<&DeadlineTask>],
    scheduling: Scheduling,
    config: &AnalysisConfig,
) -> bool {
    // Synthetic unique priorities: interferers above the candidate at
    // 0..m, the candidate at m, already-assigned lower levels below it.
    let interferers: Vec<&DeadlineTask> = unassigned
        .iter()
        .filter(|t| t.name != cand.name)
        .copied()
        .collect();
    let m = interferers.len() as u32;
    let candidate = cand.with_priority(Priority::new(m));
    let mut others: Vec<AnalysisTask> = interferers
        .iter()
        .enumerate()
        .map(|(k, t)| t.with_priority(Priority::new(k as u32)))
        .collect();
    let result = match scheduling {
        Scheduling::Preemptive => {
            // Lower levels are irrelevant under preemption.
            spp::response_time(&candidate, &others, Time::ZERO, config)
        }
        Scheduling::NonPreemptive => {
            // Lower levels contribute blocking.
            for (k, below) in assigned_below.iter().flatten().enumerate() {
                others.push(below.with_priority(Priority::new(m + 1 + k as u32)));
            }
            spnp::response_time(&candidate, &others, config)
        }
    };
    match result {
        Ok(r) => r.response.r_plus <= cand.deadline,
        Err(_) => false, // diverging busy window ⇒ does not fit here
    }
}

/// Deadline-monotonic assignment (shorter deadline = higher priority) —
/// the classic heuristic, provided for comparison. Returns names from
/// highest to lowest priority.
#[must_use]
pub fn deadline_monotonic(tasks: &[DeadlineTask]) -> Vec<String> {
    let mut sorted: Vec<&DeadlineTask> = tasks.iter().collect();
    sorted.sort_by_key(|t| t.deadline);
    sorted.into_iter().map(|t| t.name.clone()).collect()
}

/// Verifies that a priority order (highest first) meets every deadline
/// under the given scheduling.
///
/// # Errors
///
/// Propagates analysis errors (a diverging busy window means the order
/// is infeasible and is reported as `Ok(false)`).
pub fn order_is_feasible(
    tasks: &[DeadlineTask],
    order: &[String],
    scheduling: Scheduling,
    config: &AnalysisConfig,
) -> Result<bool, AnalysisError> {
    let prioritized: Vec<AnalysisTask> = order
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let t = tasks
                .iter()
                .find(|t| &t.name == name)
                .expect("order names a known task");
            t.with_priority(Priority::new(i as u32))
        })
        .collect();
    let results = match scheduling {
        Scheduling::Preemptive => spp::analyze(&prioritized, config),
        Scheduling::NonPreemptive => spnp::analyze(&prioritized, config),
    };
    match results {
        Ok(results) => Ok(results.iter().zip(order).all(|(r, name)| {
            let t = tasks.iter().find(|t| &t.name == name).expect("known task");
            r.response.r_plus <= t.deadline
        })),
        Err(AnalysisError::NoConvergence { .. }) => Ok(false),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_event_models::{EventModelExt, StandardEventModel};

    fn dt(name: &str, c: i64, d: i64, p: i64) -> DeadlineTask {
        DeadlineTask::new(
            name,
            Time::new(c),
            Time::new(c),
            Time::new(d),
            StandardEventModel::periodic(Time::new(p)).unwrap().shared(),
        )
    }

    fn dt_jitter(name: &str, c: i64, d: i64, p: i64, j: i64) -> DeadlineTask {
        DeadlineTask::new(
            name,
            Time::new(c),
            Time::new(c),
            Time::new(d),
            StandardEventModel::periodic_with_jitter(Time::new(p), Time::new(j))
                .unwrap()
                .shared(),
        )
    }

    #[test]
    fn finds_rate_monotonic_order_for_harmonic_set() {
        let tasks = vec![dt("slow", 10, 100, 100), dt("fast", 2, 10, 10)];
        let order = audsley(&tasks, Scheduling::Preemptive, &AnalysisConfig::default())
            .unwrap()
            .expect("feasible");
        assert_eq!(order, vec!["fast".to_string(), "slow".to_string()]);
        assert!(order_is_feasible(
            &tasks,
            &order,
            Scheduling::Preemptive,
            &AnalysisConfig::default()
        )
        .unwrap());
    }

    #[test]
    fn infeasible_set_returns_none() {
        // Both need the processor more than half the time with tight
        // deadlines: no order works.
        let tasks = vec![dt("a", 6, 8, 10), dt("b", 6, 8, 10)];
        let r = audsley(
            &tasks,
            Scheduling::Preemptive,
            &AnalysisConfig::with_max_busy_window(Time::new(100_000)),
        )
        .unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn opa_succeeds_where_deadline_monotonic_fails() {
        // The classic arbitrary-deadline (D > P) configuration where DM
        // is non-optimal (Lehoczky): with τ1 = (C 52, T 100, D 110) and
        // τ2 = (C 52, T 140, D 154), DM puts τ1 on top and τ2 misses
        // (R = 156 > 154); the reverse order meets both deadlines.
        let tasks = vec![dt("t1", 52, 110, 100), dt("t2", 52, 154, 140)];
        let cfg = AnalysisConfig::default();
        let dm = deadline_monotonic(&tasks);
        assert_eq!(dm, vec!["t1".to_string(), "t2".to_string()]);
        assert!(
            !order_is_feasible(&tasks, &dm, Scheduling::Preemptive, &cfg).unwrap(),
            "DM should fail on this arbitrary-deadline set"
        );
        let opa = audsley(&tasks, Scheduling::Preemptive, &cfg)
            .unwrap()
            .expect("OPA finds the reverse order");
        assert_eq!(opa, vec!["t2".to_string(), "t1".to_string()]);
        assert!(order_is_feasible(&tasks, &opa, Scheduling::Preemptive, &cfg).unwrap());
    }

    #[test]
    fn opa_handles_bursty_inputs() {
        // Jittered (bursty) streams work through the same machinery.
        let tasks = vec![
            dt_jitter("bursty", 10, 90, 50, 100),
            dt("plain", 10, 70, 50),
        ];
        let cfg = AnalysisConfig::default();
        let order = audsley(&tasks, Scheduling::Preemptive, &cfg)
            .unwrap()
            .expect("feasible");
        assert!(order_is_feasible(&tasks, &order, Scheduling::Preemptive, &cfg).unwrap());
    }

    #[test]
    fn non_preemptive_assignment_accounts_for_blocking() {
        // A long low-priority frame blocks everything; deadlines must
        // absorb it.
        let tasks = vec![dt("short", 10, 45, 200), dt("long", 35, 300, 400)];
        let cfg = AnalysisConfig::default();
        let order = audsley(&tasks, Scheduling::NonPreemptive, &cfg)
            .unwrap()
            .expect("feasible");
        assert!(order_is_feasible(&tasks, &order, Scheduling::NonPreemptive, &cfg).unwrap());
        // Tighten `short`'s deadline below the blocking + own time: now
        // nothing works non-preemptively.
        let tasks = vec![dt("short", 10, 30, 200), dt("long", 35, 300, 400)];
        let r = audsley(&tasks, Scheduling::NonPreemptive, &cfg).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn empty_set_is_trivially_assignable() {
        let r = audsley(&[], Scheduling::Preemptive, &AnalysisConfig::default()).unwrap();
        assert_eq!(r, Some(vec![]));
    }
}
