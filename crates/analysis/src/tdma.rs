//! TDMA (time-division multiple access) analysis.
//!
//! A TDMA arbiter divides a fixed cycle of length `T` into static slots;
//! each task/stream owns one slot of length `sᵢ` and executes *only*
//! inside it. Unlike round-robin there is no work-conserving reuse of
//! idle slots, so each task is perfectly isolated: its service is
//! exactly the periodic resource `Γ = (T, sᵢ)` of
//! [`crate::resource::PeriodicResource`], and the analysis reduces to a
//! per-task busy window against the slot's supply bound function.

use hem_time::Time;

use crate::resource::{response_time_on, PeriodicResource};
use crate::{AnalysisConfig, AnalysisError, AnalysisTask, TaskResult};

/// A task bound to a TDMA slot.
#[derive(Debug, Clone)]
pub struct TdmaTask {
    /// The task description (priority is ignored — slots isolate).
    pub task: AnalysisTask,
    /// The task's slot length within each cycle (≥ 1).
    pub slot: Time,
}

impl TdmaTask {
    /// Binds a task to a slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot < 1`.
    #[must_use]
    pub fn new(task: AnalysisTask, slot: Time) -> Self {
        assert!(slot >= Time::ONE, "TDMA slot must be at least one tick");
        TdmaTask { task, slot }
    }
}

/// Analyses a TDMA-arbitrated resource with cycle length `cycle`.
///
/// Results are returned in input order. Tasks are mutually isolated;
/// each task's worst case assumes its slot is positioned adversarially
/// within the cycle (the periodic-resource blackout bound).
///
/// # Errors
///
/// * [`AnalysisError::InvalidTaskSet`] if the slots oversubscribe the
///   cycle (`Σ sᵢ > T`) or a slot exceeds the cycle,
/// * [`AnalysisError::NoConvergence`] when a task's demand exceeds its
///   slot's long-run supply.
pub fn analyze(
    tasks: &[TdmaTask],
    cycle: Time,
    config: &AnalysisConfig,
) -> Result<Vec<TaskResult>, AnalysisError> {
    if cycle < Time::ONE {
        return Err(AnalysisError::invalid("TDMA cycle must be positive"));
    }
    let total: Time = tasks.iter().map(|t| t.slot).sum();
    if total > cycle {
        return Err(AnalysisError::invalid(format!(
            "TDMA slots sum to {total}, exceeding the cycle {cycle}"
        )));
    }
    tasks
        .iter()
        .map(|t| {
            let partition = PeriodicResource::new(cycle, t.slot)?;
            response_time_on(&t.task, &[], Time::ZERO, &partition, config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rr, Priority};
    use hem_event_models::{EventModelExt, StandardEventModel};

    fn task(name: &str, c: i64, p: i64) -> AnalysisTask {
        AnalysisTask::new(
            name,
            Time::new(c),
            Time::new(c),
            Priority::new(0),
            StandardEventModel::periodic(Time::new(p)).unwrap().shared(),
        )
    }

    #[test]
    fn isolated_slots_bound_each_task() {
        // Cycle 100, two slots of 20: each task sees Γ = (100, 20).
        let tasks = vec![
            TdmaTask::new(task("a", 10, 500), Time::new(20)),
            TdmaTask::new(task("b", 30, 600), Time::new(20)),
        ];
        let r = analyze(&tasks, Time::new(100), &AnalysisConfig::default()).unwrap();
        // a: sbf⁻¹(10) = 2·80 + 10 = 170.
        assert_eq!(r[0].response.r_plus, Time::new(170));
        // b: 30 needs 2 slots: 2·80 + 100 + 10 = 270.
        assert_eq!(r[1].response.r_plus, Time::new(270));
    }

    #[test]
    fn interferer_load_is_irrelevant() {
        // b's demand does not change a's bound at all (full isolation).
        let light = vec![
            TdmaTask::new(task("a", 10, 500), Time::new(20)),
            TdmaTask::new(task("b", 1, 10_000), Time::new(20)),
        ];
        let heavy = vec![
            TdmaTask::new(task("a", 10, 500), Time::new(20)),
            TdmaTask::new(task("b", 19, 110), Time::new(20)),
        ];
        let r_light = analyze(&light, Time::new(100), &AnalysisConfig::default()).unwrap();
        let r_heavy = analyze(&heavy, Time::new(100), &AnalysisConfig::default()).unwrap();
        assert_eq!(r_light[0], r_heavy[0]);
    }

    #[test]
    fn tdma_is_never_tighter_than_round_robin() {
        // Round-robin reuses idle slots; with identical slot sizes its
        // bound is at most the TDMA bound for every task.
        let mk = |name: &str, c: i64, p: i64| task(name, c, p);
        let slot = Time::new(25);
        let cycle = Time::new(75);
        let defs = [("a", 10i64, 400i64), ("b", 20, 500), ("c", 15, 600)];
        let tdma_tasks: Vec<TdmaTask> = defs
            .iter()
            .map(|(n, c, p)| TdmaTask::new(mk(n, *c, *p), slot))
            .collect();
        let rr_tasks: Vec<rr::RrTask> = defs
            .iter()
            .map(|(n, c, p)| rr::RrTask::new(mk(n, *c, *p), slot))
            .collect();
        let tdma_r = analyze(&tdma_tasks, cycle, &AnalysisConfig::default()).unwrap();
        let rr_r = rr::analyze(&rr_tasks, &AnalysisConfig::default()).unwrap();
        for (t, r) in tdma_r.iter().zip(&rr_r) {
            assert!(
                r.response.r_plus <= t.response.r_plus,
                "{}: RR {} vs TDMA {}",
                t.name,
                r.response.r_plus,
                t.response.r_plus
            );
        }
    }

    #[test]
    fn oversubscription_rejected() {
        let tasks = vec![
            TdmaTask::new(task("a", 1, 100), Time::new(60)),
            TdmaTask::new(task("b", 1, 100), Time::new(60)),
        ];
        let err = analyze(&tasks, Time::new(100), &AnalysisConfig::default()).unwrap_err();
        assert!(matches!(err, AnalysisError::InvalidTaskSet(_)));
    }

    #[test]
    fn slot_overload_detected() {
        // 30 per 100 demanded, slot supplies 20 per 100.
        let tasks = vec![TdmaTask::new(task("a", 30, 100), Time::new(20))];
        let err = analyze(
            &tasks,
            Time::new(100),
            &AnalysisConfig::with_max_busy_window(Time::new(200_000)),
        )
        .unwrap_err();
        assert!(matches!(err, AnalysisError::NoConvergence { .. }));
    }

    #[test]
    #[should_panic(expected = "slot must be at least one tick")]
    fn zero_slot_panics() {
        let _ = TdmaTask::new(task("a", 1, 100), Time::ZERO);
    }
}
