//! Demand bound functions and EDF schedulability.
//!
//! Gresser's event-model-based demand bound function (cited as \[4\] by
//! the paper): a task with WCET `C`, relative deadline `D` and
//! activating event model `η⁺` demands, within any window of length
//! `Δt`, at most
//!
//! ```text
//! dbf_i(Δt) = η_i⁺(Δt − D_i + 1) · C_i      (for Δt ≥ D_i, else 0)
//! ```
//!
//! processor time from jobs that must both arrive *and* finish inside
//! the window. A task set is EDF-schedulable on a dedicated resource iff
//! `Σ dbf_i(Δt) ≤ Δt` for all `Δt` up to the longest busy period.

use hem_event_models::{EventModel, ModelRef};
use hem_time::Time;

use crate::{fixed_point, AnalysisConfig, AnalysisError};

/// A deadline-scheduled task: execution time, relative deadline, and
/// activating event model.
#[derive(Debug, Clone)]
pub struct EdfTask {
    /// Task name (for error reporting).
    pub name: String,
    /// Worst-case execution time (≥ 1).
    pub wcet: Time,
    /// Relative deadline (≥ 1).
    pub deadline: Time,
    /// Activating event stream.
    pub input: ModelRef,
}

impl EdfTask {
    /// Creates an EDF task description.
    ///
    /// # Panics
    ///
    /// Panics if `wcet < 1` or `deadline < 1`.
    #[must_use]
    pub fn new(name: impl Into<String>, wcet: Time, deadline: Time, input: ModelRef) -> Self {
        assert!(wcet >= Time::ONE, "wcet must be at least one tick");
        assert!(deadline >= Time::ONE, "deadline must be at least one tick");
        EdfTask {
            name: name.into(),
            wcet,
            deadline,
            input,
        }
    }

    /// This task's demand bound in a window of length `dt`.
    #[must_use]
    pub fn demand_bound(&self, dt: Time) -> Time {
        if dt < self.deadline {
            return Time::ZERO;
        }
        let contained = self.input.eta_plus(dt - self.deadline + Time::ONE);
        self.wcet * contained as i64
    }
}

/// The total demand bound `Σᵢ dbfᵢ(Δt)` of a task set.
#[must_use]
pub fn demand_bound(tasks: &[EdfTask], dt: Time) -> Time {
    tasks.iter().map(|t| t.demand_bound(dt)).sum()
}

/// The verdict of an EDF schedulability test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdfVerdict {
    /// Demand never exceeds supply up to the busy-period bound.
    Schedulable {
        /// Length of the longest level-busy period that was checked.
        busy_period: Time,
    },
    /// Demand exceeds supply at this window length.
    Overload {
        /// The first violating window length.
        at: Time,
        /// Demand at that window.
        demand: Time,
        /// Supply at that window.
        supply: Time,
    },
}

impl EdfVerdict {
    /// `true` for [`EdfVerdict::Schedulable`].
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        matches!(self, EdfVerdict::Schedulable { .. })
    }
}

/// EDF schedulability on a *dedicated* resource (`supply(Δt) = Δt`):
/// the processor-demand criterion `Σ dbfᵢ(Δt) ≤ Δt`.
///
/// All window lengths up to the synchronous busy period are checked at
/// the demand step points (each task's deadline plus its activation
/// breakpoints) — between steps the demand is constant while the supply
/// grows, so checking steps suffices.
///
/// # Errors
///
/// Returns [`AnalysisError::NoConvergence`] if the busy-period bound
/// itself diverges (total utilization ≥ 1).
pub fn edf_schedulable(
    tasks: &[EdfTask],
    config: &AnalysisConfig,
) -> Result<EdfVerdict, AnalysisError> {
    edf_schedulable_with_supply(tasks, |dt| dt, "dedicated", config)
}

/// EDF schedulability under an arbitrary monotone supply bound function
/// (e.g. a [`PeriodicResource`](crate::resource::PeriodicResource)).
///
/// # Errors
///
/// Returns [`AnalysisError::NoConvergence`] if the busy-period bound
/// diverges under the supply's long-run rate.
pub fn edf_schedulable_with_supply(
    tasks: &[EdfTask],
    supply: impl Fn(Time) -> Time,
    supply_name: &str,
    config: &AnalysisConfig,
) -> Result<EdfVerdict, AnalysisError> {
    if tasks.is_empty() {
        return Ok(EdfVerdict::Schedulable {
            busy_period: Time::ZERO,
        });
    }
    // Busy-period bound: least w with Σ η⁺(w)·C ≤ supply(w), found as the
    // fixed point of w = inverse-supply(total demand), conservatively via
    // iteration on w ← smallest t with supply(t) ≥ load(w).
    let busy = fixed_point(
        supply_name,
        Time::ONE,
        |w| {
            let load: Time = tasks
                .iter()
                .map(|t| t.wcet * t.input.eta_plus(w) as i64)
                .sum();
            invert_supply(&supply, load, config.max_busy_window)
        },
        config,
    )?;
    // Check every demand step point ≤ busy period.
    for task in tasks {
        let mut n = 1u64;
        loop {
            // The n-th activation enters the demand at
            // Δt = δ⁻(n) + deadline.
            let at = task.input.delta_min(n) + task.deadline;
            if at > busy {
                break;
            }
            let demand = demand_bound(tasks, at);
            let available = supply(at);
            if demand > available {
                return Ok(EdfVerdict::Overload {
                    at,
                    demand,
                    supply: available,
                });
            }
            n += 1;
            if n > config.max_activations {
                return Err(AnalysisError::no_convergence(
                    &task.name,
                    format!(
                        "more than {} demand steps within the busy period",
                        config.max_activations
                    ),
                ));
            }
        }
    }
    Ok(EdfVerdict::Schedulable { busy_period: busy })
}

/// Smallest `t` with `supply(t) ≥ demand`, capped at `max`.
fn invert_supply(supply: &impl Fn(Time) -> Time, demand: Time, max: Time) -> Time {
    if demand <= Time::ZERO {
        return Time::ZERO;
    }
    let mut hi = Time::ONE;
    while supply(hi) < demand {
        hi = hi * 2;
        if hi > max {
            return hi; // let the fixed-point guard report divergence
        }
    }
    let mut lo = Time::ZERO;
    while (hi - lo).ticks() > 1 {
        let mid = lo + (hi - lo) / 2;
        if supply(mid) >= demand {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_event_models::{EventModelExt, StandardEventModel};

    fn periodic_task(name: &str, c: i64, d: i64, p: i64) -> EdfTask {
        EdfTask::new(
            name,
            Time::new(c),
            Time::new(d),
            StandardEventModel::periodic(Time::new(p)).unwrap().shared(),
        )
    }

    #[test]
    fn single_task_demand_steps() {
        let t = periodic_task("t", 3, 10, 20);
        assert_eq!(t.demand_bound(Time::new(9)), Time::ZERO);
        assert_eq!(t.demand_bound(Time::new(10)), Time::new(3));
        assert_eq!(t.demand_bound(Time::new(29)), Time::new(3));
        assert_eq!(t.demand_bound(Time::new(30)), Time::new(6));
    }

    #[test]
    fn implicit_deadline_edf_utilization_boundary() {
        // U = 1 exactly: still schedulable under EDF.
        let tasks = vec![periodic_task("a", 2, 4, 4), periodic_task("b", 3, 6, 6)];
        let v = edf_schedulable(&tasks, &AnalysisConfig::default()).unwrap();
        assert!(v.is_schedulable(), "{v:?}");
        // Push over: U > 1 diverges (no finite busy period).
        let tasks = vec![periodic_task("a", 3, 4, 4), periodic_task("b", 3, 6, 6)];
        let err = edf_schedulable(
            &tasks,
            &AnalysisConfig::with_max_busy_window(Time::new(100_000)),
        )
        .unwrap_err();
        assert!(matches!(err, AnalysisError::NoConvergence { .. }));
    }

    #[test]
    fn constrained_deadline_overload_detected() {
        // U < 1 but deadlines too tight: overload at a specific window.
        let tasks = vec![periodic_task("a", 3, 3, 10), periodic_task("b", 3, 4, 10)];
        let v = edf_schedulable(&tasks, &AnalysisConfig::default()).unwrap();
        match v {
            EdfVerdict::Overload { at, demand, supply } => {
                assert_eq!(at, Time::new(4));
                assert_eq!(demand, Time::new(6));
                assert_eq!(supply, Time::new(4));
            }
            EdfVerdict::Schedulable { .. } => panic!("should overload"),
        }
    }

    #[test]
    fn jittered_activation_tightens() {
        // With jitter, two activations can land close together.
        let jittery = EdfTask::new(
            "j",
            Time::new(5),
            Time::new(8),
            StandardEventModel::periodic_with_jitter(Time::new(20), Time::new(15))
                .unwrap()
                .shared(),
        );
        // δ⁻(2) = 5: at Δt = 5 + 8 = 13 the demand is 10 > 13? No: 10 ≤ 13.
        let v = edf_schedulable(&[jittery], &AnalysisConfig::default()).unwrap();
        assert!(v.is_schedulable());
        // Shrink the deadline below the burst demand: 2 jobs · 5 = 10 must
        // fit into δ⁻(2) + D = 5 + 4 = 9 → overload.
        let tight = EdfTask::new(
            "j",
            Time::new(5),
            Time::new(4),
            StandardEventModel::periodic_with_jitter(Time::new(20), Time::new(15))
                .unwrap()
                .shared(),
        );
        let v = edf_schedulable(&[tight], &AnalysisConfig::default()).unwrap();
        assert!(!v.is_schedulable());
    }

    #[test]
    fn empty_task_set_is_trivially_schedulable() {
        let v = edf_schedulable(&[], &AnalysisConfig::default()).unwrap();
        assert!(v.is_schedulable());
    }

    #[test]
    fn invert_supply_dedicated() {
        let id = |t: Time| t;
        assert_eq!(invert_supply(&id, Time::ZERO, Time::new(1000)), Time::ZERO);
        assert_eq!(
            invert_supply(&id, Time::new(7), Time::new(1000)),
            Time::new(7)
        );
    }
}
