//! Long-run utilization estimation for task sets.
//!
//! Busy-window analysis converges iff the long-run demand of the task set
//! stays below the resource capacity. For arbitrary event models the
//! utilization is estimated empirically as `Σᵢ ηᵢ⁺(H)·Cᵢ⁺ / H` over a
//! large horizon `H`; for standard event models this converges to the
//! familiar `Σ Cᵢ/Pᵢ` as `H → ∞`.

use hem_event_models::EventModel;
use hem_time::Time;

use crate::AnalysisTask;

/// Upper bound on the long-run utilization over the given horizon.
///
/// The bound is conservative (≥ the true long-run rate) because `η⁺`
/// front-loads jitter and bursts; larger horizons tighten it.
///
/// # Panics
///
/// Panics if `horizon < 1`.
///
/// # Examples
///
/// ```
/// use hem_analysis::{utilization, AnalysisTask, Priority};
/// use hem_event_models::{EventModelExt, StandardEventModel};
/// use hem_time::Time;
///
/// let t = AnalysisTask::new("t", Time::new(25), Time::new(25), Priority::new(1),
///     StandardEventModel::periodic(Time::new(100))?.shared());
/// let u = utilization::utilization_bound(&[t], Time::new(1_000_000));
/// assert!((u - 0.25).abs() < 0.001);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn utilization_bound(tasks: &[AnalysisTask], horizon: Time) -> f64 {
    assert!(horizon >= Time::ONE, "horizon must be at least one tick");
    let demand: i64 = tasks
        .iter()
        .map(|t| (t.wcet * t.input.eta_plus(horizon) as i64).ticks())
        .sum();
    demand as f64 / horizon.ticks() as f64
}

/// Whether the task set's demand bound exceeds the resource capacity over
/// the horizon — a sufficient condition for busy-window divergence.
#[must_use]
pub fn is_overloaded(tasks: &[AnalysisTask], horizon: Time) -> bool {
    utilization_bound(tasks, horizon) > 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Priority;
    use hem_event_models::{EventModelExt, StandardEventModel};

    fn task(cet: i64, period: i64) -> AnalysisTask {
        AnalysisTask::new(
            "t",
            Time::new(cet),
            Time::new(cet),
            Priority::new(0),
            StandardEventModel::periodic(Time::new(period))
                .unwrap()
                .shared(),
        )
    }

    #[test]
    fn periodic_utilization_converges() {
        let tasks = vec![task(25, 100), task(30, 200)];
        let u = utilization_bound(&tasks, Time::new(1_000_000));
        assert!((u - 0.40).abs() < 0.01, "u = {u}");
    }

    #[test]
    fn short_horizon_is_conservative() {
        let tasks = vec![task(25, 100)];
        let short = utilization_bound(&tasks, Time::new(100));
        let long = utilization_bound(&tasks, Time::new(1_000_000));
        assert!(short >= long);
    }

    #[test]
    fn overload_detection() {
        assert!(is_overloaded(
            &[task(60, 100), task(60, 100)],
            Time::new(100_000)
        ));
        assert!(!is_overloaded(&[task(40, 100)], Time::new(100_000)));
    }
}
