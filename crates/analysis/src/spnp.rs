//! Static-priority non-preemptive (SPNP) busy-window analysis — the CAN
//! arbitration model.
//!
//! On a CAN bus, frames win arbitration by priority (lower identifier
//! wins) but a transmission in progress is never aborted. The standard
//! analysis (Tindell/Davis, restated in CPA form) separates the *queuing
//! delay* `w` from the transmission itself:
//!
//! ```text
//! w_i(q) = B_i + (q−1)·C_i⁺ + Σ_{j ∈ hp(i)} η_j⁺(w_i(q) + 1) · C_j⁺
//! r_i⁺(q) = w_i(q) + C_i⁺ − δ_i⁻(q)
//! ```
//!
//! where `B_i = max_{j ∈ lp(i)} C_j⁺` is the blocking by an already-started
//! lower-priority frame, and the `+1` tick in the interference term
//! accounts for a higher-priority frame arriving exactly when arbitration
//! is decided (it still wins, non-preemptively delaying the frame under
//! analysis).

use hem_event_models::EventModel;
use hem_time::Time;

use crate::{fixed_point, AnalysisConfig, AnalysisError, AnalysisTask, ResponseTime, TaskResult};

/// Analyses one frame/task on an SPNP resource against all others.
///
/// `others` are the remaining tasks on the same resource — higher
/// priorities interfere, lower priorities contribute their longest
/// transmission as blocking. Priorities must be unique on an SPNP
/// resource (ties have no defined arbitration winner).
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidTaskSet`] when `others` contains the
/// same priority as `task`, and [`AnalysisError::NoConvergence`] when the
/// busy window diverges.
pub fn response_time(
    task: &AnalysisTask,
    others: &[AnalysisTask],
    config: &AnalysisConfig,
) -> Result<TaskResult, AnalysisError> {
    if others.iter().any(|t| t.priority == task.priority) {
        return Err(AnalysisError::invalid(format!(
            "SPNP requires unique priorities, `{}` shares {}",
            task.name, task.priority
        )));
    }
    let hp: Vec<&AnalysisTask> = others
        .iter()
        .filter(|t| t.priority.is_higher_than(task.priority))
        .collect();
    let blocking = others
        .iter()
        .filter(|t| task.priority.is_higher_than(t.priority))
        .map(|t| t.wcet)
        .max()
        .unwrap_or(Time::ZERO);

    let mut worst = Time::ZERO;
    let mut q = 1u64;
    loop {
        let base = blocking + task.wcet * (q as i64 - 1);
        let w = fixed_point(
            &task.name,
            base,
            |w| {
                let interference: Time = hp
                    .iter()
                    .map(|j| j.wcet * j.input.eta_plus(w + Time::ONE) as i64)
                    .sum();
                base + interference
            },
            config,
        )?;
        let finish = w + task.wcet;
        let response = finish - task.input.delta_min(q);
        worst = worst.max(response);
        if task.input.delta_min(q + 1) >= finish {
            let r_minus = task.bcet;
            return Ok(TaskResult {
                name: task.name.clone(),
                response: ResponseTime::new(r_minus.min(worst), worst),
                busy_activations: q,
            });
        }
        q += 1;
        if q > config.max_activations {
            return Err(AnalysisError::no_convergence(
                &task.name,
                format!(
                    "busy period did not close within {} activations",
                    config.max_activations
                ),
            ));
        }
    }
}

/// Analyses the frame/task at `index` within a complete SPNP task set.
///
/// The per-entity entry point of the parallel engine: every frame of a
/// bus can be analysed independently given the full (shared) lowered
/// task set, so workers call this concurrently with `tasks` behind an
/// `Arc` and the activation models carrying shared curve caches.
///
/// # Panics
///
/// Panics if `index` is out of bounds.
///
/// # Errors
///
/// Same conditions as [`response_time`].
pub fn analyze_one(
    tasks: &[AnalysisTask],
    index: usize,
    config: &AnalysisConfig,
) -> Result<TaskResult, AnalysisError> {
    let others: Vec<AnalysisTask> = tasks
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != index)
        .map(|(_, t)| t.clone())
        .collect();
    response_time(&tasks[index], &others, config)
}

/// Analyses a complete SPNP task set; results are returned in input order.
///
/// # Errors
///
/// Propagates the first [`AnalysisError`] encountered (duplicate
/// priorities or non-convergence).
pub fn analyze(
    tasks: &[AnalysisTask],
    config: &AnalysisConfig,
) -> Result<Vec<TaskResult>, AnalysisError> {
    (0..tasks.len())
        .map(|i| analyze_one(tasks, i, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Priority;
    use hem_event_models::{EventModelExt, StandardEventModel};

    fn frame(name: &str, cet: i64, prio: u32, period: i64) -> AnalysisTask {
        AnalysisTask::new(
            name,
            Time::new(cet),
            Time::new(cet),
            Priority::new(prio),
            StandardEventModel::periodic(Time::new(period))
                .unwrap()
                .shared(),
        )
    }

    #[test]
    fn highest_priority_still_suffers_blocking() {
        let frames = vec![frame("hi", 10, 1, 100), frame("lo", 30, 2, 100)];
        let r = analyze(&frames, &AnalysisConfig::default()).unwrap();
        // hi: blocked by the longest lower-priority frame (30) + own 10.
        assert_eq!(r[0].response.r_plus, Time::new(40));
        // lo: blocked by nothing, but hi interferes once: 10 + 30 = 40.
        assert_eq!(r[1].response.r_plus, Time::new(40));
    }

    #[test]
    fn non_preemptive_vs_preemptive_highest_prio() {
        // Under SPP the high-priority task would finish in C = 10; under
        // SPNP it waits for the longest lower-priority transmission.
        let hi = frame("hi", 10, 1, 100);
        let lo = frame("lo", 50, 2, 1000);
        let r = response_time(&hi, &[lo], &AnalysisConfig::default()).unwrap();
        assert_eq!(r.response.r_plus, Time::new(60));
    }

    #[test]
    fn interference_at_arbitration_instant_counts() {
        // Middle frame: blocking 20 (lo), interference from hi arriving
        // exactly at the arbitration boundary.
        let hi = frame("hi", 10, 1, 35);
        let mid = frame("mid", 10, 2, 100);
        let lo = frame("lo", 20, 3, 100);
        let r = response_time(&mid, &[hi.clone(), lo], &AnalysisConfig::default()).unwrap();
        // w = 20 + 10·η_hi(w+1): w₀ = 20 → η(21) = 1 → 30 → η(31) = 1 → 30.
        // Hmm: η(31) = ⌈31/35⌉ = 1 → w = 30, finish 40, R⁺ = 40.
        assert_eq!(r.response.r_plus, Time::new(40));
    }

    #[test]
    fn queued_instances_serialize() {
        // A frame whose own period is shorter than its transmission time
        // cannot be schedulable; use a moderately loaded case instead:
        // two instances queue behind blocking.
        let target = frame("f", 10, 1, 12);
        let lo = frame("lo", 30, 2, 1000);
        let r = response_time(&target, &[lo], &AnalysisConfig::default()).unwrap();
        // q=1: w = 30, finish 40, r = 40. δ⁻(2) = 12 < 40 → q=2:
        // w = 30+10 = 40, finish 50, r = 50−12 = 38. δ⁻(3) = 24 < 50 → q=3:
        // w = 50, finish 60, r = 60−24 = 36. … each extra instance gains
        // 10 ticks but arrives 12 later, so the busy period closes when
        // 30 + 10q ≤ 12q → q = 15ish. R⁺ stays 40.
        assert_eq!(r.response.r_plus, Time::new(40));
        assert!(r.busy_activations > 1);
    }

    #[test]
    fn duplicate_priorities_rejected() {
        let frames = vec![frame("a", 10, 1, 100), frame("b", 10, 1, 100)];
        let err = analyze(&frames, &AnalysisConfig::default()).unwrap_err();
        assert!(matches!(err, AnalysisError::InvalidTaskSet(_)));
    }

    #[test]
    fn no_lower_priority_means_no_blocking() {
        let lo = frame("lo", 20, 2, 100);
        let only = frame("only", 10, 1, 100);
        let r = response_time(&only, &[lo], &AnalysisConfig::default()).unwrap();
        assert_eq!(r.response.r_plus, Time::new(30)); // blocking 20 + own 10
        let alone = response_time(&only, &[], &AnalysisConfig::default()).unwrap();
        assert_eq!(alone.response.r_plus, Time::new(10));
    }

    #[test]
    fn overload_detected() {
        let a = frame("a", 10, 1, 12);
        let b = frame("b", 10, 2, 12);
        let err = response_time(
            &b,
            &[a],
            &AnalysisConfig::with_max_busy_window(Time::new(50_000)),
        )
        .unwrap_err();
        assert!(matches!(err, AnalysisError::NoConvergence { .. }));
    }
}
