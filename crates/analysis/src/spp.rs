//! Static-priority preemptive (SPP) busy-window analysis.
//!
//! The classical multi-activation busy-window technique (Lehoczky 1990,
//! as used in Richter's CPA framework): for the `q`-th activation of task
//! `i` within a level-`i` busy period, the completion window is the least
//! fixed point of
//!
//! ```text
//! w_i(q) = q·C_i⁺ + B_i + Σ_{j ∈ hp(i)} η_j⁺(w_i(q)) · C_j⁺
//! ```
//!
//! and the worst-case response time is `max_q [ w_i(q) − δ_i⁻(q) ]`, where
//! `q` ranges over the activations inside the busy period
//! (`δ_i⁻(q+1) < w_i(q)`).
//!
//! Tasks of *equal* priority are conservatively treated as interference
//! (they cannot be preempted mid-execution, but within a busy window every
//! pending equal-priority activation may be served first).

use hem_event_models::EventModel;
use hem_time::Time;

use crate::{fixed_point, AnalysisConfig, AnalysisError, AnalysisTask, ResponseTime, TaskResult};

/// Busy-window internals for one activation index `q` (diagnostics /
/// plotting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivationDetail {
    /// Activation index within the busy period (1-based).
    pub q: u64,
    /// Completion window `w(q)` of the first `q` activations.
    pub window: Time,
    /// Response time of the `q`-th activation: `w(q) − δ⁻(q)`.
    pub response: Time,
}

/// Analyses one task against its interferers on an SPP resource.
///
/// `interferers` must contain every task on the same resource with equal
/// or higher priority (the caller may simply pass all other tasks —
/// strictly lower-priority ones are filtered out here). `blocking` models
/// priority-inversion from shared resources or non-preemptable sections
/// (zero for pure SPP).
///
/// # Errors
///
/// Returns [`AnalysisError::NoConvergence`] when the busy window diverges
/// (resource overload) or exceeds the configured limits.
pub fn response_time(
    task: &AnalysisTask,
    interferers: &[AnalysisTask],
    blocking: Time,
    config: &AnalysisConfig,
) -> Result<TaskResult, AnalysisError> {
    Ok(response_details(task, interferers, blocking, config)?.0)
}

/// Like [`response_time`], but also returns the per-activation busy
/// windows and response times — useful for understanding *which*
/// activation of a bursty stream dominates, and for plotting `r(q)`.
///
/// # Errors
///
/// Same conditions as [`response_time`].
pub fn response_details(
    task: &AnalysisTask,
    interferers: &[AnalysisTask],
    blocking: Time,
    config: &AnalysisConfig,
) -> Result<(TaskResult, Vec<ActivationDetail>), AnalysisError> {
    let hp: Vec<&AnalysisTask> = interferers
        .iter()
        .filter(|t| !task.priority.is_higher_than(t.priority))
        .collect();
    let mut details = Vec::new();
    let mut worst = Time::ZERO;
    let mut q = 1u64;
    loop {
        let base = task.wcet * q as i64 + blocking;
        let w = fixed_point(
            &task.name,
            base,
            |w| {
                let interference: Time =
                    hp.iter().map(|j| j.wcet * j.input.eta_plus(w) as i64).sum();
                base + interference
            },
            config,
        )?;
        let response = w - task.input.delta_min(q);
        details.push(ActivationDetail {
            q,
            window: w,
            response,
        });
        worst = worst.max(response);
        // The busy period extends to activation q+1 iff it arrives before
        // the level-i busy window of the first q activations closes.
        if task.input.delta_min(q + 1) >= w {
            let r_minus = task.bcet;
            let result = TaskResult {
                name: task.name.clone(),
                response: ResponseTime::new(r_minus.min(worst), worst),
                busy_activations: q,
            };
            return Ok((result, details));
        }
        q += 1;
        if q > config.max_activations {
            return Err(AnalysisError::no_convergence(
                &task.name,
                format!(
                    "busy period did not close within {} activations",
                    config.max_activations
                ),
            ));
        }
    }
}

/// Analyses the task at `index` within a complete SPP task set.
///
/// The per-entity entry point of the parallel engine: every task of a
/// resource can be analysed independently given the full (shared) task
/// set, so workers call this concurrently with `tasks` behind an `Arc`
/// and the activation models carrying shared curve caches.
///
/// # Panics
///
/// Panics if `index` is out of bounds.
///
/// # Errors
///
/// Same conditions as [`response_time`].
pub fn analyze_one(
    tasks: &[AnalysisTask],
    index: usize,
    config: &AnalysisConfig,
) -> Result<TaskResult, AnalysisError> {
    let others: Vec<AnalysisTask> = tasks
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != index)
        .map(|(_, t)| t.clone())
        .collect();
    response_time(&tasks[index], &others, Time::ZERO, config)
}

/// Analyses a complete SPP task set; results are returned in input order.
///
/// # Errors
///
/// Propagates the first [`AnalysisError`] encountered.
pub fn analyze(
    tasks: &[AnalysisTask],
    config: &AnalysisConfig,
) -> Result<Vec<TaskResult>, AnalysisError> {
    (0..tasks.len())
        .map(|i| analyze_one(tasks, i, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Priority;
    use hem_event_models::{EventModelExt, StandardEventModel};

    fn periodic_task(name: &str, cet: i64, prio: u32, period: i64) -> AnalysisTask {
        AnalysisTask::new(
            name,
            Time::new(cet),
            Time::new(cet),
            Priority::new(prio),
            StandardEventModel::periodic(Time::new(period))
                .unwrap()
                .shared(),
        )
    }

    #[test]
    fn textbook_three_task_set() {
        // The classic example: C = (1, 2, 3), P = (4, 6, 12).
        let tasks = vec![
            periodic_task("t1", 1, 1, 4),
            periodic_task("t2", 2, 2, 6),
            periodic_task("t3", 3, 3, 12),
        ];
        let r = analyze(&tasks, &AnalysisConfig::default()).unwrap();
        assert_eq!(r[0].response.r_plus, Time::new(1));
        assert_eq!(r[1].response.r_plus, Time::new(3));
        // t3: classic RTA iteration 3 → 6 → 7 → 9 → 10 → 10.
        assert_eq!(r[2].response.r_plus, Time::new(10));
    }

    #[test]
    fn busy_period_spans_multiple_activations() {
        // Low-priority task with period shorter than its response time:
        // C = (2, 3), P = (4, 7). U = 0.5 + 3/7 ≈ 0.93.
        let tasks = vec![periodic_task("hi", 2, 1, 4), periodic_task("lo", 3, 2, 7)];
        let r = analyze(&tasks, &AnalysisConfig::default()).unwrap();
        // lo, q=1: w = 3 + 2·η⁺(w) → 3+2=5 → η(5)=2 → 7 → η(7)=2 → 7.
        // δ⁻(2) = 7 ≥ 7, busy period closes at q=1, R⁺ = 7.
        assert_eq!(r[1].response.r_plus, Time::new(7));
        assert_eq!(r[1].busy_activations, 1);
    }

    #[test]
    fn carried_busy_period() {
        // C = (26, 62), P = (70, 100): classic multi-frame busy period.
        let tasks = vec![
            periodic_task("hi", 26, 1, 70),
            periodic_task("lo", 62, 2, 100),
        ];
        let r = analyze(&tasks, &AnalysisConfig::default()).unwrap();
        // q=1: w = 62 + 26·η(w): 62+26=88 → η(88)=2 → 114 → η(114)=2 → 114.
        // δ⁻(2)=100 < 114 → q=2: w = 124 + 26·η(w): 124+52=176 → η(176)=3
        // → 202 → η(202)=3 → 202. r(2) = 202−100 = 102.
        // δ⁻(3)=200 < 202 → q=3: w = 186+26·η(w): 186+78=264 → η(264)=4 →
        // 290 → η(290)=5 → 316 → η(316)=5 → 316. r(3) = 316−200 = 116.
        // δ⁻(4)=300 < 316 → q=4: w = 248 + 26·η(w): ... continues until the
        // busy period closes. The final R⁺ must be at least 116.
        assert!(r[1].response.r_plus >= Time::new(116));
        assert!(r[1].busy_activations >= 3);
    }

    #[test]
    fn jittered_interferer_increases_response() {
        let hi = AnalysisTask::new(
            "hi",
            Time::new(24),
            Time::new(24),
            Priority::new(1),
            StandardEventModel::periodic_with_jitter(Time::new(250), Time::new(200))
                .unwrap()
                .shared(),
        );
        let lo = periodic_task("lo", 40, 2, 400);
        let r_jitter = response_time(&lo, &[hi], Time::ZERO, &AnalysisConfig::default()).unwrap();
        let hi_nj = periodic_task("hi", 24, 1, 250);
        let r_plain = response_time(&lo, &[hi_nj], Time::ZERO, &AnalysisConfig::default()).unwrap();
        assert!(r_jitter.response.r_plus > r_plain.response.r_plus);
    }

    #[test]
    fn blocking_adds_directly() {
        let hi = periodic_task("hi", 10, 1, 100);
        let lo = periodic_task("lo", 10, 2, 100);
        let without =
            response_time(&lo, &[hi.clone()], Time::ZERO, &AnalysisConfig::default()).unwrap();
        let with = response_time(&lo, &[hi], Time::new(5), &AnalysisConfig::default()).unwrap();
        assert_eq!(with.response.r_plus, without.response.r_plus + Time::new(5));
    }

    #[test]
    fn lower_priority_interferers_are_ignored() {
        let hi = periodic_task("hi", 10, 1, 100);
        let lo = periodic_task("lo", 50, 9, 100);
        let r = response_time(&hi, &[lo], Time::ZERO, &AnalysisConfig::default()).unwrap();
        assert_eq!(r.response.r_plus, Time::new(10));
    }

    #[test]
    fn equal_priority_counts_as_interference() {
        let a = periodic_task("a", 10, 5, 100);
        let b = periodic_task("b", 20, 5, 100);
        let r = response_time(&a, &[b], Time::ZERO, &AnalysisConfig::default()).unwrap();
        assert_eq!(r.response.r_plus, Time::new(30));
    }

    #[test]
    fn overload_is_detected() {
        // U = 1.5: busy window diverges.
        let tasks = vec![periodic_task("hi", 3, 1, 4), periodic_task("lo", 3, 2, 4)];
        let err = analyze(
            &tasks,
            &AnalysisConfig::with_max_busy_window(Time::new(100_000)),
        )
        .unwrap_err();
        assert!(matches!(err, AnalysisError::NoConvergence { .. }));
    }

    #[test]
    fn details_expose_per_activation_windows() {
        // C = (26, 62), P = (70, 100): the multi-activation busy period.
        let tasks = vec![
            periodic_task("hi", 26, 1, 70),
            periodic_task("lo", 62, 2, 100),
        ];
        let (result, details) = response_details(
            &tasks[1],
            &tasks[..1],
            Time::ZERO,
            &AnalysisConfig::default(),
        )
        .unwrap();
        assert_eq!(details.len() as u64, result.busy_activations);
        // Windows grow strictly; responses peak somewhere in the middle.
        for pair in details.windows(2) {
            assert!(pair[1].window > pair[0].window);
            assert_eq!(pair[1].q, pair[0].q + 1);
        }
        let max_detail = details.iter().map(|d| d.response).max().unwrap();
        assert_eq!(max_detail, result.response.r_plus);
        // The known values of the first activations.
        assert_eq!(
            details[0],
            ActivationDetail {
                q: 1,
                window: Time::new(114),
                response: Time::new(114),
            }
        );
        assert_eq!(details[1].window, Time::new(202));
        assert_eq!(details[1].response, Time::new(102));
    }

    #[test]
    fn best_case_is_bcet() {
        let t = AnalysisTask::new(
            "t",
            Time::new(5),
            Time::new(9),
            Priority::new(1),
            StandardEventModel::periodic(Time::new(100))
                .unwrap()
                .shared(),
        );
        let r = response_time(&t, &[], Time::ZERO, &AnalysisConfig::default()).unwrap();
        assert_eq!(r.response.r_minus, Time::new(5));
        assert_eq!(r.response.r_plus, Time::new(9));
    }
}
