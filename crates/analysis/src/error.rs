//! Error type for local scheduling analyses.

use std::error::Error;
use std::fmt;

/// Error returned by the local scheduling analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A busy-window iteration exceeded its configured limits — the task
    /// set is overloaded or the limits are too tight.
    NoConvergence {
        /// The task whose analysis diverged.
        task: String,
        /// What limit was hit.
        detail: String,
    },
    /// The task set is malformed (e.g. duplicate priorities where unique
    /// ones are required).
    InvalidTaskSet(String),
}

impl AnalysisError {
    /// Creates a [`AnalysisError::NoConvergence`].
    pub fn no_convergence(task: impl Into<String>, detail: impl Into<String>) -> Self {
        AnalysisError::NoConvergence {
            task: task.into(),
            detail: detail.into(),
        }
    }

    /// Creates an [`AnalysisError::InvalidTaskSet`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        AnalysisError::InvalidTaskSet(msg.into())
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NoConvergence { task, detail } => {
                write!(f, "analysis of task `{task}` did not converge: {detail}")
            }
            AnalysisError::InvalidTaskSet(msg) => write!(f, "invalid task set: {msg}"),
        }
    }
}

impl Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = AnalysisError::no_convergence("T1", "busy window exceeded 100");
        assert_eq!(
            e.to_string(),
            "analysis of task `T1` did not converge: busy window exceeded 100"
        );
        let e = AnalysisError::invalid("duplicate priority");
        assert_eq!(e.to_string(), "invalid task set: duplicate priority");
    }
}
