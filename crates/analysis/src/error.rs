//! Error type for local scheduling analyses.

use std::error::Error;
use std::fmt;

/// Error returned by the local scheduling analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A busy-window iteration exceeded its configured limits — the task
    /// set is overloaded or the limits are too tight.
    NoConvergence {
        /// The task whose analysis diverged.
        task: String,
        /// What limit was hit.
        detail: String,
    },
    /// The task set is malformed (e.g. duplicate priorities where unique
    /// ones are required).
    InvalidTaskSet(String),
    /// The wall-clock budget of the analysis expired before the fixed
    /// point stabilized. The work done so far is still sound (every
    /// iterate is a lower bound on the true busy window) but must not be
    /// reported as a worst case.
    BudgetExhausted {
        /// The task whose analysis was cancelled.
        task: String,
    },
}

impl AnalysisError {
    /// Creates a [`AnalysisError::NoConvergence`].
    pub fn no_convergence(task: impl Into<String>, detail: impl Into<String>) -> Self {
        AnalysisError::NoConvergence {
            task: task.into(),
            detail: detail.into(),
        }
    }

    /// Creates an [`AnalysisError::InvalidTaskSet`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        AnalysisError::InvalidTaskSet(msg.into())
    }

    /// Creates an [`AnalysisError::BudgetExhausted`].
    pub fn budget_exhausted(task: impl Into<String>) -> Self {
        AnalysisError::BudgetExhausted { task: task.into() }
    }

    /// Whether this error was caused by budget exhaustion (as opposed to
    /// a divergent or malformed model).
    #[must_use]
    pub fn is_budget_exhausted(&self) -> bool {
        matches!(self, AnalysisError::BudgetExhausted { .. })
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NoConvergence { task, detail } => {
                write!(f, "analysis of task `{task}` did not converge: {detail}")
            }
            AnalysisError::InvalidTaskSet(msg) => write!(f, "invalid task set: {msg}"),
            AnalysisError::BudgetExhausted { task } => {
                write!(
                    f,
                    "analysis of task `{task}` cancelled: wall-clock budget exhausted"
                )
            }
        }
    }
}

impl Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = AnalysisError::no_convergence("T1", "busy window exceeded 100");
        assert_eq!(
            e.to_string(),
            "analysis of task `T1` did not converge: busy window exceeded 100"
        );
        let e = AnalysisError::invalid("duplicate priority");
        assert_eq!(e.to_string(), "invalid task set: duplicate priority");
    }
}
