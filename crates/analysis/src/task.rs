//! Task descriptions and analysis results.

use std::fmt;

use hem_event_models::ModelRef;
use hem_time::Time;

/// A scheduling priority. **Smaller values mean higher priority**,
/// matching CAN identifier semantics (and common RTOS conventions).
///
/// # Examples
///
/// ```
/// use hem_analysis::Priority;
///
/// let high = Priority::new(1);
/// let low = Priority::new(7);
/// assert!(high.is_higher_than(low));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(u32);

impl Priority {
    /// Creates a priority level (smaller = higher).
    #[must_use]
    pub const fn new(level: u32) -> Self {
        Priority(level)
    }

    /// The raw priority level.
    #[must_use]
    pub const fn level(self) -> u32 {
        self.0
    }

    /// Whether `self` preempts / wins arbitration against `other`.
    #[must_use]
    pub fn is_higher_than(self, other: Priority) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A schedulable entity on one resource: a task on a CPU or a frame on a
/// bus.
///
/// Carries the core execution (or transmission) time interval
/// `[bcet, wcet]`, a [`Priority`], and the activating event stream.
#[derive(Debug, Clone)]
pub struct AnalysisTask {
    /// Human-readable identifier used in results and error messages.
    pub name: String,
    /// Worst-case execution time `C⁺` (must be ≥ 1 tick).
    pub wcet: Time,
    /// Best-case execution time `C⁻` (`0 ≤ C⁻ ≤ C⁺`).
    pub bcet: Time,
    /// Scheduling priority on the shared resource.
    pub priority: Priority,
    /// Activating event stream.
    pub input: ModelRef,
}

impl AnalysisTask {
    /// Creates a task description.
    ///
    /// # Panics
    ///
    /// Panics if `bcet < 0`, `wcet < bcet`, or `wcet < 1` — these are
    /// programming errors in the system description, caught eagerly.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        bcet: Time,
        wcet: Time,
        priority: Priority,
        input: ModelRef,
    ) -> Self {
        assert!(!bcet.is_negative(), "bcet must be non-negative");
        assert!(wcet >= bcet, "wcet must be at least bcet");
        assert!(wcet >= Time::ONE, "wcet must be at least one tick");
        AnalysisTask {
            name: name.into(),
            wcet,
            bcet,
            priority,
            input,
        }
    }
}

/// A best/worst-case response-time interval `[r⁻, r⁺]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResponseTime {
    /// Minimum (best-case) response time.
    pub r_minus: Time,
    /// Maximum (worst-case) response time.
    pub r_plus: Time,
}

impl ResponseTime {
    /// Creates a response-time interval.
    ///
    /// # Panics
    ///
    /// Panics if `r_minus > r_plus` or `r_minus < 0`.
    #[must_use]
    pub fn new(r_minus: Time, r_plus: Time) -> Self {
        assert!(!r_minus.is_negative(), "r⁻ must be non-negative");
        assert!(r_minus <= r_plus, "r⁻ must not exceed r⁺");
        ResponseTime { r_minus, r_plus }
    }

    /// The response-time jitter `r⁺ − r⁻` this processing step adds to the
    /// stream.
    #[must_use]
    pub fn jitter(self) -> Time {
        self.r_plus - self.r_minus
    }
}

impl fmt::Display for ResponseTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.r_minus, self.r_plus)
    }
}

/// The outcome of a local analysis for one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskResult {
    /// Name of the analysed task.
    pub name: String,
    /// The computed response-time interval.
    pub response: ResponseTime,
    /// Number of activations examined in the longest busy window
    /// (diagnostic: > 1 signals carry-in interference / bursts).
    pub busy_activations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_event_models::{EventModelExt, StandardEventModel};

    #[test]
    fn priority_ordering() {
        assert!(Priority::new(0).is_higher_than(Priority::new(1)));
        assert!(!Priority::new(1).is_higher_than(Priority::new(1)));
        assert!(!Priority::new(2).is_higher_than(Priority::new(1)));
        assert_eq!(Priority::new(3).level(), 3);
        assert_eq!(Priority::new(3).to_string(), "P3");
    }

    #[test]
    fn response_time_jitter() {
        let r = ResponseTime::new(Time::new(10), Time::new(60));
        assert_eq!(r.jitter(), Time::new(50));
        assert_eq!(r.to_string(), "[10, 60]");
    }

    #[test]
    #[should_panic(expected = "r⁻ must not exceed r⁺")]
    fn response_time_rejects_inverted_interval() {
        let _ = ResponseTime::new(Time::new(60), Time::new(10));
    }

    #[test]
    #[should_panic(expected = "wcet must be at least bcet")]
    fn task_rejects_inverted_cet() {
        let m = StandardEventModel::periodic(Time::new(100))
            .unwrap()
            .shared();
        let _ = AnalysisTask::new("t", Time::new(10), Time::new(5), Priority::new(1), m);
    }

    #[test]
    fn task_construction() {
        let m = StandardEventModel::periodic(Time::new(100))
            .unwrap()
            .shared();
        let t = AnalysisTask::new("t", Time::new(5), Time::new(10), Priority::new(1), m);
        assert_eq!(t.name, "t");
        assert_eq!(t.bcet, Time::new(5));
        assert_eq!(t.wcet, Time::new(10));
    }
}
