//! The hierarchical event model and its constructor abstraction.

use std::fmt;
use std::sync::Arc;

use hem_event_models::ops::OutputModel;
use hem_event_models::{EventModelExt, ModelError, ModelRef};
use hem_time::Time;

use crate::update::InnerUpdated;

/// Identifies the construction rule `C_Ω` that built a hierarchy
/// (Def. 5's third component).
///
/// The paper defines one inner update function per (operation,
/// constructor) pair; the tag lets operations pick the right one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Constructor {
    /// The pack constructor `Ω_pa` of Def. 8 (frame packing).
    Pack,
    /// The hierarchical OR constructor `Ω_or` (all inputs survive as
    /// inner streams; no pending semantics).
    Or,
}

impl fmt::Display for Constructor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constructor::Pack => write!(f, "Ω_pa"),
            Constructor::Or => write!(f, "Ω_or"),
        }
    }
}

/// One embedded stream of a hierarchy: a name (the signal identity) and
/// its event model.
#[derive(Debug, Clone)]
pub struct InnerStream {
    /// Identity of the embedded stream (e.g. the signal name).
    pub name: String,
    /// The inner event model `F_i`.
    pub model: ModelRef,
}

impl InnerStream {
    /// Creates a named inner stream.
    #[must_use]
    pub fn new(name: impl Into<String>, model: ModelRef) -> Self {
        InnerStream {
            name: name.into(),
            model,
        }
    }
}

/// A hierarchical event model `H = (F_out, L, C)` (paper Def. 5).
///
/// See the [crate-level documentation](crate) for the pack → transport →
/// unpack lifecycle.
#[derive(Debug, Clone)]
pub struct HierarchicalEventModel {
    outer: ModelRef,
    inners: Vec<InnerStream>,
    constructor: Constructor,
}

impl HierarchicalEventModel {
    /// Assembles a hierarchy from its components.
    ///
    /// Most users build hierarchies through a
    /// [`HierarchicalStreamConstructor`] such as
    /// [`PackConstructor`](crate::PackConstructor) instead.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `inners` is empty or
    /// contains duplicate names.
    pub fn from_parts(
        outer: ModelRef,
        inners: Vec<InnerStream>,
        constructor: Constructor,
    ) -> Result<Self, ModelError> {
        if inners.is_empty() {
            return Err(ModelError::invalid(
                "a hierarchical event model needs at least one inner stream",
            ));
        }
        for (i, a) in inners.iter().enumerate() {
            if inners[i + 1..].iter().any(|b| b.name == a.name) {
                return Err(ModelError::invalid(format!(
                    "duplicate inner stream name `{}`",
                    a.name
                )));
            }
        }
        Ok(HierarchicalEventModel {
            outer,
            inners,
            constructor,
        })
    }

    /// The outer event stream `F_out` — what the shared resource (the
    /// bus) sees and analyses.
    #[must_use]
    pub fn outer(&self) -> &ModelRef {
        &self.outer
    }

    /// All inner streams, in packing order.
    #[must_use]
    pub fn inners(&self) -> &[InnerStream] {
        &self.inners
    }

    /// The construction rule that built this hierarchy.
    #[must_use]
    pub fn constructor(&self) -> Constructor {
        self.constructor
    }

    /// Applies the output-stream operation `Θ_τ` to the hierarchy: the
    /// outer stream is processed with response times `[r⁻, r⁺]` and every
    /// inner stream is adapted by the inner update function
    /// `B_Θτ,C_pa` (paper Def. 9):
    ///
    /// ```text
    /// δ''ᵢ⁻(n) = max( δ'ᵢ⁻(n) − (r⁺−r⁻) − (k−1)·r⁻,  (n−1)·r⁻ )
    /// δ''ᵢ⁺(n) = δ'ᵢ⁺(n) + (r⁺−r⁻) + (k−1)·r⁻
    /// ```
    ///
    /// where `k` is the maximum number of *simultaneous* outer-stream
    /// events before the operation (simultaneously queued frames
    /// serialize on the resource, spreading by `r⁻` each and shifting the
    /// embedded signals accordingly).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] unless
    /// `0 ≤ r_minus ≤ r_plus`.
    pub fn process(&self, r_minus: Time, r_plus: Time) -> Result<Self, ModelError> {
        let k = self.outer.max_simultaneous();
        let outer = OutputModel::new(self.outer.clone(), r_minus, r_plus)?.shared();
        let inners = self
            .inners
            .iter()
            .map(|inner| {
                InnerUpdated::new(inner.model.clone(), r_minus, r_plus, k)
                    .map(|updated| InnerStream::new(inner.name.clone(), updated.shared()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(HierarchicalEventModel {
            outer,
            inners,
            constructor: self.constructor,
        })
    }

    /// The deconstructor `Ψ_pa` (Def. 10): extracts the `i`-th inner
    /// stream (`F_i = L(i)`), or `None` if out of range.
    #[must_use]
    pub fn unpack(&self, index: usize) -> Option<ModelRef> {
        self.inners.get(index).map(|s| s.model.clone())
    }

    /// Extracts an inner stream by name, or `None` if absent.
    #[must_use]
    pub fn unpack_by_name(&self, name: &str) -> Option<ModelRef> {
        self.inners
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.model.clone())
    }

    /// Deconstructs the hierarchy into all inner models (the full
    /// `D_Ψ : H → F^n` of Def. 6).
    #[must_use]
    pub fn unpack_all(&self) -> Vec<ModelRef> {
        self.inners.iter().map(|s| s.model.clone()).collect()
    }

    /// Flattens the hierarchy: returns only the outer stream, discarding
    /// the inner structure. This is what a *flat* analysis (the paper's
    /// baseline) works with.
    #[must_use]
    pub fn flatten(&self) -> ModelRef {
        Arc::clone(&self.outer)
    }
}

/// A hierarchical stream constructor `Ω : F^n → H` (paper Def. 4).
///
/// Implementors combine two or more event streams into a
/// [`HierarchicalEventModel`]. The paper notes that every flat stream
/// constructor has a hierarchical counterpart whose outer stream equals
/// the flat construction result.
pub trait HierarchicalStreamConstructor {
    /// Builds the hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the inputs cannot form a valid
    /// hierarchy (constructor-specific; see implementors).
    fn construct(&self) -> Result<HierarchicalEventModel, ModelError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_event_models::{EventModel, StandardEventModel};

    fn periodic(p: i64) -> ModelRef {
        StandardEventModel::periodic(Time::new(p)).unwrap().shared()
    }

    fn simple_hem() -> HierarchicalEventModel {
        HierarchicalEventModel::from_parts(
            periodic(100),
            vec![
                InnerStream::new("a", periodic(200)),
                InnerStream::new("b", periodic(300)),
            ],
            Constructor::Pack,
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let hem = simple_hem();
        assert_eq!(hem.inners().len(), 2);
        assert_eq!(hem.constructor(), Constructor::Pack);
        assert_eq!(hem.constructor().to_string(), "Ω_pa");
        assert_eq!(hem.outer().delta_min(2), Time::new(100));
    }

    #[test]
    fn unpack_variants() {
        let hem = simple_hem();
        assert_eq!(hem.unpack(0).unwrap().delta_min(2), Time::new(200));
        assert_eq!(hem.unpack(1).unwrap().delta_min(2), Time::new(300));
        assert!(hem.unpack(2).is_none());
        assert_eq!(
            hem.unpack_by_name("b").unwrap().delta_min(2),
            Time::new(300)
        );
        assert!(hem.unpack_by_name("missing").is_none());
        assert_eq!(hem.unpack_all().len(), 2);
        assert_eq!(hem.flatten().delta_min(2), Time::new(100));
    }

    #[test]
    fn rejects_empty_and_duplicate_inners() {
        assert!(
            HierarchicalEventModel::from_parts(periodic(100), vec![], Constructor::Pack).is_err()
        );
        let dup = HierarchicalEventModel::from_parts(
            periodic(100),
            vec![
                InnerStream::new("x", periodic(200)),
                InnerStream::new("x", periodic(300)),
            ],
            Constructor::Pack,
        );
        assert!(dup.is_err());
    }

    #[test]
    fn process_transforms_outer_and_inner() {
        let hem = simple_hem();
        let out = hem.process(Time::new(5), Time::new(25)).unwrap();
        // Outer follows Θ_τ: δ⁻ reduced by the jitter 20.
        assert_eq!(out.outer().delta_min(2), Time::new(80));
        // Inner follows Def. 9 with k = 1: same jitter shift.
        assert_eq!(
            out.unpack_by_name("a").unwrap().delta_min(2),
            Time::new(180)
        );
        assert_eq!(out.constructor(), Constructor::Pack);
        assert!(hem.process(Time::new(30), Time::new(20)).is_err());
    }
}
