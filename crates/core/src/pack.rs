//! The pack constructor `Ω_pa` (paper Def. 8).

use hem_event_models::ops::OrJoin;
use hem_event_models::{
    AnalyticCurve, EventModel, EventModelExt, ModelError, ModelRef, PlusCombine,
};
use hem_time::{Time, TimeBound};

use crate::hem::{Constructor, HierarchicalEventModel, HierarchicalStreamConstructor, InnerStream};

/// How a signal stream participates in frame transmission (paper §4,
/// AUTOSAR COM transfer properties).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamRole {
    /// Every event immediately triggers a frame transmission. The frame
    /// carries the signal with no sampling loss (eqs. (5),(6)).
    Triggering,
    /// Events only update a register; the value rides along with the next
    /// frame triggered by someone else. Values may be overwritten
    /// (eqs. (7),(8)).
    Pending,
}

/// One input to the pack constructor: a named signal stream plus its
/// transfer role.
#[derive(Debug, Clone)]
pub struct PackInput {
    /// Signal identity, preserved as the inner-stream name.
    pub name: String,
    /// The signal's event model.
    pub model: ModelRef,
    /// Whether the signal triggers frames or is pending.
    pub role: StreamRole,
}

impl PackInput {
    /// Creates a pack input.
    #[must_use]
    pub fn new(name: impl Into<String>, model: ModelRef, role: StreamRole) -> Self {
        PackInput {
            name: name.into(),
            model,
            role,
        }
    }

    /// Convenience constructor for a triggering signal.
    #[must_use]
    pub fn triggering(name: impl Into<String>, model: ModelRef) -> Self {
        Self::new(name, model, StreamRole::Triggering)
    }

    /// Convenience constructor for a pending signal.
    #[must_use]
    pub fn pending(name: impl Into<String>, model: ModelRef) -> Self {
        Self::new(name, model, StreamRole::Pending)
    }
}

/// The pack hierarchical stream constructor `Ω_pa` (paper Def. 8).
///
/// Builds a [`HierarchicalEventModel`] for a frame that transports the
/// given signals:
///
/// * **outer stream** — the OR-combination (eqs. (3),(4)) of all
///   *triggering* inputs: every triggering signal sends a frame. A frame
///   timer (for periodic or mixed frames) is just another triggering
///   input.
/// * **inner streams** — triggering signals keep their own timing
///   (`δ'ᵢ = δᵢ`, eqs. (5),(6)); pending signals are resampled by the
///   frame stream (eqs. (7),(8)): a pending value that *just misses* a
///   frame waits up to `δ_out⁺(2)` for the next one, and each frame
///   carries at most one value per signal, so
///
///   ```text
///   δ'ᵢ⁻(n) = max( δᵢ⁻(n) − δ_out⁺(2),  δ_out⁻(n) )
///   δ'ᵢ⁺(n) = ∞
///   ```
///
/// # Examples
///
/// ```
/// use hem_core::{HierarchicalStreamConstructor, PackConstructor, PackInput};
/// use hem_event_models::{EventModel, EventModelExt, StandardEventModel};
/// use hem_time::Time;
///
/// let hem = PackConstructor::new(vec![
///     PackInput::triggering("fast", StandardEventModel::periodic(Time::new(100))?.shared()),
///     PackInput::pending("slow", StandardEventModel::periodic(Time::new(500))?.shared()),
/// ])?.construct()?;
/// // Frames go out at the fast signal's rate.
/// assert_eq!(hem.outer().delta_min(2), Time::new(100));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PackConstructor {
    inputs: Vec<PackInput>,
}

impl PackConstructor {
    /// Creates the constructor for the given signal inputs.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if no input is
    /// [`StreamRole::Triggering`] — a frame with only pending signals is
    /// never sent (a periodic frame must include its timer as a
    /// triggering input).
    pub fn new(inputs: Vec<PackInput>) -> Result<Self, ModelError> {
        if !inputs.iter().any(|i| i.role == StreamRole::Triggering) {
            return Err(ModelError::invalid(
                "pack requires at least one triggering stream (add the frame timer)",
            ));
        }
        Ok(PackConstructor { inputs })
    }

    /// The signal inputs.
    #[must_use]
    pub fn inputs(&self) -> &[PackInput] {
        &self.inputs
    }
}

impl HierarchicalStreamConstructor for PackConstructor {
    fn construct(&self) -> Result<HierarchicalEventModel, ModelError> {
        let triggering: Vec<ModelRef> = self
            .inputs
            .iter()
            .filter(|i| i.role == StreamRole::Triggering)
            .map(|i| i.model.clone())
            .collect();
        let outer = OrJoin::new(triggering)?.shared();
        let inners = self
            .inputs
            .iter()
            .map(|i| {
                let model = match i.role {
                    StreamRole::Triggering => i.model.clone(),
                    StreamRole::Pending => {
                        PendingInner::new(i.model.clone(), outer.clone()).shared()
                    }
                };
                InnerStream::new(i.name.clone(), model)
            })
            .collect();
        HierarchicalEventModel::from_parts(outer, inners, Constructor::Pack)
    }
}

/// The inner event model of a *pending* signal after packing
/// (eqs. (7),(8) of the paper).
///
/// The minimum distance between frames carrying `n` fresh values of the
/// signal is bounded below both by the signal's own spacing minus one
/// full frame gap (`δ_out⁺(2)`, the worst "just missed a frame" penalty)
/// and by the frame spacing itself (each frame carries at most one value
/// of the signal). No maximum distance exists: values can be overwritten
/// before ever being transmitted.
#[derive(Debug, Clone)]
pub struct PendingInner {
    signal: ModelRef,
    frames: ModelRef,
}

impl PendingInner {
    /// Wraps a pending `signal` resampled by the `frames` stream.
    #[must_use]
    pub fn new(signal: ModelRef, frames: ModelRef) -> Self {
        PendingInner { signal, frames }
    }
}

impl EventModel for PendingInner {
    fn delta_min(&self, n: u64) -> Time {
        if n <= 1 {
            return Time::ZERO;
        }
        let frame_gap = match self.frames.delta_plus(2) {
            // An unbounded frame gap removes the signal-spacing bound
            // entirely (δᵢ⁻(n) − ∞ → −∞); only the frame spacing remains.
            TimeBound::Infinite => Time::ZERO,
            TimeBound::Finite(g) => (self.signal.delta_min(n) - g).clamp_non_negative(),
        };
        frame_gap.max(self.frames.delta_min(n))
    }

    fn delta_plus(&self, n: u64) -> TimeBound {
        if n <= 1 {
            TimeBound::ZERO
        } else {
            TimeBound::Infinite
        }
    }

    fn analytic(&self) -> Option<AnalyticCurve> {
        // Eq. (7) is a pointwise max of the frame curve and the signal
        // curve shifted down by one full frame gap; eq. (8) makes δ⁺
        // unconditionally infinite. Both shapes are `max_shifted` forms.
        let frames = self.frames.analytic()?;
        match frames.delta_plus(2) {
            // Unbounded frame gap: only the frame spacing bounds δ⁻.
            TimeBound::Infinite => {
                AnalyticCurve::max_shifted(&[(&frames, Time::ZERO)], None, PlusCombine::Infinite)
            }
            TimeBound::Finite(gap) => {
                let signal = self.signal.analytic()?;
                AnalyticCurve::max_shifted(
                    &[(&signal, -gap), (&frames, Time::ZERO)],
                    None,
                    PlusCombine::Infinite,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_event_models::StandardEventModel;

    fn periodic(p: i64) -> ModelRef {
        StandardEventModel::periodic(Time::new(p)).unwrap().shared()
    }

    #[test]
    fn outer_is_or_of_triggering_only() {
        let hem = PackConstructor::new(vec![
            PackInput::triggering("a", periodic(200)),
            PackInput::triggering("b", periodic(300)),
            PackInput::pending("c", periodic(50)), // fast but pending
        ])
        .unwrap()
        .construct()
        .unwrap();
        // The pending stream does not generate frames: within 601 ticks at
        // most ⌈601/200⌉ + ⌈601/300⌉ = 4 + 3 frames.
        assert_eq!(hem.outer().eta_plus(Time::new(601)), 7);
        assert_eq!(hem.constructor(), Constructor::Pack);
    }

    #[test]
    fn triggering_inner_keeps_own_timing() {
        let hem = PackConstructor::new(vec![
            PackInput::triggering("a", periodic(200)),
            PackInput::triggering("b", periodic(300)),
        ])
        .unwrap()
        .construct()
        .unwrap();
        let a = hem.unpack_by_name("a").unwrap();
        assert_eq!(a.delta_min(3), Time::new(400));
        assert_eq!(a.delta_plus(3), TimeBound::finite(400));
    }

    #[test]
    fn pending_inner_eq7_both_bounds() {
        // Frames strictly periodic 100 (single trigger), pending signal
        // periodic 450.
        let hem = PackConstructor::new(vec![
            PackInput::triggering("timer", periodic(100)),
            PackInput::pending("s", periodic(450)),
        ])
        .unwrap()
        .construct()
        .unwrap();
        let s = hem.unpack_by_name("s").unwrap();
        // δ_out⁺(2) = 100. Signal bound: 450 − 100 = 350; frame bound: 100.
        assert_eq!(s.delta_min(2), Time::new(350));
        // n = 3: signal 900 − 100 = 800 vs frames 200 → 800.
        assert_eq!(s.delta_min(3), Time::new(800));
        // δ⁺ is unbounded (eq. (8)).
        assert_eq!(s.delta_plus(2), TimeBound::Infinite);
        assert_eq!(s.eta_minus(Time::new(100_000)), 0);
    }

    #[test]
    fn pending_faster_than_frames_is_frame_limited() {
        // Pending signal updates every 30 ticks but frames only go every
        // 100: consecutive fresh values are at least a frame apart.
        let hem = PackConstructor::new(vec![
            PackInput::triggering("timer", periodic(100)),
            PackInput::pending("fast", periodic(30)),
        ])
        .unwrap()
        .construct()
        .unwrap();
        let fast = hem.unpack_by_name("fast").unwrap();
        // Signal bound: 30 − 100 < 0 → 0; frame bound: 100.
        assert_eq!(fast.delta_min(2), Time::new(100));
        assert_eq!(fast.delta_min(4), Time::new(300));
    }

    #[test]
    fn pending_only_pack_rejected() {
        let err = PackConstructor::new(vec![PackInput::pending("s", periodic(100))]).unwrap_err();
        assert!(err.to_string().contains("triggering"));
    }

    #[test]
    fn inputs_accessor_and_roles() {
        let pc = PackConstructor::new(vec![
            PackInput::new("x", periodic(10), StreamRole::Triggering),
            PackInput::pending("y", periodic(20)),
        ])
        .unwrap();
        assert_eq!(pc.inputs().len(), 2);
        assert_eq!(pc.inputs()[0].role, StreamRole::Triggering);
        assert_eq!(pc.inputs()[1].role, StreamRole::Pending);
    }

    /// Asserts the analytic lift matches the generic model point-for-point
    /// over all five characteristic functions.
    fn assert_analytic_equiv(model: &dyn EventModel) {
        let a = model.analytic().expect("model should lift");
        for n in 0..=64u64 {
            assert_eq!(a.delta_min(n), model.delta_min(n), "δ⁻({n})");
            assert_eq!(a.delta_plus(n), model.delta_plus(n), "δ⁺({n})");
        }
        for t in (0..=2_000i64).step_by(37) {
            let dt = Time::new(t);
            assert_eq!(a.eta_plus(dt), model.eta_plus(dt), "η⁺({t})");
            assert_eq!(a.eta_minus(dt), model.eta_minus(dt), "η⁻({t})");
        }
        assert_eq!(a.max_simultaneous(), model.max_simultaneous());
    }

    #[test]
    fn pending_analytic_lift_matches_generic() {
        // Signal slower than frames, faster than frames, and equal-rate.
        for (sig, frame) in [(450i64, 100i64), (30, 100), (100, 100)] {
            let p = PendingInner::new(periodic(sig), periodic(frame));
            assert_analytic_equiv(&p);
        }
    }

    #[test]
    fn pending_analytic_lift_with_jittery_frames() {
        let frames = StandardEventModel::new(Time::new(100), Time::new(250), Time::new(5))
            .unwrap()
            .shared();
        let p = PendingInner::new(periodic(450), frames);
        assert_analytic_equiv(&p);
    }

    #[test]
    fn pending_analytic_lift_with_sporadic_frames() {
        use hem_event_models::SporadicModel;
        let frames = SporadicModel::new(Time::new(50)).unwrap().shared();
        let p = PendingInner::new(periodic(450), frames);
        assert_analytic_equiv(&p);
    }

    #[test]
    fn pack_inner_streams_all_lift() {
        let hem = PackConstructor::new(vec![
            PackInput::triggering("timer", periodic(100)),
            PackInput::triggering("b", periodic(300)),
            PackInput::pending("s", periodic(450)),
        ])
        .unwrap()
        .construct()
        .unwrap();
        assert_analytic_equiv(hem.outer().as_ref());
        for inner in hem.inners() {
            assert_analytic_equiv(inner.model.as_ref());
        }
    }

    #[test]
    fn pending_with_sporadic_frames_only_frame_bound() {
        use hem_event_models::SporadicModel;
        let frames = SporadicModel::new(Time::new(50)).unwrap().shared();
        let signal = periodic(450);
        let p = PendingInner::new(signal, frames);
        // δ_out⁺(2) = ∞ wipes the signal-spacing bound; frame spacing
        // remains.
        assert_eq!(p.delta_min(2), Time::new(50));
        assert_eq!(p.delta_min(3), Time::new(100));
        assert_eq!(p.delta_plus(5), TimeBound::Infinite);
    }
}
