//! Hierarchical event models (HEM) — the core contribution of
//! *Modeling Event Stream Hierarchies with Hierarchical Event Models*
//! (Rox/Ernst, DATE 2008).
//!
//! When a communication layer packs several signals into one bus frame,
//! the frame stream seen by the bus is the OR-combination of the signal
//! streams — but a flat combination forgets *which* signal each frame
//! carries. A [`HierarchicalEventModel`] keeps both views:
//!
//! * the **outer** stream `F_out` — the combined stream, used by the local
//!   analysis of the shared resource (the bus),
//! * the **inner** streams `L = (F₁ … F_n)` — one per embedded signal,
//!   extracted again after transport,
//! * the **construction rule** `C` — which
//!   [`HierarchicalStreamConstructor`] built the hierarchy, determining
//!   how operations on the outer stream reflect into the inner streams.
//!
//! The lifecycle mirrors the paper exactly:
//!
//! 1. **Pack** (Def. 8, `Ω_pa`): [`PackConstructor`] combines *triggering*
//!    and *pending* signal streams into a HEM whose outer stream is the
//!    OR-join of the triggering streams.
//! 2. **Transport** (Def. 9, `B_Θτ,C_pa`): [`HierarchicalEventModel::process`]
//!    applies the response-time operation `Θ_τ` to the outer stream and
//!    the *inner update function* to every inner stream.
//! 3. **Unpack** (Def. 10, `Ψ_pa`): [`HierarchicalEventModel::unpack`]
//!    extracts an inner stream to activate the receiving task — with far
//!    less over-estimation than the total frame stream.
//!
//! # Examples
//!
//! ```
//! use hem_core::{HierarchicalStreamConstructor, PackConstructor, PackInput, StreamRole};
//! use hem_event_models::{EventModel, EventModelExt, StandardEventModel};
//! use hem_time::Time;
//!
//! // Two triggering signals and one pending signal share a frame.
//! let hem = PackConstructor::new(vec![
//!     PackInput::new("s1", StandardEventModel::periodic(Time::new(250))?.shared(),
//!                    StreamRole::Triggering),
//!     PackInput::new("s2", StandardEventModel::periodic(Time::new(450))?.shared(),
//!                    StreamRole::Triggering),
//!     PackInput::new("s3", StandardEventModel::periodic(Time::new(600))?.shared(),
//!                    StreamRole::Pending),
//! ])?.construct()?;
//!
//! // The bus analyses the outer (frame) stream…
//! assert_eq!(hem.outer().eta_plus(Time::new(250)), 2);
//! // …the frame is transported with response times [8, 40]…
//! let after_bus = hem.process(Time::new(8), Time::new(40))?;
//! // …and the receiver unpacks the per-signal streams. Two frames can be
//! // queued at once (s1 and s2 may fire together), so Def. 9 subtracts the
//! // jitter 32 plus one serialization step of 8: 250 − 40 = 210.
//! let s1 = after_bus.unpack_by_name("s1").expect("s1 present");
//! assert_eq!(s1.delta_min(2), Time::new(210));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hem;
mod or_constructor;
mod pack;
mod update;

pub use hem::{Constructor, HierarchicalEventModel, HierarchicalStreamConstructor, InnerStream};
pub use or_constructor::OrConstructor;
pub use pack::{PackConstructor, PackInput, PendingInner, StreamRole};
pub use update::InnerUpdated;
