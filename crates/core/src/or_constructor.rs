//! The hierarchical OR constructor `Ω_or`.
//!
//! The paper notes (after Def. 5) that *"for each event stream
//! constructor generating the output stream `F_sc` a corresponding
//! hierarchical event stream constructor can be defined that generates a
//! hierarchical event stream with an outer event stream modeled by
//! `F_out = F_sc`"*. This module provides that counterpart for the
//! OR-combination: the outer stream is the flat OR-join (eqs. (3),(4))
//! and every input survives as an inner stream with its own timing —
//! equivalent to [`PackConstructor`](crate::PackConstructor) with all
//! inputs triggering, but without the COM-layer framing vocabulary.

use hem_event_models::ops::OrJoin;
use hem_event_models::{EventModelExt, ModelError, ModelRef};

use crate::hem::{Constructor, HierarchicalEventModel, HierarchicalStreamConstructor, InnerStream};

/// The hierarchical OR constructor: combines named streams into a
/// hierarchy whose outer stream is their OR-join.
///
/// Useful whenever several logical flows share one processing entity
/// (an interrupt line, a worker task, a DMA channel) and per-flow timing
/// must survive the shared processing — the same pattern as frame
/// packing, without a communication stack.
///
/// # Examples
///
/// ```
/// use hem_core::{HierarchicalStreamConstructor, OrConstructor};
/// use hem_event_models::{EventModel, EventModelExt, StandardEventModel};
/// use hem_time::Time;
///
/// let hem = OrConstructor::new(vec![
///     ("irq_net".into(), StandardEventModel::periodic(Time::new(400))?.shared()),
///     ("irq_disk".into(), StandardEventModel::periodic(Time::new(700))?.shared()),
/// ])?.construct()?;
/// // The shared handler sees both flows…
/// assert_eq!(hem.outer().eta_plus(Time::new(1_500)), 4 + 3);
/// // …but each flow keeps its identity for downstream consumers.
/// assert_eq!(hem.unpack_by_name("irq_disk").expect("present").delta_min(2),
///            Time::new(700));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct OrConstructor {
    inputs: Vec<(String, ModelRef)>,
}

impl OrConstructor {
    /// Creates the constructor for the given named input streams.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `inputs` is empty.
    pub fn new(inputs: Vec<(String, ModelRef)>) -> Result<Self, ModelError> {
        if inputs.is_empty() {
            return Err(ModelError::invalid(
                "OR-construction requires at least one input stream",
            ));
        }
        Ok(OrConstructor { inputs })
    }

    /// The named input streams.
    #[must_use]
    pub fn inputs(&self) -> &[(String, ModelRef)] {
        &self.inputs
    }
}

impl HierarchicalStreamConstructor for OrConstructor {
    fn construct(&self) -> Result<HierarchicalEventModel, ModelError> {
        let outer = OrJoin::new(self.inputs.iter().map(|(_, m)| m.clone()).collect())?.shared();
        let inners = self
            .inputs
            .iter()
            .map(|(name, model)| InnerStream::new(name.clone(), model.clone()))
            .collect();
        HierarchicalEventModel::from_parts(outer, inners, Constructor::Or)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_event_models::{EventModel, StandardEventModel};
    use hem_time::Time;

    fn periodic(p: i64) -> ModelRef {
        StandardEventModel::periodic(Time::new(p)).unwrap().shared()
    }

    fn two_flow() -> HierarchicalEventModel {
        OrConstructor::new(vec![
            ("a".into(), periodic(400)),
            ("b".into(), periodic(700)),
        ])
        .unwrap()
        .construct()
        .unwrap()
    }

    #[test]
    fn outer_is_or_join() {
        let hem = two_flow();
        assert_eq!(hem.constructor(), Constructor::Or);
        assert_eq!(hem.outer().eta_plus(Time::new(1_401)), 4 + 3);
        assert_eq!(hem.outer().delta_min(2), Time::ZERO); // may coincide
    }

    #[test]
    fn inners_keep_identity() {
        let hem = two_flow();
        assert_eq!(
            hem.unpack_by_name("a").unwrap().delta_min(2),
            Time::new(400)
        );
        assert_eq!(
            hem.unpack_by_name("b").unwrap().delta_min(2),
            Time::new(700)
        );
    }

    #[test]
    fn matches_all_triggering_pack() {
        use crate::pack::{PackConstructor, PackInput};
        let or_hem = two_flow();
        let pack_hem = PackConstructor::new(vec![
            PackInput::triggering("a", periodic(400)),
            PackInput::triggering("b", periodic(700)),
        ])
        .unwrap()
        .construct()
        .unwrap();
        for n in 2..=10u64 {
            assert_eq!(or_hem.outer().delta_min(n), pack_hem.outer().delta_min(n));
            assert_eq!(
                or_hem.unpack(0).unwrap().delta_min(n),
                pack_hem.unpack(0).unwrap().delta_min(n)
            );
        }
    }

    #[test]
    fn processing_applies_inner_update() {
        let hem = two_flow();
        let after = hem.process(Time::new(10), Time::new(50)).unwrap();
        // k = 2 (simultaneous arrivals possible): shift = 40 + 10 = 50.
        assert_eq!(
            after.unpack_by_name("a").unwrap().delta_min(2),
            Time::new(350)
        );
        assert_eq!(after.constructor(), Constructor::Or);
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(OrConstructor::new(vec![]).is_err());
    }

    #[test]
    fn inputs_accessor() {
        let c = OrConstructor::new(vec![("x".into(), periodic(100))]).unwrap();
        assert_eq!(c.inputs().len(), 1);
    }
}
