//! The inner update function `B_Θτ,C_pa` (paper Def. 9).

use hem_event_models::{AnalyticCurve, EventModel, ModelError, ModelRef, PlusCombine};
use hem_time::{Time, TimeBound};

/// An inner stream adapted after the outer stream was processed by `Θ_τ`
/// with response times `[r⁻, r⁺]` (paper Def. 9).
///
/// Two effects must be reflected into the embedded streams:
///
/// 1. the response-time jitter `r⁺ − r⁻` compresses minimum / stretches
///    maximum distances, exactly as for a flat stream;
/// 2. frames that arrived *simultaneously* at the resource serialize:
///    with up to `k` simultaneous outer events, a frame — and the signal
///    it carries — can be delayed by an extra `(k−1)·r⁻` behind its
///    peers. Conversely, consecutive outputs are separated by at least
///    `r⁻` each, flooring `δ''⁻(n)` at `(n−1)·r⁻`:
///
/// ```text
/// δ''ᵢ⁻(n) = max( δ'ᵢ⁻(n) − (r⁺−r⁻) − (k−1)·r⁻,  (n−1)·r⁻ )
/// δ''ᵢ⁺(n) = δ'ᵢ⁺(n) + (r⁺−r⁻) + (k−1)·r⁻
/// ```
///
/// # Examples
///
/// ```
/// use hem_core::InnerUpdated;
/// use hem_event_models::{EventModel, EventModelExt, StandardEventModel};
/// use hem_time::Time;
///
/// let inner = StandardEventModel::periodic(Time::new(250))?.shared();
/// // Frame response [8, 40], two frames can be queued simultaneously.
/// let updated = InnerUpdated::new(inner, Time::new(8), Time::new(40), 2)?;
/// // 250 − 32 (jitter) − 8 (serialization behind one peer) = 210.
/// assert_eq!(updated.delta_min(2), Time::new(210));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct InnerUpdated {
    inner: ModelRef,
    r_minus: Time,
    r_plus: Time,
    simultaneous: u64,
}

impl InnerUpdated {
    /// Adapts `inner` for an outer stream processed with response times
    /// `[r_minus, r_plus]`, where `simultaneous` is the maximum number of
    /// outer events that could arrive at once *before* the operation
    /// (`k` in Def. 9).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] unless
    /// `0 ≤ r_minus ≤ r_plus` and `simultaneous ≥ 1`.
    pub fn new(
        inner: ModelRef,
        r_minus: Time,
        r_plus: Time,
        simultaneous: u64,
    ) -> Result<Self, ModelError> {
        if r_minus.is_negative() || r_minus > r_plus {
            return Err(ModelError::invalid(format!(
                "response interval must satisfy 0 ≤ r⁻ ≤ r⁺, got [{r_minus}, {r_plus}]"
            )));
        }
        if simultaneous == 0 {
            return Err(ModelError::invalid(
                "simultaneous outer arrivals must be at least 1",
            ));
        }
        Ok(InnerUpdated {
            inner,
            r_minus,
            r_plus,
            simultaneous,
        })
    }

    /// The total shift applied to distances:
    /// `(r⁺ − r⁻) + (k − 1)·r⁻`.
    #[must_use]
    pub fn shift(&self) -> Time {
        (self.r_plus - self.r_minus) + self.r_minus * (self.simultaneous as i64 - 1)
    }
}

impl EventModel for InnerUpdated {
    fn delta_min(&self, n: u64) -> Time {
        if n <= 1 {
            return Time::ZERO;
        }
        let shifted = self.inner.delta_min(n) - self.shift();
        let floor = self.r_minus * (n as i64 - 1);
        shifted.max(floor).clamp_non_negative()
    }

    fn delta_plus(&self, n: u64) -> TimeBound {
        if n <= 1 {
            return TimeBound::ZERO;
        }
        // Keep δ⁺ ≥ δ⁻ even when the serialization floor dominates (see
        // the analogous guard in `OutputModel::delta_plus`).
        (self.inner.delta_plus(n) + self.shift()).max(self.delta_min(n).into())
    }

    fn analytic(&self) -> Option<AnalyticCurve> {
        // Def. 9 is a pointwise max of the shifted inner curve and the
        // serialization floor (n−1)·r⁻, with the δ⁺ side floored by the
        // resulting δ⁻ — exactly the `max_shifted` closed form.
        let inner = self.inner.analytic()?;
        let shift = self.shift();
        AnalyticCurve::max_shifted(
            &[(&inner, -shift)],
            Some(self.r_minus),
            PlusCombine::Max {
                terms: &[(&inner, shift)],
                floor: None,
                include_min: true,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_event_models::{EventModelExt, SporadicModel, StandardEventModel};

    fn periodic(p: i64) -> ModelRef {
        StandardEventModel::periodic(Time::new(p)).unwrap().shared()
    }

    #[test]
    fn k1_reduces_to_plain_jitter_shift() {
        let u = InnerUpdated::new(periodic(250), Time::new(8), Time::new(40), 1).unwrap();
        assert_eq!(u.shift(), Time::new(32));
        assert_eq!(u.delta_min(2), Time::new(218));
        assert_eq!(u.delta_plus(2), TimeBound::finite(282));
    }

    #[test]
    fn serialization_penalty_grows_with_k() {
        let k1 = InnerUpdated::new(periodic(250), Time::new(8), Time::new(40), 1).unwrap();
        let k3 = InnerUpdated::new(periodic(250), Time::new(8), Time::new(40), 3).unwrap();
        assert_eq!(k3.shift(), Time::new(32 + 16));
        assert!(k3.delta_min(2) < k1.delta_min(2));
        assert!(k3.delta_plus(2) > k1.delta_plus(2));
    }

    #[test]
    fn floor_at_minimum_service_separation() {
        // A dense inner stream cannot be compressed below (n−1)·r⁻.
        let u = InnerUpdated::new(periodic(10), Time::new(15), Time::new(60), 1).unwrap();
        assert_eq!(u.delta_min(2), Time::new(15));
        assert_eq!(u.delta_min(5), Time::new(60));
    }

    #[test]
    fn infinite_delta_plus_preserved() {
        let sp = SporadicModel::new(Time::new(100)).unwrap().shared();
        let u = InnerUpdated::new(sp, Time::new(5), Time::new(20), 2).unwrap();
        assert_eq!(u.delta_plus(2), TimeBound::Infinite);
        assert!(u.delta_min(2) >= Time::new(5));
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(InnerUpdated::new(periodic(100), Time::new(5), Time::new(1), 1).is_err());
        assert!(InnerUpdated::new(periodic(100), Time::new(-1), Time::new(1), 1).is_err());
        assert!(InnerUpdated::new(periodic(100), Time::ZERO, Time::new(1), 0).is_err());
    }

    /// Asserts the analytic lift matches the generic model point-for-point
    /// over all five characteristic functions.
    fn assert_analytic_equiv(model: &dyn EventModel) {
        let a = model.analytic().expect("model should lift");
        for n in 0..=64u64 {
            assert_eq!(a.delta_min(n), model.delta_min(n), "δ⁻({n})");
            assert_eq!(a.delta_plus(n), model.delta_plus(n), "δ⁺({n})");
        }
        for t in (0..=2_000i64).step_by(37) {
            let dt = Time::new(t);
            assert_eq!(a.eta_plus(dt), model.eta_plus(dt), "η⁺({t})");
            assert_eq!(a.eta_minus(dt), model.eta_minus(dt), "η⁻({t})");
        }
        assert_eq!(a.max_simultaneous(), model.max_simultaneous());
    }

    #[test]
    fn analytic_lift_matches_generic() {
        // Jitter-dominated, floor-dominated, and mixed regimes.
        for (p, rm, rp, k) in [
            (250i64, 8i64, 40i64, 1u64),
            (250, 8, 40, 3),
            (10, 15, 60, 1),
            (100, 20, 20, 1),
            (100, 0, 350, 2),
        ] {
            let u = InnerUpdated::new(periodic(p), Time::new(rm), Time::new(rp), k).unwrap();
            assert_analytic_equiv(&u);
        }
    }

    #[test]
    fn analytic_lift_of_sporadic_inner() {
        let sp = SporadicModel::new(Time::new(100)).unwrap().shared();
        let u = InnerUpdated::new(sp, Time::new(5), Time::new(20), 2).unwrap();
        assert_analytic_equiv(&u);
    }

    #[test]
    fn analytic_lift_with_jittery_inner() {
        let inner = StandardEventModel::new(Time::new(200), Time::new(500), Time::new(15))
            .unwrap()
            .shared();
        let u = InnerUpdated::new(inner, Time::new(10), Time::new(70), 2).unwrap();
        assert_analytic_equiv(&u);
    }

    #[test]
    fn zero_response_jitter_and_k1_is_identity_above_floor() {
        let inner = periodic(100);
        let u = InnerUpdated::new(inner.clone(), Time::new(20), Time::new(20), 1).unwrap();
        for n in 2..=8u64 {
            assert_eq!(u.delta_min(n), inner.delta_min(n));
            assert_eq!(u.delta_plus(n), inner.delta_plus(n));
        }
    }
}
