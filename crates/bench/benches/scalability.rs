//! Scalability of the global analysis: runtime vs. system size.
//!
//! Generates synthetic systems with `k` frames (three signals each, one
//! receiver task per signal) on one bus/CPU pair and measures the full
//! global fixed-point analysis in both modes.
//!
//! Run with `cargo bench -p hem-bench --bench scalability`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hem_analysis::Priority;
use hem_autosar_com::{FrameType, TransferProperty};
use hem_can::{CanBusConfig, FrameFormat};
use hem_event_models::{EventModelExt, StandardEventModel};
use hem_system::{
    analyze, ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, SystemConfig, SystemSpec,
    TaskSpec,
};
use hem_time::Time;

/// `k` frames × 3 signals × 1 receiver each; periods staggered to avoid
/// harmonic artifacts, utilizations kept low so every size converges.
fn synthetic_system(k: usize) -> SystemSpec {
    let mut spec = SystemSpec::new()
        .cpu("cpu")
        .bus("can", CanBusConfig::new(Time::new(1)));
    let mut prio = 0u32;
    for f in 0..k {
        let signals = (0..3)
            .map(|s| SignalSpec {
                name: format!("s{s}"),
                transfer: if s == 2 {
                    TransferProperty::Pending
                } else {
                    TransferProperty::Triggering
                },
                source: ActivationSpec::External(
                    StandardEventModel::periodic(Time::new(20_000 + 1_700 * (3 * f + s) as i64))
                        .expect("positive period")
                        .shared(),
                ),
            })
            .collect();
        spec = spec.frame(FrameSpec {
            name: format!("F{f}"),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 8,
            format: FrameFormat::Standard,
            priority: Priority::new(f as u32 + 1),
            signals,
        });
        for s in 0..3 {
            spec = spec.task(TaskSpec {
                name: format!("rx_{f}_{s}"),
                cpu: "cpu".into(),
                bcet: Time::new(120),
                wcet: Time::new(120),
                priority: Priority::new(prio),
                activation: ActivationSpec::Signal {
                    frame: format!("F{f}"),
                    signal: format!("s{s}"),
                },
            });
            prio += 1;
        }
    }
    spec
}

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_analysis");
    for k in [2usize, 4, 8] {
        let spec = synthetic_system(k);
        // Sanity: both modes converge at this size.
        analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).expect("hier converges");
        analyze(&spec, &SystemConfig::new(AnalysisMode::Flat)).expect("flat converges");
        group.bench_with_input(BenchmarkId::new("hierarchical", k), &spec, |b, spec| {
            b.iter(|| {
                analyze(
                    black_box(spec),
                    &SystemConfig::new(AnalysisMode::Hierarchical),
                )
                .expect("converges")
            })
        });
        group.bench_with_input(BenchmarkId::new("flat", k), &spec, |b, spec| {
            b.iter(|| {
                analyze(black_box(spec), &SystemConfig::new(AnalysisMode::Flat)).expect("converges")
            })
        });
    }
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    use hem_bench::paper_system::{simulation, PaperParams};
    let params = PaperParams::default();
    let mut group = c.benchmark_group("simulation");
    for horizon in [100_000i64, 500_000] {
        let horizon = Time::new(horizon);
        let sys = simulation(&params, horizon, 7);
        group.bench_with_input(
            BenchmarkId::new("paper_system", horizon.ticks()),
            &sys,
            |b, sys| b.iter(|| hem_sim::system::run(black_box(sys), horizon)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scalability, bench_simulation);
criterion_main!(benches);
