//! Criterion bench regenerating the paper's Table 3 (and timing the
//! analyses that produce it).
//!
//! Run with `cargo bench -p hem-bench --bench paper_tables`. The table
//! itself is printed once at startup; the benchmark then measures the
//! flat and hierarchical global analyses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hem_bench::paper_system::{analyze_mode, table3, PaperParams};
use hem_system::AnalysisMode;

fn print_table_once() {
    let params = PaperParams::default();
    let rows = table3(&params).expect("paper system analyses");
    eprintln!();
    eprintln!(
        "Table 3 — WCRT flat vs. HEM (S3 = {}, scale = {})",
        params.s3_period, params.cpu_scale
    );
    for row in &rows {
        eprintln!(
            "  {}  CET {:>4}  {:<4}  R+flat {:>6}  R+HEM {:>6}  red {:>5.1}%",
            row.task,
            row.cet,
            row.priority,
            row.r_flat,
            row.r_hem,
            row.reduction_percent()
        );
    }
    eprintln!();
}

fn bench_table3(c: &mut Criterion) {
    print_table_once();
    let params = PaperParams::default();
    let mut group = c.benchmark_group("table3");
    group.bench_function("flat_analysis", |b| {
        b.iter(|| analyze_mode(black_box(&params), AnalysisMode::Flat).expect("converges"))
    });
    group.bench_function("hierarchical_analysis", |b| {
        b.iter(|| analyze_mode(black_box(&params), AnalysisMode::Hierarchical).expect("converges"))
    });
    group.bench_function("full_table", |b| {
        b.iter(|| table3(black_box(&params)).expect("converges"))
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
