//! Criterion bench regenerating the paper's Figure 4 (and timing the
//! η⁺-staircase extraction).
//!
//! Run with `cargo bench -p hem-bench --bench paper_figures`. The figure
//! series are printed once at startup (breakpoints of all four curves);
//! the benchmark then measures curve extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hem_bench::paper_system::{figure4, PaperParams};
use hem_time::Time;

fn print_figure_once(dt_max: Time) {
    let fig = figure4(&PaperParams::default(), dt_max).expect("paper system analyses");
    eprintln!();
    eprintln!("Figure 4 — η⁺ staircases up to Δt = {dt_max} (breakpoints: Δt→count)");
    for (label, steps) in [
        ("F1 frames", &fig.frame_f1),
        ("T1 input ", &fig.t1_input),
        ("T2 input ", &fig.t2_input),
        ("T3 input ", &fig.t3_input),
    ] {
        let pts: Vec<String> = steps
            .iter()
            .take(12)
            .map(|s| format!("{}→{}", s.at, s.count))
            .collect();
        eprintln!(
            "  {label}: {}{}",
            pts.join(" "),
            if steps.len() > 12 { " …" } else { "" }
        );
    }
    eprintln!();
}

fn bench_figure4(c: &mut Criterion) {
    let params = PaperParams::default();
    let dt_max = Time::new(2000 * params.cpu_scale);
    print_figure_once(dt_max);
    let mut group = c.benchmark_group("figure4");
    group.bench_function("staircase_extraction", |b| {
        b.iter(|| figure4(black_box(&params), black_box(dt_max)).expect("converges"))
    });
    group.finish();
}

criterion_group!(benches, bench_figure4);
criterion_main!(benches);
