//! Micro-benchmarks of the analysis building blocks: event-model
//! queries, OR-combination, busy-window analysis, and the full
//! pack → transport → unpack pipeline.
//!
//! Run with `cargo bench -p hem-bench --bench analysis_perf`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hem_analysis::{spp, AnalysisConfig, AnalysisTask, Priority};
use hem_core::{HierarchicalStreamConstructor, PackConstructor, PackInput};
use hem_event_models::ops::OrJoin;
use hem_event_models::{convert, EventModel, EventModelExt, ModelRef, StandardEventModel};
use hem_time::Time;

fn sem(p: i64, j: i64) -> StandardEventModel {
    StandardEventModel::periodic_with_jitter(Time::new(p), Time::new(j)).expect("valid")
}

fn bench_eta(c: &mut Criterion) {
    let m = sem(250, 80);
    let mut group = c.benchmark_group("eta_plus");
    group.bench_function("closed_form", |b| {
        b.iter(|| black_box(&m).eta_plus(black_box(Time::new(12_345))))
    });
    group.bench_function("generic_search", |b| {
        b.iter(|| {
            convert::eta_plus_from_delta_min(&|n| m.delta_min(n), black_box(Time::new(12_345)))
        })
    });
    group.finish();
}

fn bench_or_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("or_join_delta_min");
    for k in [2usize, 4, 8] {
        let inputs: Vec<ModelRef> = (0..k)
            .map(|i| sem(200 + 37 * i as i64, 25).shared())
            .collect();
        let or = OrJoin::new(inputs).expect("non-empty");
        group.bench_with_input(BenchmarkId::from_parameter(k), &or, |b, or| {
            b.iter(|| black_box(or).delta_min(black_box(20)))
        });
    }
    group.finish();
}

fn bench_spp(c: &mut Criterion) {
    let mut group = c.benchmark_group("spp_analysis");
    for n in [3usize, 6, 12] {
        let tasks: Vec<AnalysisTask> = (0..n)
            .map(|i| {
                AnalysisTask::new(
                    format!("t{i}"),
                    Time::new(5),
                    Time::new(5),
                    Priority::new(i as u32),
                    sem(100 + 30 * i as i64, 10).shared(),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &tasks, |b, tasks| {
            b.iter(|| {
                spp::analyze(black_box(tasks), &AnalysisConfig::default()).expect("converges")
            })
        });
    }
    group.finish();
}

fn bench_pack_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("hem_pipeline");
    group.bench_function("pack_process_unpack", |b| {
        b.iter(|| {
            let hem = PackConstructor::new(vec![
                PackInput::triggering("a", sem(250, 0).shared()),
                PackInput::triggering("b", sem(450, 0).shared()),
                PackInput::pending("c", sem(600, 0).shared()),
            ])
            .expect("has trigger")
            .construct()
            .expect("constructs");
            let after = hem
                .process(Time::new(79), Time::new(170))
                .expect("valid rt");
            black_box(after.unpack_by_name("c").expect("present").delta_min(5))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_eta,
    bench_or_join,
    bench_spp,
    bench_pack_pipeline
);
criterion_main!(benches);
