//! Golden-file test for the `serving` section of `BENCH_analysis.json`.
//!
//! Runs a tiny but complete serving benchmark (opens, mutation rounds,
//! kill injection with torn-WAL recovery, deterministic shedding,
//! zero-deadline degradation), zeroes the wall-clock fields, and
//! compares the section byte-exactly against a checked-in golden file.
//! This pins both the JSON shape consumed by `bench_compare` and every
//! deterministic count the run produces. Regenerate after an
//! intentional format change with
//! `GOLDEN_REGEN=1 cargo test -p hem-bench --test golden_serving`.

use std::path::PathBuf;

use hem_bench::serving::{run_serving, ServingParams};

fn golden(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mk golden dir");
        std::fs::write(&path, actual).expect("write golden file");
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; if the change is intentional run \
         `GOLDEN_REGEN=1 cargo test -p hem-bench --test golden_serving`"
    );
}

#[test]
fn serving_section_matches_golden_file() {
    let dir = std::env::temp_dir().join(format!("hem-golden-serving-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let params = ServingParams {
        sessions: 8,
        rounds: 2,
        analyze_every: 4,
        kills: 2,
        shed_capacity: 2,
        shed_probes: 3,
        stale_probes: 2,
    };
    let report = run_serving(&dir, &params);
    let _ = std::fs::remove_dir_all(&dir);

    // The wall-clock fields measure this machine; everything else is a
    // pure function of the parameters and must not drift.
    golden("serving_section.json", &report.normalized().to_json());
}
