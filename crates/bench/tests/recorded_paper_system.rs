//! Recorded analysis of the paper's Fig. 2 / Table 3 system: the
//! event-model caches must actually be hit during the global fixed
//! point, and all deterministic metrics must be identical across runs.

use hem_bench::paper_system::{spec, PaperParams};
use hem_obs::{Counter, MemoryRecorder, MetricsSnapshot};
use hem_system::{analyze_robust, AnalysisMode, SystemConfig};

fn recorded_run(mode: AnalysisMode) -> (MetricsSnapshot, u64) {
    // Pinned to the generic memoized path: this suite instruments the
    // curve caches, which the analytic fast path legitimately bypasses
    // (lifted models answer in O(1) and skip the cache wrapper — see
    // docs/CURVES.md). The fast-path counters get their own test below.
    recorded_run_with(mode, false)
}

fn recorded_run_with(mode: AnalysisMode, analytic: bool) -> (MetricsSnapshot, u64) {
    let (recorder, handle) = MemoryRecorder::handle();
    let config = SystemConfig::new(mode)
        .with_recorder(handle)
        .with_analytic(Some(analytic));
    let robust = analyze_robust(&spec(&PaperParams::default()), &config).expect("well-formed");
    assert!(robust.diagnostics.converged(), "paper system converges");
    (recorder.snapshot(), robust.diagnostics.iterations)
}

#[test]
fn fig2_fixed_point_hits_the_event_model_caches() {
    for mode in [AnalysisMode::Flat, AnalysisMode::Hierarchical] {
        let (snap, iterations) = recorded_run(mode);
        let hits = snap.counter(Counter::CacheHits);
        let misses = snap.counter(Counter::CacheMisses);
        assert!(
            hits > 0,
            "{mode:?}: busy windows must re-ask cached curve points"
        );
        assert!(misses > 0, "{mode:?}: first queries must miss");
        assert_eq!(
            hits + misses,
            snap.counter(Counter::CurveEvaluations),
            "{mode:?}: every instrumented evaluation is a hit or a miss"
        );
        assert_eq!(snap.counter(Counter::GlobalIterations), iterations);
        assert!(snap.counter(Counter::BusyWindowIterations) > 0);
        assert!(snap.counter(Counter::PackingOps) > 0);
    }
}

#[test]
fn fig2_fast_path_lifts_every_model() {
    for mode in [AnalysisMode::Flat, AnalysisMode::Hierarchical] {
        let (snap, _) = recorded_run_with(mode, true);
        // Every Fig. 2 model family has a closed-form lift, so the fast
        // path covers the whole system and no model touches the
        // memoized cache wrapper.
        assert!(
            snap.counter(Counter::AnalyticLifts) > 0,
            "{mode:?}: resolved models must lift"
        );
        assert_eq!(
            snap.counter(Counter::AnalyticFallbacks),
            0,
            "{mode:?}: the paper system lifts completely"
        );
        assert_eq!(
            snap.counter(Counter::CacheHits) + snap.counter(Counter::CacheMisses),
            0,
            "{mode:?}: lifted models bypass the curve caches"
        );
    }
}

#[test]
fn recorded_metrics_are_deterministic_across_runs() {
    let (a, iters_a) = recorded_run(AnalysisMode::Hierarchical);
    let (b, iters_b) = recorded_run(AnalysisMode::Hierarchical);
    assert_eq!(iters_a, iters_b);
    // Counters and per-task breakdowns are exact event counts and must
    // match run for run; only the wall-clock span histograms may differ.
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.labeled, b.labeled);
    assert_eq!(
        a.histograms.get(hem_obs::HIST_BUSY_WINDOW_ITERATIONS),
        b.histograms.get(hem_obs::HIST_BUSY_WINDOW_ITERATIONS)
    );
}

#[test]
fn busy_window_iterations_break_down_per_task() {
    let (snap, _) = recorded_run(AnalysisMode::Hierarchical);
    let total = snap.counter(Counter::BusyWindowIterations);
    let labeled_sum: u64 = snap
        .labeled
        .iter()
        .filter(|((name, _), _)| *name == Counter::BusyWindowIterations.name())
        .map(|(_, v)| v)
        .sum();
    assert_eq!(
        total, labeled_sum,
        "every iteration is attributed to an entity"
    );
    assert!(
        snap.labeled
            .keys()
            .any(|(name, _)| *name == Counter::BusyWindowIterations.name()),
        "per-entity breakdown present"
    );
}
