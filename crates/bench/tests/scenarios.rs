//! Corpus-wide analysis gates: every `.hem` file under
//! `crates/bench/scenarios/` (loaded through
//! [`hem_bench::scenarios::corpus`]) is analyzed in all three modes
//! with mode dominance checked per entity, re-run across thread counts
//! and with the analytic fast path toggled to prove determinism, and
//! its periodic CPU workloads are re-analyzed under TDMA, round-robin,
//! and EDF resource-sharing policies.
//!
//! The DSL round-trip and golden-number gates live in the workspace
//! `tests/scenarios.rs`; the sim-vs-analysis leg lives in
//! `tests/differential_sim_vs_analysis.rs`. All three iterate the same
//! directory, so adding a scenario enrolls it everywhere at once.

use hem_analysis::{dbf, rr, spp, tdma, AnalysisConfig, AnalysisTask, Priority};
use hem_bench::scenarios::{corpus, CorpusEntry};
use hem_event_models::{EventModelExt, ModelRef, StandardEventModel};
use hem_system::dsl::{Scenario, SourceDecl};
use hem_system::{analyze, AnalysisMode, SystemConfig, SystemResults};
use hem_time::Time;

/// Runs one scenario in the given mode and returns its results.
fn run(entry: &CorpusEntry, config: &SystemConfig) -> SystemResults {
    analyze(&entry.scenario.to_spec(), config)
        .unwrap_or_else(|e| panic!("{}: analysis failed: {e}", entry.name))
}

#[test]
fn every_scenario_analyzes_with_mode_dominance() {
    for entry in corpus() {
        let hem = run(&entry, &SystemConfig::new(AnalysisMode::Hierarchical));
        let flat = run(&entry, &SystemConfig::new(AnalysisMode::Flat));
        let flat_sem = run(&entry, &SystemConfig::new(AnalysisMode::FlatSem));
        assert!(hem.is_complete(), "{}: incomplete HEM results", entry.name);
        // Unpacking only removes events from an activating stream, and
        // SEM fitting only adds them: per entity, HEM ≤ Flat ≤ FlatSem.
        for (name, r_hem) in hem.tasks() {
            let r_flat = flat.task(name).expect("task analysed in flat").response;
            let r_sem = flat_sem
                .task(name)
                .expect("task analysed in flatsem")
                .response;
            assert!(
                r_hem.response.r_plus <= r_flat.r_plus,
                "{}: task {name}: HEM bound {} exceeds flat bound {}",
                entry.name,
                r_hem.response.r_plus,
                r_flat.r_plus
            );
            assert!(
                r_flat.r_plus <= r_sem.r_plus,
                "{}: task {name}: flat bound {} exceeds flatsem bound {}",
                entry.name,
                r_flat.r_plus,
                r_sem.r_plus
            );
        }
        for (name, r_hem) in hem.frames() {
            let r_flat = flat.frame(name).expect("frame analysed in flat").response;
            let r_sem = flat_sem
                .frame(name)
                .expect("frame analysed in flatsem")
                .response;
            assert!(
                r_hem.response.r_plus <= r_flat.r_plus,
                "{}: frame {name}: HEM bound {} exceeds flat bound {}",
                entry.name,
                r_hem.response.r_plus,
                r_flat.r_plus
            );
            assert!(
                r_flat.r_plus <= r_sem.r_plus,
                "{}: frame {name}: flat bound {} exceeds flatsem bound {}",
                entry.name,
                r_flat.r_plus,
                r_sem.r_plus
            );
        }
    }
}

#[test]
fn every_scenario_is_deterministic_across_threads_and_fast_path() {
    for entry in corpus() {
        let reference = run(
            &entry,
            &SystemConfig::new(AnalysisMode::Hierarchical).with_analytic(Some(false)),
        );
        for threads in [1usize, 4] {
            for analytic in [false, true] {
                let config = SystemConfig::new(AnalysisMode::Hierarchical)
                    .with_threads(threads)
                    .with_analytic(Some(analytic));
                let results = run(&entry, &config);
                assert_eq!(
                    reference.response_times(),
                    results.response_times(),
                    "{}: results diverge at threads={threads} analytic={analytic}",
                    entry.name
                );
                assert_eq!(
                    reference.iterations(),
                    results.iterations(),
                    "{}: iteration count diverges at threads={threads} analytic={analytic}",
                    entry.name
                );
            }
        }
    }
}

/// A periodic CPU workload extracted from a scenario: the per-CPU task
/// sets whose activations are external `periodic:` sources, each task
/// paired with its declared period, suitable for re-analysis under
/// alternative resource-sharing policies.
fn periodic_cpu_sets(scenario: &Scenario) -> Vec<(String, Vec<(AnalysisTask, Time)>)> {
    scenario
        .cpus
        .iter()
        .filter_map(|cpu| {
            let tasks: Vec<(AnalysisTask, Time)> = scenario
                .tasks
                .iter()
                .filter(|t| &t.cpu == cpu)
                .filter_map(|t| match t.activation {
                    SourceDecl::Periodic { period, jitter } => Some((
                        AnalysisTask::new(
                            &t.name,
                            Time::new(t.bcet),
                            Time::new(t.wcet),
                            Priority::new(t.prio),
                            periodic_model(period, jitter),
                        ),
                        Time::new(period),
                    )),
                    _ => None,
                })
                .collect();
            (tasks.len() >= 2).then(|| (cpu.clone(), tasks))
        })
        .collect()
}

fn periodic_model(period: i64, jitter: i64) -> ModelRef {
    StandardEventModel::periodic_with_jitter(Time::new(period), Time::new(jitter))
        .expect("valid corpus source")
        .shared()
}

#[test]
fn corpus_workloads_hold_under_tdma_rr_and_edf() {
    let config = AnalysisConfig::default();
    let mut slot_sets = 0usize;
    let mut edf_sets = 0usize;
    for entry in corpus() {
        for (cpu, set) in periodic_cpu_sets(&entry.scenario) {
            let tasks: Vec<AnalysisTask> = set.iter().map(|(t, _)| t.clone()).collect();
            let total_c: Time = tasks.iter().map(|t| t.wcet).sum();
            let min_p = set.iter().map(|&(_, p)| p).min().expect("non-empty set");
            let utilization: f64 = set
                .iter()
                .map(|(t, p)| t.wcet.ticks() as f64 / p.ticks() as f64)
                .sum();

            // EDF (implicit deadlines) versus SPP: fixed-priority
            // schedulability is witnessed by r⁺ ≤ P, and EDF is optimal
            // on a dedicated resource, so an SPP witness forces the
            // processor-demand criterion to pass.
            if utilization < 0.99 {
                edf_sets += 1;
                let spp_results = spp::analyze(&tasks, &config)
                    .unwrap_or_else(|e| panic!("{}/{cpu}: SPP failed: {e}", entry.name));
                let spp_meets_deadlines = set
                    .iter()
                    .zip(&spp_results)
                    .all(|((_, p), r)| r.response.r_plus <= *p);
                let edf_tasks: Vec<dbf::EdfTask> = set
                    .iter()
                    .map(|(t, p)| dbf::EdfTask::new(&t.name, t.wcet, *p, t.input.clone()))
                    .collect();
                let verdict = dbf::edf_schedulable(&edf_tasks, &config)
                    .unwrap_or_else(|e| panic!("{}/{cpu}: EDF test failed: {e}", entry.name));
                if spp_meets_deadlines {
                    assert!(
                        verdict.is_schedulable(),
                        "{}/{cpu}: SPP meets every implicit deadline but the \
                         processor-demand criterion rejects the set: {verdict:?}",
                        entry.name
                    );
                }
            }

            // TDMA and round-robin need each task's demand to fit its
            // slot's long-run supply; with slots proportional to WCET
            // that reduces to ΣC < min P.
            if total_c >= min_p {
                continue;
            }
            slot_sets += 1;

            let tdma_tasks: Vec<tdma::TdmaTask> = tasks
                .iter()
                .map(|t| tdma::TdmaTask::new(t.clone(), t.wcet * 2))
                .collect();
            let cycle: Time = tdma_tasks.iter().map(|t| t.slot).sum();
            let tdma_results = tdma::analyze(&tdma_tasks, cycle, &config)
                .unwrap_or_else(|e| panic!("{}/{cpu}: TDMA failed: {e}", entry.name));
            for (t, r) in tasks.iter().zip(&tdma_results) {
                assert!(
                    r.response.r_plus >= t.wcet,
                    "{}/{cpu}: TDMA bound {} below WCET {}",
                    entry.name,
                    r.response.r_plus,
                    t.wcet
                );
            }

            let rr_tasks: Vec<rr::RrTask> = tasks
                .iter()
                .map(|t| rr::RrTask::new(t.clone(), t.wcet))
                .collect();
            let rr_results = rr::analyze(&rr_tasks, &config)
                .unwrap_or_else(|e| panic!("{}/{cpu}: round-robin failed: {e}", entry.name));
            for (t, r) in tasks.iter().zip(&rr_results) {
                assert!(
                    r.response.r_plus >= t.wcet,
                    "{}/{cpu}: round-robin bound {} below WCET {}",
                    entry.name,
                    r.response.r_plus,
                    t.wcet
                );
            }
        }
    }
    // The corpus is expected to keep feeding both legs; if these trip,
    // scenarios with ≥ 2 periodic tasks per CPU were removed.
    assert!(edf_sets >= 10, "only {edf_sets} EDF-checked task sets");
    assert!(slot_sets >= 8, "only {slot_sets} slot-based task sets");
}
