//! The serving benchmark: drives [`hem_server`] the way a fleet of
//! clients would, including the failure modes.
//!
//! [`run_serving`] opens many event-sourced sessions against one
//! [`ServerCore`], walks them through round-robin mutation rounds with
//! periodic analyses, then exercises the robustness machinery
//! *deterministically*:
//!
//! * **kill injection** — selected sessions are dropped from memory and
//!   their WAL tails torn (the on-disk image a `kill -9` mid-append
//!   leaves behind), then re-opened; recovery plus an idempotent resend
//!   of the full history must land every session back on its exact
//!   state, and each recovery is counted;
//! * **overload shedding** — a paused bounded [`WorkQueue`] is
//!   overfilled so exactly the overflow is shed with deterministic
//!   retry hints, then resumed and drained;
//! * **graceful degradation** — zero-deadline analyses against mutated
//!   sessions must serve the last materialized result marked stale.
//!
//! Runs use a small checkpoint threshold so every session also walks
//! the checkpoint/compaction path ([`SERVING_CHECKPOINT_BYTES`]), and
//! [`run_serving_with`] accepts an explicit storage backend — a seeded
//! `ChaosStorage` turns the bench into a fault-injection soak where
//! per-request retries must absorb every injected storage fault.
//!
//! Every count in the resulting [`ServingReport`] (sessions, requests,
//! recoveries, shed, stale responses) is a pure function of the
//! parameters — the CI determinism gate compares them bit-for-bit
//! across thread legs — while the wall-clock fields (`wall_ms`,
//! `req_s`, `p50_ms`, `p99_ms`) measure this machine. Any protocol
//! failure panics: the bench doubles as an end-to-end correctness
//! check at a scale the unit tests do not reach.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use hem_obs::json::{self, JsonValue};
use hem_server::{CoreOptions, RealStorage, ServerCore, Storage, WorkQueue};

/// Checkpoint threshold for serving runs, sized against the workload's
/// record sizes: an `open` entry (~410 framed bytes) stays under it, so
/// every session checkpoints right after its first mutation (~540
/// cumulative), and the handful of later mutations (~130 each) never
/// accumulate back over it. The WAL a kill-injection tears therefore
/// always holds the post-checkpoint tail — mutation rounds 2.. — keeping
/// the duplicate arithmetic of the recovery phase exact.
pub const SERVING_CHECKPOINT_BYTES: u64 = 450;

/// Shape of one serving run. All counts in the report are determined
/// by these parameters alone.
#[derive(Debug, Clone)]
pub struct ServingParams {
    /// Concurrent sessions to open (each gets its own WAL).
    pub sessions: usize,
    /// Mutation rounds; every session receives one mutation per round.
    pub rounds: usize,
    /// Every `analyze_every`-th session is analysed after each round.
    pub analyze_every: usize,
    /// Sessions to crash (torn WAL tail) and recover.
    pub kills: usize,
    /// Bounded work-queue capacity for the overload phase.
    pub shed_capacity: usize,
    /// Requests submitted *beyond* capacity — exactly this many shed.
    pub shed_probes: usize,
    /// Zero-deadline analyses that must degrade to a stale result.
    pub stale_probes: usize,
}

impl ServingParams {
    /// The CI-scale run embedded in `profile_analysis`: small enough to
    /// add little wall time, large enough to exercise every phase.
    #[must_use]
    pub fn ci() -> Self {
        ServingParams {
            sessions: 96,
            rounds: 3,
            analyze_every: 8,
            kills: 8,
            shed_capacity: 8,
            shed_probes: 16,
            stale_probes: 8,
        }
    }

    /// The `load_gen` default: the ISSUE-scale run (>= 1000 sessions
    /// with non-zero recoveries and shed).
    #[must_use]
    pub fn load() -> Self {
        ServingParams {
            sessions: 1200,
            rounds: 3,
            analyze_every: 16,
            kills: 64,
            shed_capacity: 16,
            shed_probes: 64,
            stale_probes: 32,
        }
    }
}

/// What one serving run measured.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Sessions opened.
    pub sessions: u64,
    /// Total requests issued (including the shed ones).
    pub requests: u64,
    /// Wall time of the whole run.
    pub wall_ms: f64,
    /// Requests per second over the whole run.
    pub req_s: f64,
    /// Median per-request latency (synchronous requests).
    pub p50_ms: f64,
    /// 99th-percentile per-request latency.
    pub p99_ms: f64,
    /// WAL recoveries performed (torn-tail re-opens).
    pub recoveries: u64,
    /// Requests shed by the bounded queue.
    pub shed: u64,
    /// Stale materialized results served under expired deadlines.
    pub stale_served: u64,
    /// WAL checkpoints written (every session crosses the threshold).
    pub checkpoints: u64,
    /// WAL bytes reclaimed by checkpoint compaction.
    pub compacted_bytes: u64,
    /// Storage faults injected by a chaos run (0 on a real disk).
    pub injected_faults: u64,
    /// The server's Prometheus-style text exposition, scraped via the
    /// `metrics` op at the end of the run. Not part of [`Self::to_json`]
    /// (it contains wall-clock histograms); `load_gen` prints it.
    pub exposition: String,
}

impl ServingReport {
    /// The `serving` section of `BENCH_analysis.json` (a JSON object,
    /// no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sessions\":{},\"requests\":{},\"wall_ms\":{:.3},\"req_s\":{:.1},\"p50_ms\":{:.4},\"p99_ms\":{:.4},\"recoveries\":{},\"shed\":{},\"stale_served\":{},\"checkpoints\":{},\"compacted_bytes\":{},\"injected_faults\":{}}}",
            self.sessions,
            self.requests,
            self.wall_ms,
            self.req_s,
            self.p50_ms,
            self.p99_ms,
            self.recoveries,
            self.shed,
            self.stale_served,
            self.checkpoints,
            self.compacted_bytes,
            self.injected_faults
        )
    }

    /// A copy with every wall-clock field zeroed — the deterministic
    /// residue the golden-file test pins down.
    #[must_use]
    pub fn normalized(&self) -> ServingReport {
        ServingReport {
            wall_ms: 0.0,
            req_s: 0.0,
            p50_ms: 0.0,
            p99_ms: 0.0,
            exposition: String::new(),
            ..self.clone()
        }
    }
}

/// The Fig. 2-shaped two-task scenario, with per-session source
/// periods so sessions are not all byte-identical.
#[must_use]
pub fn scenario_for(i: usize) -> String {
    let p0 = 400 + 20 * (i % 8);
    let p1 = 600 + 30 * (i % 5);
    format!(
        "cpu cpu0\n\
         cpu cpu1\n\
         bus can0 bit_time=1\n\
         bus can1 bit_time=1\n\
         frame F0 bus=can0 type=direct payload=4 prio=1\n  \
         signal s0 triggering periodic:{p0}\n\
         frame F1 bus=can1 type=direct payload=4 prio=1\n  \
         signal s1 triggering periodic:{p1}\n\
         task t0 cpu=cpu0 cet=30 prio=1 activation=F0/s0\n\
         task t1 cpu=cpu1 cet=40 prio=1 activation=F1/s1\n"
    )
}

/// The deterministic mutation for session `i` in round `r`: cycles
/// through the full event vocabulary.
#[must_use]
pub fn event_for(i: usize, r: usize) -> String {
    match (i + r) % 4 {
        0 => format!(
            r#"{{"type":"set_task","task":"t0","wcet":{}}}"#,
            31 + (i + r) % 7
        ),
        1 => format!(
            r#"{{"type":"set_source","frame":"F0","signal":"s0","period":{},"jitter":{}}}"#,
            380 + 10 * ((i + r) % 6),
            5 * ((i + r) % 3)
        ),
        2 => format!(
            r#"{{"type":"set_bus","bus":"can0","bit_time":{}}}"#,
            1 + (i + r) % 2
        ),
        _ => format!(
            r#"{{"type":"set_payload","frame":"F1","payload":{}}}"#,
            1 + (i + r) % 8
        ),
    }
}

/// Synchronous request driver: counts requests and records latencies.
/// With `max_attempts > 1`, a failed request is retried (the chaos-disk
/// mode: injected faults surface as request errors, and the WAL's
/// rollback self-heal makes the retry clean); on a real disk a single
/// failure is fatal.
struct Driver {
    core: Arc<ServerCore>,
    requests: u64,
    latencies_ms: Vec<f64>,
    max_attempts: usize,
}

impl Driver {
    fn call(&mut self, line: &str) -> JsonValue {
        let mut attempt = 1usize;
        loop {
            let started = Instant::now();
            let response = self.core.handle_line(line);
            self.latencies_ms
                .push(started.elapsed().as_secs_f64() * 1e3);
            self.requests += 1;
            let value = json::parse(&response).expect("server response is valid JSON");
            if matches!(value.get("ok"), Some(JsonValue::Bool(true))) {
                return value;
            }
            assert!(
                attempt < self.max_attempts,
                "serving request failed after {attempt} attempt(s)\n  request: {line}\n  response: {response}"
            );
            attempt += 1;
        }
    }
}

fn session_name(i: usize) -> String {
    format!("s{i}")
}

fn open_line(i: usize) -> String {
    let mut line = format!(
        "{{\"op\":\"open\",\"session\":\"{}\",\"scenario\":",
        session_name(i)
    );
    json::write_escaped(&mut line, &scenario_for(i));
    line.push('}');
    line
}

fn mutate_line(i: usize, seq: u64, event: &str) -> String {
    format!(
        r#"{{"op":"mutate","session":"{}","seq":{seq},"event":{event}}}"#,
        session_name(i)
    )
}

fn expect_bool(value: &JsonValue, key: &str) -> bool {
    match value.get(key) {
        Some(JsonValue::Bool(b)) => *b,
        other => panic!("response field {key:?} is not a bool: {other:?}"),
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn stats_counter(stats: &JsonValue, name: &str) -> u64 {
    stats
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(JsonValue::as_f64)
        .map_or(0, |n| n as u64)
}

/// Runs one full serving benchmark against `data_dir` (created if
/// absent; WAL files are left behind for the caller to clean up).
///
/// # Panics
///
/// On any protocol failure — a failed request, a recovery that does
/// not ack the expected duplicates, a shed count that is not exactly
/// the overflow, or a zero-deadline analysis that is not stale. The
/// bench is a correctness gate, not just a stopwatch.
#[must_use]
pub fn run_serving(data_dir: &Path, params: &ServingParams) -> ServingReport {
    run_serving_with(data_dir, params, Arc::new(RealStorage), 1)
}

/// [`run_serving`] with an explicit storage backend and a per-request
/// retry budget — the chaos mode: a seeded
/// [`ChaosStorage`](hem_server::ChaosStorage) injects deterministic
/// faults, retries absorb them, and the run must still satisfy every
/// protocol assertion. Appends run without per-record fsync (the bench
/// measures the serving path, not the disk; durability is covered by
/// the crash-point enumeration suite).
///
/// # Panics
///
/// As [`run_serving`], after `max_attempts` failures of any request.
#[must_use]
pub fn run_serving_with(
    data_dir: &Path,
    params: &ServingParams,
    storage: Arc<dyn Storage>,
    max_attempts: usize,
) -> ServingReport {
    run_serving_traced(data_dir, params, storage, max_attempts, None)
}

/// [`run_serving_with`] plus an optional trace file: when `trace_out`
/// is set the core exports its Perfetto-loadable request trace there
/// (through the same storage backend it serves from, so a chaos run
/// keeps the file on the modeled disk).
///
/// # Panics
///
/// As [`run_serving`], after `max_attempts` failures of any request.
#[must_use]
pub fn run_serving_traced(
    data_dir: &Path,
    params: &ServingParams,
    storage: Arc<dyn Storage>,
    max_attempts: usize,
    trace_out: Option<&Path>,
) -> ServingReport {
    let kills = params.kills.min(params.sessions);
    let analyze_every = params.analyze_every.max(1);
    let started = Instant::now();
    let mut options = CoreOptions::new(data_dir)
        .sync_appends(false)
        .checkpoint_bytes(SERVING_CHECKPOINT_BYTES)
        .storage(storage.clone());
    if let Some(path) = trace_out {
        options = options.trace_out(path);
    }
    let core = Arc::new(ServerCore::with_options(options).expect("create server core"));
    let mut driver = Driver {
        core: core.clone(),
        requests: 0,
        latencies_ms: Vec::new(),
        max_attempts: max_attempts.max(1),
    };

    // Phase 1: open the whole fleet.
    for i in 0..params.sessions {
        driver.call(&open_line(i));
    }

    // Phase 2: round-robin mutations, analysing a deterministic subset
    // after each round (the warm-start path: round r's analysis reuses
    // round r-1's snapshot).
    for r in 0..params.rounds {
        for i in 0..params.sessions {
            driver.call(&mutate_line(i, (r + 1) as u64, &event_for(i, r)));
        }
        for i in (0..params.sessions).step_by(analyze_every) {
            driver.call(&format!(
                r#"{{"op":"analyze","session":"{}"}}"#,
                session_name(i)
            ));
        }
    }

    // Phase 3: kill injection. Close (drop from memory), tear the WAL
    // tail — the torn-write image of a kill -9 mid-append — then
    // re-open and resend the full history idempotently.
    let stride = (params.sessions / kills.max(1)).max(1);
    let mut torn_tears = 0u64;
    for k in 0..kills {
        let i = k * stride;
        driver.call(&format!(
            r#"{{"op":"close","session":"{}"}}"#,
            session_name(i)
        ));
        // Tear through the same storage the server writes through, so
        // the chaos-disk mode exercises this path too. A WAL that was
        // fully compacted away (checkpoint right after the last append)
        // has no tail to tear; the session then recovers whole.
        let wal = data_dir.join(format!("{}.wal", session_name(i)));
        let len = storage.file_len(&wal).expect("wal exists");
        let torn_expected = len > 2;
        if torn_expected {
            storage.truncate(&wal, len - 2).expect("tear wal tail");
            torn_tears += 1;
        }

        let opened = driver.call(&open_line(i));
        assert!(
            expect_bool(&opened, "recovered"),
            "session {i}: re-open did not report a recovery"
        );
        // Under chaos an open may fault *after* the WAL truncated the
        // torn tail, so the successful retry sees a clean file and
        // reports torn=false; the flag is only exact on a quiet disk.
        // (What was lost is fixed by the tear itself either way, so the
        // duplicate arithmetic below stays exact.)
        if driver.max_attempts == 1 {
            assert_eq!(
                expect_bool(&opened, "torn"),
                torn_expected,
                "session {i}: torn flag does not match the injected tear"
            );
        }
        let mut duplicates = 0usize;
        for r in 0..params.rounds {
            let ack = driver.call(&mutate_line(i, (r + 1) as u64, &event_for(i, r)));
            if expect_bool(&ack, "duplicate") {
                duplicates += 1;
            }
        }
        // The tear damaged exactly the last appended record (which the
        // checkpoint threshold guarantees is the last mutation).
        let expected = if torn_expected {
            params.rounds.saturating_sub(1)
        } else {
            params.rounds
        };
        assert_eq!(
            duplicates, expected,
            "session {i}: unexpected duplicate count on idempotent resend"
        );
        driver.call(&format!(
            r#"{{"op":"analyze","session":"{}"}}"#,
            session_name(i)
        ));
    }

    // Phase 4: overload. A paused bounded queue is overfilled: exactly
    // the overflow is shed (with deterministic retry hints), the
    // accepted requests all complete once draining resumes.
    {
        let queue = WorkQueue::new(core.clone(), params.shed_capacity, 2);
        queue.pause();
        let mut accepted = Vec::new();
        let mut shed_here = 0usize;
        for _ in 0..params.shed_capacity + params.shed_probes {
            driver.requests += 1;
            match queue.submit(r#"{"op":"ping"}"#.to_string()) {
                Ok(rx) => accepted.push(rx),
                Err(verdict) => {
                    assert!(
                        (25..100).contains(&verdict.retry_after_ms),
                        "retry hint {} outside the jitter window",
                        verdict.retry_after_ms
                    );
                    shed_here += 1;
                }
            }
        }
        assert_eq!(
            shed_here, params.shed_probes,
            "a full queue must shed exactly the overflow"
        );
        queue.resume();
        for rx in accepted {
            let response = rx.recv().expect("queue worker replies");
            assert!(response.contains("\"ok\":true"), "ping failed: {response}");
        }
    }

    // Phase 5: degradation. Mutate an already-analysed session, then
    // analyse with a zero deadline: the budget expires immediately and
    // the previous materialized result must be served, marked stale.
    let analysed: Vec<usize> = (0..params.sessions).step_by(analyze_every).collect();
    for &i in analysed.iter().take(params.stale_probes) {
        driver.call(&mutate_line(
            i,
            (params.rounds + 1) as u64,
            &event_for(i, params.rounds),
        ));
        let degraded = driver.call(&format!(
            r#"{{"op":"analyze","session":"{}","deadline_ms":0}}"#,
            session_name(i)
        ));
        assert!(
            expect_bool(&degraded, "stale"),
            "session {i}: zero-deadline analysis did not degrade to a stale result"
        );
    }

    // Scrape the live metrics the way a monitoring agent would.
    let scraped = driver.call(r#"{"op":"metrics"}"#);
    let exposition = scraped
        .get("exposition")
        .and_then(JsonValue::as_str)
        .expect("metrics op returns a text exposition")
        .to_string();

    let stats = driver.call(r#"{"op":"stats"}"#);
    let recoveries = stats_counter(&stats, "wal_recoveries");
    let shed = stats_counter(&stats, "requests_shed");
    let stale_served = stats_counter(&stats, "stale_served");
    let checkpoints = stats_counter(&stats, "checkpoints");
    let compacted_bytes = stats_counter(&stats, "compacted_bytes");
    let injected_faults = stats_counter(&stats, "injected_faults");
    // `wal_recoveries` counts opens that reported a torn tail. Under
    // chaos a faulted open can truncate the tail and then fail, so the
    // successful retry reports clean — the count may fall short of the
    // injected tears, never exceed them.
    if driver.max_attempts == 1 {
        assert_eq!(
            recoveries, torn_tears,
            "every torn kill must recover via the WAL"
        );
    } else {
        assert!(
            recoveries <= torn_tears,
            "more torn recoveries ({recoveries}) than injected tears ({torn_tears})"
        );
    }
    if driver.max_attempts == 1 {
        // On a fault-free disk every session crosses the checkpoint
        // threshold at its first mutation; under chaos a checkpoint
        // write may fault (and be retried only at the next append), so
        // the exact floor only holds here.
        assert!(
            checkpoints >= params.sessions as u64,
            "expected every session to checkpoint at least once, saw {checkpoints}"
        );
        assert!(compacted_bytes > 0, "checkpointing must reclaim WAL bytes");
    }

    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let mut sorted = driver.latencies_ms.clone();
    sorted.sort_by(f64::total_cmp);
    ServingReport {
        sessions: params.sessions as u64,
        requests: driver.requests,
        wall_ms,
        req_s: if wall_ms > 0.0 {
            driver.requests as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        p50_ms: percentile(&sorted, 0.50),
        p99_ms: percentile(&sorted, 0.99),
        recoveries,
        shed,
        stale_served,
        checkpoints,
        compacted_bytes,
        injected_faults,
        exposition,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_rank_by_rounding() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 0.5), 3.0);
        assert_eq!(percentile(&sorted, 1.0), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn report_json_is_valid_and_normalization_zeroes_timings() {
        let report = ServingReport {
            sessions: 8,
            requests: 47,
            wall_ms: 12.5,
            req_s: 3760.0,
            p50_ms: 0.02,
            p99_ms: 1.7,
            recoveries: 2,
            shed: 3,
            stale_served: 2,
            checkpoints: 8,
            compacted_bytes: 4096,
            injected_faults: 0,
            exposition: "# TYPE requests_shed counter\nrequests_shed 3\n".to_string(),
        };
        json::validate(&report.to_json()).expect("serving section is valid JSON");
        let normalized = report.normalized();
        assert_eq!(normalized.wall_ms, 0.0);
        assert_eq!(normalized.req_s, 0.0);
        assert_eq!(normalized.p50_ms, 0.0);
        assert_eq!(normalized.p99_ms, 0.0);
        assert!(normalized.exposition.is_empty());
        assert_eq!(normalized.requests, 47);
    }
}
