//! A scoped parallel map for scenario sweeps.
//!
//! The bench binaries evaluate many independent analysis scenarios (S3
//! sweeps, bus-speed sweeps, the `profile_analysis` speedup probe).
//! [`parallel_map`] fans a scenario list over `std::thread::scope`
//! workers while keeping the output **in input order** — position `i`
//! of the result always corresponds to item `i`, no matter which worker
//! computed it or when, so sweep tables and exported JSON are
//! byte-identical for every thread count.
//!
//! The analysis engine itself has the same property (see
//! `docs/PARALLELISM.md`); this helper parallelises *across* scenarios,
//! which is the profitable axis for sweeps of many small systems.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The sweep-level thread count from the `HEM_THREADS` environment
/// variable (the same knob the engine's `SystemConfig::resolved_threads`
/// reads), defaulting to `1`.
#[must_use]
pub fn env_threads() -> usize {
    std::env::var("HEM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Applies `f` to every item on `threads` scoped threads, returning the
/// results in input order.
///
/// `threads <= 1` degenerates to a plain in-order `map` on the calling
/// thread. Workers claim items through a shared atomic cursor (no
/// chunking), so uneven per-item cost still balances; each result is
/// written into the slot of its item index, which is what makes the
/// output order deterministic.
///
/// # Panics
///
/// Panics if `f` panics on any item (the panic is propagated once the
/// scope joins).
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("item claimed once");
                let result = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every item computed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_map_preserves_order() {
        let out = parallel_map((0..10).collect(), 1, |i: i32| i * 2);
        assert_eq!(out, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let expected: Vec<i64> = (0..200).map(|i| i * i).collect();
        for threads in [2, 4, 8] {
            let out = parallel_map((0..200).collect(), threads, |i: i64| i * i);
            assert_eq!(out, expected, "{threads} threads");
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(parallel_map(vec![7], 16, |i: i32| i + 1), vec![8]);
        let empty: Vec<i32> = parallel_map(Vec::new(), 8, |i: i32| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        let out = parallel_map((0..64u64).collect(), 4, |i| {
            // Vary per-item cost so late items finish before early ones.
            let spin = (64 - i) * 1_000;
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(k);
            }
            (i, acc)
        });
        for (index, (i, acc)) in out.iter().enumerate() {
            assert_eq!(*i, index as u64);
            let spin = 64 - index as u64;
            assert_eq!(*acc, (0..spin * 1_000).sum::<u64>());
        }
    }
}
