//! Reproduction harness for the evaluation of the DATE'08 HEM paper.
//!
//! The [`paper_system`] module encodes the system of the paper's Fig. 2
//! with the parameters of Tables 1–3 and provides the entry points that
//! regenerate every table and figure:
//!
//! * [`paper_system::table3`] — worst-case response times under flat vs.
//!   hierarchical analysis (Table 3),
//! * [`paper_system::figure4`] — the `η⁺` staircases of frame F1's output
//!   stream and the unpacked signal streams activating T1–T3 (Figure 4),
//! * [`paper_system::simulation`] — a behavioural simulation of the same
//!   system for validating that all analytic bounds are conservative.
//!
//! Binaries in `src/bin/` print the tables and figure series; Criterion
//! benches in `benches/` measure analysis runtime. Sweeps over many
//! scenarios can fan out over threads with [`parallel::parallel_map`]
//! (order-deterministic; `HEM_THREADS` selects the width).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod incremental;
pub mod obs;
pub mod paper_system;
pub mod parallel;
pub mod scenarios;
pub mod serving;
