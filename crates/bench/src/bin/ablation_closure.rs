//! Ext-I ablation: additive-closure refinement of the inner update.
//!
//! Def. 9's inner update is conservative but not super-additive; the
//! additive closure (`AdditiveClosure`) recovers the slack without
//! touching soundness. This bin measures how much that is worth on the
//! paper system across relative bus speeds.
//!
//! Run with `cargo run -p hem-bench --bin ablation_closure`.

use hem_bench::paper_system::{spec, PaperParams};
use hem_system::{analyze, AnalysisMode, SystemConfig};

fn main() {
    println!("Additive-closure refinement of unpacked inner streams (Def. 9 + closure)");
    println!();
    println!(
        "{:>9} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "cpu_scale", "T1 Def.9", "T1 +cl", "T2 Def.9", "T2 +cl", "T3 Def.9", "T3 +cl"
    );
    for cpu_scale in [1i64, 2, 5, 10, 20] {
        let params = PaperParams {
            cpu_scale,
            ..PaperParams::default()
        };
        let system = spec(&params);
        let plain = analyze(&system, &SystemConfig::new(AnalysisMode::Hierarchical));
        let tightened = analyze(
            &system,
            &SystemConfig {
                tighten_inner: true,
                ..SystemConfig::new(AnalysisMode::Hierarchical)
            },
        );
        let cell = |r: &Result<hem_system::SystemResults, _>, task: &str| -> String {
            r.as_ref()
                .map(|r| r.task(task).expect("analysed").response.r_plus.to_string())
                .unwrap_or_else(|_| "div".into())
        };
        print!("{cpu_scale:>9} |");
        for task in ["T1", "T2", "T3"] {
            let a = cell(&plain, task);
            let b = cell(&tightened, task);
            let marker = if a != b { "*" } else { " " };
            print!(" {a:>9} {b:>8}{marker} |");
        }
        println!();
        // Soundness cross-check: tightening must never increase a bound.
        if let (Ok(p), Ok(t)) = (&plain, &tightened) {
            for task in ["T1", "T2", "T3"] {
                let rp = p.task(task).expect("analysed").response.r_plus;
                let rt = t.task(task).expect("analysed").response.r_plus;
                assert!(
                    rt <= rp,
                    "{task} at scale {cpu_scale}: closure loosened the bound"
                );
            }
        }
    }
    println!();
    println!("(* = the closure changed the bound)");
}
