//! Ext-E ablation: the three analysis modes on the paper system.
//!
//! * `FlatSem` — the historical SymTA/S-style baseline: everything is a
//!   standard event model, so the frame-activation OR-combination is
//!   conservatively fitted into `(P, J, d_min)` before bus analysis,
//! * `Flat` — flat streams but exact curves (isolates the *unpacking*
//!   benefit from the *parameterization* penalty),
//! * `Hierarchical` — the paper's contribution.
//!
//! Run with `cargo run -p hem-bench --bin ablation_modes`.

use hem_bench::paper_system::{analyze_mode, PaperParams};
use hem_system::AnalysisMode;
use hem_time::Time;

fn main() {
    let params = PaperParams::default();
    println!(
        "Analysis-mode ablation on the paper system (scale = {})",
        params.cpu_scale
    );
    println!();
    println!(
        "{:<6} {:>10} {:>10} {:>14} | {:>10} {:>10}",
        "Task", "FlatSem R+", "Flat R+", "Hierarch. R+", "fit cost", "unpack gain"
    );
    let results: Vec<_> = [
        AnalysisMode::FlatSem,
        AnalysisMode::Flat,
        AnalysisMode::Hierarchical,
    ]
    .iter()
    .map(|m| analyze_mode(&params, *m))
    .collect();
    for task in ["T1", "T2", "T3"] {
        let r: Vec<Option<Time>> = results
            .iter()
            .map(|res| {
                res.as_ref()
                    .ok()
                    .map(|r| r.task(task).expect("task analysed").response.r_plus)
            })
            .collect();
        let show = |t: Option<Time>| t.map_or("diverges".to_string(), |t| t.to_string());
        let pct = |a: Option<Time>, b: Option<Time>| match (a, b) {
            (Some(a), Some(b)) if a.ticks() > 0 => {
                format!(
                    "{:>9.1}%",
                    100.0 * (a - b).ticks() as f64 / a.ticks() as f64
                )
            }
            _ => "     —".into(),
        };
        println!(
            "{:<6} {:>10} {:>10} {:>14} | {:>10} {:>10}",
            task,
            show(r[0]),
            show(r[1]),
            show(r[2]),
            pct(r[0], r[1]),
            pct(r[1], r[2]),
        );
    }
    println!();
    println!("fit cost    = extra pessimism of the SEM parameterization (FlatSem vs Flat)");
    println!("unpack gain = the paper's contribution (Flat vs Hierarchical)");
}
