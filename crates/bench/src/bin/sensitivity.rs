//! Ext-G: sensitivity analysis of the paper system — per-task WCET
//! budgets and the slowest feasible bus clock, under flat vs.
//! hierarchical analysis. The extra WCET headroom the HEM analysis
//! certifies is design margin the integrator can actually use.
//!
//! Run with `cargo run -p hem-bench --bin sensitivity --release`.

use hem_bench::paper_system::{spec, PaperParams};
use hem_system::sensitivity::{max_bit_time, wcet_slack};
use hem_system::{AnalysisMode, SystemConfig};
use hem_time::Time;

fn main() {
    let params = PaperParams::default();
    let system = spec(&params);
    let show = |r: Result<Option<Time>, _>| match r {
        Ok(Some(t)) => t.to_string(),
        Ok(None) => "unbounded".into(),
        Err(_) => "infeasible".into(),
    };
    println!("WCET slack per task (extra execution budget before the analysis fails)");
    println!();
    println!("{:<6} {:>12} {:>12}", "Task", "flat", "HEM");
    for task in ["T1", "T2", "T3"] {
        let flat = wcet_slack(&system, task, &SystemConfig::new(AnalysisMode::Flat));
        let hem = wcet_slack(
            &system,
            task,
            &SystemConfig::new(AnalysisMode::Hierarchical),
        );
        println!("{task:<6} {:>12} {:>12}", show(flat), show(hem));
    }
    println!();
    let flat_bus = max_bit_time(&system, "can", &SystemConfig::new(AnalysisMode::Flat));
    let hem_bus = max_bit_time(
        &system,
        "can",
        &SystemConfig::new(AnalysisMode::Hierarchical),
    );
    println!(
        "Slowest feasible CAN bit time: flat {} | HEM {}",
        show(flat_bus),
        show(hem_bus)
    );
}
