//! Ext-A ablation: sweeps the period of the pending source S3 — the one
//! parameter the available scan of the paper lost — and shows that the
//! Table 3 *shape* (HEM dominates flat, biggest win for the pending
//! low-priority task) is robust to the choice.
//!
//! Run with `cargo run -p hem-bench --bin sweep_s3`. Set `HEM_THREADS`
//! to analyse the sweep points in parallel; the printed table is
//! identical for every thread count.

use hem_bench::paper_system::{table3, PaperParams};
use hem_bench::parallel::{env_threads, parallel_map};

fn main() {
    println!("S3-period sweep — WCRT flat vs. HEM (reduction %)");
    println!();
    println!(
        "{:>6} | {:>8} {:>8} {:>7} | {:>8} {:>8} {:>7} | {:>8} {:>8} {:>7}",
        "P(S3)",
        "T1 flat",
        "T1 HEM",
        "red%",
        "T2 flat",
        "T2 HEM",
        "red%",
        "T3 flat",
        "T3 HEM",
        "red%"
    );
    let periods: Vec<i64> = (300..=1200).step_by(100).collect();
    let results = parallel_map(periods, env_threads(), |s3_period| {
        let params = PaperParams {
            s3_period,
            ..PaperParams::default()
        };
        (s3_period, table3(&params))
    });
    for (s3_period, outcome) in results {
        match outcome {
            Ok(rows) => {
                print!("{s3_period:>6} |");
                for row in &rows {
                    print!(
                        " {:>8} {:>8} {:>6.1}% |",
                        row.r_flat,
                        row.r_hem,
                        row.reduction_percent()
                    );
                }
                println!();
            }
            Err(e) => println!("{s3_period:>6} | analysis failed: {e}"),
        }
    }
}
