//! Ext-A ablation: sweeps the period of the pending source S3 — the one
//! parameter the available scan of the paper lost — and shows that the
//! Table 3 *shape* (HEM dominates flat, biggest win for the pending
//! low-priority task) is robust to the choice.
//!
//! Run with `cargo run -p hem-bench --bin sweep_s3 [--warm]`. Set
//! `HEM_THREADS` to analyse the sweep points in parallel; the printed
//! table is identical for every thread count. With `--warm` the sweep
//! additionally chains every scenario through the incremental
//! warm-start engine and cross-checks that the chained results are
//! bit-identical to the from-scratch table (the single-island paper
//! system is always fully inside the damage cone, so this mode
//! verifies correctness rather than saving work — the replicated grid
//! in `profile_analysis` is where reuse pays; see
//! `docs/INCREMENTAL.md`).

use hem_bench::incremental::run_chain_warm;
use hem_bench::paper_system::{spec, table3, PaperParams};
use hem_bench::parallel::{env_threads, parallel_map};
use hem_system::{AnalysisMode, SystemConfig, SystemSpec};

/// Chains `specs` through the warm-start engine in both modes and
/// verifies each scenario's task WCRTs against the cold table rows.
/// Exits nonzero on any mismatch.
fn verify_warm(specs: &[SystemSpec], rows: &[(Vec<hem_bench::paper_system::Table3Row>, usize)]) {
    for (mode, pick) in [
        (AnalysisMode::Flat, 0usize),
        (AnalysisMode::Hierarchical, 1),
    ] {
        let config = SystemConfig::new(mode).with_threads(1);
        let run = run_chain_warm(specs, &config);
        for (table_rows, index) in rows {
            let rt = &run.response_times[*index];
            for row in table_rows {
                let expected = if pick == 0 { row.r_flat } else { row.r_hem };
                let got = rt[&format!("task:{}", row.task)].r_plus;
                if got != expected {
                    eprintln!(
                        "warm-start mismatch at sweep point {index} ({mode:?}, {}): \
                         chained {got} != cold {expected}",
                        row.task
                    );
                    std::process::exit(1);
                }
            }
        }
        println!(
            "warm chain ({mode:?}): {} scenario(s), mean cone {:.0}%, {} replayed, {} fallback(s) — identical to cold table",
            run.response_times.len(),
            100.0 * run.mean_chained_cone_fraction(),
            run.replayed_results,
            run.full_fallbacks
        );
    }
}

fn main() {
    let warm = std::env::args().any(|a| a == "--warm");
    println!("S3-period sweep — WCRT flat vs. HEM (reduction %)");
    println!();
    println!(
        "{:>6} | {:>8} {:>8} {:>7} | {:>8} {:>8} {:>7} | {:>8} {:>8} {:>7}",
        "P(S3)",
        "T1 flat",
        "T1 HEM",
        "red%",
        "T2 flat",
        "T2 HEM",
        "red%",
        "T3 flat",
        "T3 HEM",
        "red%"
    );
    let periods: Vec<i64> = (300..=1200).step_by(100).collect();
    let results = parallel_map(periods, env_threads(), |s3_period| {
        let params = PaperParams {
            s3_period,
            ..PaperParams::default()
        };
        (s3_period, table3(&params))
    });
    let mut verified = Vec::new();
    for (index, (s3_period, outcome)) in results.into_iter().enumerate() {
        match outcome {
            Ok(rows) => {
                print!("{s3_period:>6} |");
                for row in &rows {
                    print!(
                        " {:>8} {:>8} {:>6.1}% |",
                        row.r_flat,
                        row.r_hem,
                        row.reduction_percent()
                    );
                }
                println!();
                verified.push((rows, index));
            }
            Err(e) => println!("{s3_period:>6} | analysis failed: {e}"),
        }
    }
    if warm {
        println!();
        let specs: Vec<SystemSpec> = (300..=1200)
            .step_by(100)
            .map(|s3_period| {
                spec(&PaperParams {
                    s3_period,
                    ..PaperParams::default()
                })
            })
            .collect();
        verify_warm(&specs, &verified);
    }
}
