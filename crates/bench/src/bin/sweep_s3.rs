//! Ext-A ablation: sweeps the period of the pending source S3 — the one
//! parameter the available scan of the paper lost — and shows that the
//! Table 3 *shape* (HEM dominates flat, biggest win for the pending
//! low-priority task) is robust to the choice.
//!
//! Run with `cargo run -p hem-bench --bin sweep_s3`.

use hem_bench::paper_system::{table3, PaperParams};

fn main() {
    println!("S3-period sweep — WCRT flat vs. HEM (reduction %)");
    println!();
    println!(
        "{:>6} | {:>8} {:>8} {:>7} | {:>8} {:>8} {:>7} | {:>8} {:>8} {:>7}",
        "P(S3)",
        "T1 flat",
        "T1 HEM",
        "red%",
        "T2 flat",
        "T2 HEM",
        "red%",
        "T3 flat",
        "T3 HEM",
        "red%"
    );
    for s3_period in (300..=1200).step_by(100) {
        let params = PaperParams {
            s3_period,
            ..PaperParams::default()
        };
        match table3(&params) {
            Ok(rows) => {
                print!("{s3_period:>6} |");
                for row in &rows {
                    print!(
                        " {:>8} {:>8} {:>6.1}% |",
                        row.r_flat,
                        row.r_hem,
                        row.reduction_percent()
                    );
                }
                println!();
            }
            Err(e) => println!("{s3_period:>6} | analysis failed: {e}"),
        }
    }
}
