//! Ext-C ablation: packing density. A frame carrying `k` triggering
//! signals is transmitted at the sum of the signal rates; under flat
//! analysis every receiver sees all of them, so the over-estimation — and
//! the HEM reduction — grows with `k`.
//!
//! Run with `cargo run -p hem-bench --bin sweep_packing`.

use hem_analysis::Priority;
use hem_autosar_com::{FrameType, TransferProperty};
use hem_can::{CanBusConfig, FrameFormat};
use hem_event_models::{EventModelExt, StandardEventModel};
use hem_system::{
    analyze, ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, SystemConfig, SystemSpec,
    TaskSpec,
};
use hem_time::Time;

/// Builds a frame packing `k` triggering signals with staggered periods;
/// one receiver task per signal.
fn dense_system(k: usize) -> SystemSpec {
    let mut spec = SystemSpec::new()
        .cpu("cpu")
        .bus("can", CanBusConfig::new(Time::new(1)));
    let signals: Vec<SignalSpec> = (0..k)
        .map(|i| SignalSpec {
            name: format!("s{i}"),
            transfer: TransferProperty::Triggering,
            source: ActivationSpec::External(
                StandardEventModel::periodic(Time::new(900 + 150 * i as i64))
                    .expect("positive period")
                    .shared(),
            ),
        })
        .collect();
    spec = spec.frame(FrameSpec {
        name: "F".into(),
        bus: "can".into(),
        frame_type: FrameType::Direct,
        payload_bytes: 8,
        format: FrameFormat::Standard,
        priority: Priority::new(1),
        signals,
    });
    for i in 0..k {
        spec = spec.task(TaskSpec {
            name: format!("rx{i}"),
            cpu: "cpu".into(),
            bcet: Time::new(30),
            wcet: Time::new(30),
            priority: Priority::new(i as u32 + 1),
            activation: ActivationSpec::Signal {
                frame: "F".into(),
                signal: format!("s{i}"),
            },
        });
    }
    spec
}

fn main() {
    println!("Packing-density sweep — k signals per frame, WCRT of the lowest-priority receiver");
    println!();
    println!("{:>3} | {:>10} {:>10} {:>8}", "k", "flat", "HEM", "red%");
    for k in 2..=8 {
        let spec = dense_system(k);
        let low = format!("rx{}", k - 1);
        let wcrt = |mode: AnalysisMode| -> String {
            match analyze(&spec, &SystemConfig::new(mode)) {
                Ok(r) => r
                    .task(&low)
                    .expect("receiver analysed")
                    .response
                    .r_plus
                    .to_string(),
                Err(_) => "diverges".into(),
            }
        };
        let flat = wcrt(AnalysisMode::Flat);
        let hem = wcrt(AnalysisMode::Hierarchical);
        let red = match (flat.parse::<i64>(), hem.parse::<i64>()) {
            (Ok(f), Ok(h)) => format!("{:>7.1}%", 100.0 * (f - h) as f64 / f as f64),
            _ => "   —".into(),
        };
        println!("{k:>3} | {flat:>10} {hem:>10} {red}");
    }
}
