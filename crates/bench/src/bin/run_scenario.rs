//! Analyse or explore a textual scenario file (see `hem_system::dsl`
//! for the format; examples in `crates/bench/scenarios/`).
//!
//! ```sh
//! cargo run -p hem-bench --bin run_scenario -- crates/bench/scenarios/paper.hem
//! cargo run -p hem-bench --bin run_scenario -- crates/bench/scenarios/gateway.hem flat
//! cargo run -p hem-bench --bin run_scenario -- explore crates/bench/scenarios/fig2_tight10x.hem
//! ```
//!
//! Plain mode analyses the handed-in configuration; the optional
//! second argument selects the analysis mode (`hierarchical` default,
//! `flat`, `flatsem`).
//!
//! The `explore` verb searches the scenario's design space — signal
//! packings, priority permutations — for a configuration that meets
//! every `deadline=` annotation (implicit deadline = the activation's
//! periodic source period), exactly as described in
//! `docs/EXPLORATION.md`. An optional numeric argument seeds the
//! randomized priority orders (default 0) and `--out <file>` writes a
//! small JSON summary (for CI artifacts). Exits non-zero when no
//! feasible configuration exists in the searched space.

use hem_system::explore::{explore, ExploreProblem, Verdict};
use hem_system::{analyze, dsl, report, AnalysisMode, SystemConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("explore") {
        run_explore(&args[1..]);
        return;
    }
    let Some(path) = args.first() else {
        eprintln!(
            "usage: run_scenario <scenario file> [hierarchical|flat|flatsem]\n       run_scenario explore <scenario file> [seed] [--out <json file>]"
        );
        std::process::exit(2);
    };
    let mode = match args.get(1).map(String::as_str) {
        None | Some("hierarchical") => AnalysisMode::Hierarchical,
        Some("flat") => AnalysisMode::Flat,
        Some("flatsem") => AnalysisMode::FlatSem,
        Some(other) => {
            eprintln!("unknown mode `{other}` (hierarchical|flat|flatsem)");
            std::process::exit(2);
        }
    };
    let spec = match dsl::parse(&read(path)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}:{e}");
            std::process::exit(1);
        }
    };
    match analyze(&spec, &SystemConfig::new(mode)) {
        Ok(results) => print!("{}", report::render(&spec, &results)),
        Err(e) => {
            eprintln!("analysis failed: {e}");
            std::process::exit(1);
        }
    }
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{path}`: {e}");
            std::process::exit(1);
        }
    }
}

fn run_explore(args: &[String]) {
    let mut path = None;
    let mut seed = 0u64;
    let mut out = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                let Some(file) = args.get(i + 1) else {
                    eprintln!("--out needs a file argument");
                    std::process::exit(2);
                };
                out = Some(file.clone());
                i += 2;
            }
            arg => {
                if path.is_none() {
                    path = Some(arg.to_string());
                } else if let Ok(s) = arg.parse::<u64>() {
                    seed = s;
                } else {
                    eprintln!("unexpected argument `{arg}`");
                    std::process::exit(2);
                }
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: run_scenario explore <scenario file> [seed] [--out <json file>]");
        std::process::exit(2);
    };
    let scenario = match dsl::parse_scenario(&read(&path)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}:{e}");
            std::process::exit(1);
        }
    };
    let problem = ExploreProblem::from_scenario(&scenario, seed);
    let config = SystemConfig::new(AnalysisMode::Hierarchical);
    let outcome = match explore(&problem, &config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("exploration failed: {e}");
            std::process::exit(1);
        }
    };

    println!("design-space exploration of {path} (seed {seed})");
    println!(
        "deadlines: {}",
        if problem.deadlines.is_empty() {
            "none (every converging configuration is feasible)".to_string()
        } else {
            problem
                .deadlines
                .iter()
                .map(|(t, d)| format!("{t}≤{d}"))
                .collect::<Vec<_>>()
                .join(", ")
        }
    );
    println!(
        "candidates: {} visited, {} pruned ({:.1}%), {} feasible, {} warm hit(s)",
        outcome.visited,
        outcome.pruned,
        outcome.pruned_pct(),
        outcome.feasible,
        outcome.warm_hits
    );
    match outcome.default_index {
        Some(i) => match &outcome.reports[i].verdict {
            Verdict::Feasible { score } => {
                println!("default configuration: feasible (objective {score})");
            }
            Verdict::Infeasible {
                miss: Some((task, r, d)),
                ..
            } => {
                println!("default configuration: infeasible ({task} r+ {r} > deadline {d})");
            }
            Verdict::Infeasible { .. } => {
                println!("default configuration: infeasible (analysis diverges)");
            }
            other => println!("default configuration: {other:?}"),
        },
        None => println!("default configuration: not visited (candidate cap reached)"),
    }
    if let Some(best) = outcome.best_report() {
        if let Verdict::Feasible { score } = &best.verdict {
            println!("best configuration (objective {score}):");
        }
        if let Some(packing) = &best.config.packing {
            println!("  packing[{}]: {}", packing.bus, packing.label());
        }
        for (site, period) in &best.config.periods {
            println!("  period[{site}]: {period}");
        }
        for (resource, order) in &best.config.orders {
            println!("  priorities[{resource}]: {}", order.join(" > "));
        }
    }
    let found = outcome.best.is_some();
    println!(
        "feasible configuration found: {}",
        if found { "yes" } else { "no" }
    );

    if let Some(file) = out {
        let best_packing = outcome
            .best_report()
            .and_then(|r| r.config.packing.as_ref())
            .map(|p| p.label())
            .unwrap_or_default();
        let mut json = format!(
            "{{\"scenario\":\"{path}\",\"seed\":{seed},\"visited\":{},\"pruned\":{},\"pruned_pct\":{:.3},\"feasible\":{},\"warm_hits\":{},\"found\":{found},\"best_packing\":",
            outcome.visited,
            outcome.pruned,
            outcome.pruned_pct(),
            outcome.feasible,
            outcome.warm_hits,
        );
        hem_obs::json::write_escaped(&mut json, &best_packing);
        json.push('}');
        if let Err(e) = std::fs::write(&file, json) {
            eprintln!("cannot write `{file}`: {e}");
            std::process::exit(1);
        }
    }
    if !found {
        std::process::exit(1);
    }
}
