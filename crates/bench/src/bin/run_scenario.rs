//! Analyse a textual scenario file (see `hem_system::dsl` for the
//! format; examples in `crates/bench/scenarios/`).
//!
//! ```sh
//! cargo run -p hem-bench --bin run_scenario -- crates/bench/scenarios/paper.hem
//! cargo run -p hem-bench --bin run_scenario -- crates/bench/scenarios/gateway.hem flat
//! ```
//!
//! The optional second argument selects the analysis mode
//! (`hierarchical` default, `flat`, `flatsem`).

use hem_system::{analyze, dsl, report, AnalysisMode, SystemConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: run_scenario <scenario file> [hierarchical|flat|flatsem]");
        std::process::exit(2);
    };
    let mode = match args.next().as_deref() {
        None | Some("hierarchical") => AnalysisMode::Hierarchical,
        Some("flat") => AnalysisMode::Flat,
        Some("flatsem") => AnalysisMode::FlatSem,
        Some(other) => {
            eprintln!("unknown mode `{other}` (hierarchical|flat|flatsem)");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{path}`: {e}");
            std::process::exit(1);
        }
    };
    let spec = match dsl::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}:{e}");
            std::process::exit(1);
        }
    };
    match analyze(&spec, &SystemConfig::new(mode)) {
        Ok(results) => print!("{}", report::render(&spec, &results)),
        Err(e) => {
            eprintln!("analysis failed: {e}");
            std::process::exit(1);
        }
    }
}
