//! Ext-F: end-to-end signal latencies of the paper system — the "signal
//! latency requirements" (paper §4) that the COM-layer design trades
//! off. Triggering signals pay no sampling delay but load the bus;
//! pending signals save bus load but wait for the next frame (and may
//! lose values to register overwrites).
//!
//! Run with `cargo run -p hem-bench --bin latency`.

use hem_bench::paper_system::{spec, PaperParams};
use hem_system::path::{analyze_path, signal_paths};
use hem_system::{analyze, AnalysisMode, SystemConfig};

fn main() {
    let params = PaperParams::default();
    let system = spec(&params);
    let results = match analyze(&system, &SystemConfig::new(AnalysisMode::Hierarchical)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "End-to-end signal latencies (hierarchical analysis, scale = {})",
        params.cpu_scale
    );
    println!();
    println!(
        "{:<14} {:>9} {:>10} {:>9} {:>9} {:>10}",
        "path", "sampling", "transport", "reaction", "total", "delivery"
    );
    for path in signal_paths(&system) {
        match analyze_path(&system, &results, &path) {
            Ok(lat) => println!(
                "{:<14} {:>9} {:>10} {:>9} {:>9} {:>10}",
                format!("{}/{}→{}", path.frame, path.signal, path.task),
                lat.sampling,
                lat.transport,
                lat.reaction,
                lat.total(),
                if lat.guaranteed_delivery {
                    "all"
                } else {
                    "freshest"
                },
            ),
            Err(e) => println!("{:<14} {e}", format!("{}/{}", path.frame, path.signal)),
        }
    }
    println!();
    println!(
        "delivery = \"all\": every write arrives; \"freshest\": pending register \
         may be overwritten, the bound covers delivered values only."
    );
}
