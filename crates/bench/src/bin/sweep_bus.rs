//! Ext-B ablation: relative bus speed. `cpu_scale` is the number of bus
//! bit-time ticks per paper time unit — large values mean a fast bus
//! relative to the CPU work. The flat analysis loses the most when
//! frames arrive much faster than tasks execute; when the bus is slow
//! (`cpu_scale = 1`), frame serialization already spaces activations and
//! only the pending low-priority task benefits from HEMs.
//!
//! Run with `cargo run -p hem-bench --bin sweep_bus`.

use hem_bench::paper_system::{table3, PaperParams};

fn main() {
    println!("Relative bus-speed sweep — cpu_scale (ticks per paper unit) vs. reduction");
    println!();
    println!(
        "{:>9} | {:>8} {:>8} {:>6} | {:>8} {:>8} {:>6} | {:>8} {:>8} {:>6}",
        "cpu_scale",
        "T1 flat",
        "T1 HEM",
        "red%",
        "T2 flat",
        "T2 HEM",
        "red%",
        "T3 flat",
        "T3 HEM",
        "red%"
    );
    for cpu_scale in [1i64, 2, 3, 5, 8, 10, 15, 20, 30, 50] {
        let params = PaperParams {
            cpu_scale,
            ..PaperParams::default()
        };
        match table3(&params) {
            Ok(rows) => {
                print!("{cpu_scale:>9} |");
                for row in &rows {
                    print!(
                        " {:>8} {:>8} {:>5.1}% |",
                        row.r_flat,
                        row.r_hem,
                        row.reduction_percent()
                    );
                }
                println!();
            }
            Err(e) => println!("{cpu_scale:>9} | analysis failed: {e}"),
        }
    }
}
