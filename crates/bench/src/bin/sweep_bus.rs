//! Ext-B ablation: relative bus speed. `cpu_scale` is the number of bus
//! bit-time ticks per paper time unit — large values mean a fast bus
//! relative to the CPU work. The flat analysis loses the most when
//! frames arrive much faster than tasks execute; when the bus is slow
//! (`cpu_scale = 1`), frame serialization already spaces activations and
//! only the pending low-priority task benefits from HEMs.
//!
//! Run with `cargo run -p hem-bench --bin sweep_bus [--warm]`. Set
//! `HEM_THREADS` to analyse the sweep points in parallel; the printed
//! table is identical for every thread count. With `--warm` the sweep
//! additionally chains every scenario through the incremental
//! warm-start engine and cross-checks that the chained results are
//! bit-identical to the from-scratch table (a `cpu_scale` change
//! re-times every source, so each scenario's damage cone is the whole
//! single-island system — this mode verifies correctness rather than
//! saving work; see `docs/INCREMENTAL.md`).

use hem_bench::incremental::run_chain_warm;
use hem_bench::paper_system::{spec, table3, PaperParams, Table3Row};
use hem_bench::parallel::{env_threads, parallel_map};
use hem_system::{AnalysisMode, SystemConfig, SystemSpec};

/// Chains `specs` through the warm-start engine in both modes and
/// verifies each scenario's task WCRTs against the cold table rows.
/// Exits nonzero on any mismatch.
fn verify_warm(specs: &[SystemSpec], rows: &[(Vec<Table3Row>, usize)]) {
    for mode in [AnalysisMode::Flat, AnalysisMode::Hierarchical] {
        let config = SystemConfig::new(mode).with_threads(1);
        let run = run_chain_warm(specs, &config);
        for (table_rows, index) in rows {
            let rt = &run.response_times[*index];
            for row in table_rows {
                let expected = if mode == AnalysisMode::Flat {
                    row.r_flat
                } else {
                    row.r_hem
                };
                let got = rt[&format!("task:{}", row.task)].r_plus;
                if got != expected {
                    eprintln!(
                        "warm-start mismatch at sweep point {index} ({mode:?}, {}): \
                         chained {got} != cold {expected}",
                        row.task
                    );
                    std::process::exit(1);
                }
            }
        }
        println!(
            "warm chain ({mode:?}): {} scenario(s), mean cone {:.0}%, {} replayed, {} fallback(s) — identical to cold table",
            run.response_times.len(),
            100.0 * run.mean_chained_cone_fraction(),
            run.replayed_results,
            run.full_fallbacks
        );
    }
}

fn scales() -> Vec<i64> {
    vec![1, 2, 3, 5, 8, 10, 15, 20, 30, 50]
}

fn main() {
    let warm = std::env::args().any(|a| a == "--warm");
    println!("Relative bus-speed sweep — cpu_scale (ticks per paper unit) vs. reduction");
    println!();
    println!(
        "{:>9} | {:>8} {:>8} {:>6} | {:>8} {:>8} {:>6} | {:>8} {:>8} {:>6}",
        "cpu_scale",
        "T1 flat",
        "T1 HEM",
        "red%",
        "T2 flat",
        "T2 HEM",
        "red%",
        "T3 flat",
        "T3 HEM",
        "red%"
    );
    let results = parallel_map(scales(), env_threads(), |cpu_scale| {
        let params = PaperParams {
            cpu_scale,
            ..PaperParams::default()
        };
        (cpu_scale, table3(&params))
    });
    let mut verified = Vec::new();
    for (index, (cpu_scale, outcome)) in results.into_iter().enumerate() {
        match outcome {
            Ok(rows) => {
                print!("{cpu_scale:>9} |");
                for row in &rows {
                    print!(
                        " {:>8} {:>8} {:>5.1}% |",
                        row.r_flat,
                        row.r_hem,
                        row.reduction_percent()
                    );
                }
                println!();
                verified.push((rows, index));
            }
            Err(e) => println!("{cpu_scale:>9} | analysis failed: {e}"),
        }
    }
    if warm {
        println!();
        let specs: Vec<SystemSpec> = scales()
            .into_iter()
            .map(|cpu_scale| {
                spec(&PaperParams {
                    cpu_scale,
                    ..PaperParams::default()
                })
            })
            .collect();
        verify_warm(&specs, &verified);
    }
}
