//! Ext-B ablation: relative bus speed. `cpu_scale` is the number of bus
//! bit-time ticks per paper time unit — large values mean a fast bus
//! relative to the CPU work. The flat analysis loses the most when
//! frames arrive much faster than tasks execute; when the bus is slow
//! (`cpu_scale = 1`), frame serialization already spaces activations and
//! only the pending low-priority task benefits from HEMs.
//!
//! Run with `cargo run -p hem-bench --bin sweep_bus`. Set `HEM_THREADS`
//! to analyse the sweep points in parallel; the printed table is
//! identical for every thread count.

use hem_bench::paper_system::{table3, PaperParams};
use hem_bench::parallel::{env_threads, parallel_map};

fn main() {
    println!("Relative bus-speed sweep — cpu_scale (ticks per paper unit) vs. reduction");
    println!();
    println!(
        "{:>9} | {:>8} {:>8} {:>6} | {:>8} {:>8} {:>6} | {:>8} {:>8} {:>6}",
        "cpu_scale",
        "T1 flat",
        "T1 HEM",
        "red%",
        "T2 flat",
        "T2 HEM",
        "red%",
        "T3 flat",
        "T3 HEM",
        "red%"
    );
    let scales = vec![1i64, 2, 3, 5, 8, 10, 15, 20, 30, 50];
    let results = parallel_map(scales, env_threads(), |cpu_scale| {
        let params = PaperParams {
            cpu_scale,
            ..PaperParams::default()
        };
        (cpu_scale, table3(&params))
    });
    for (cpu_scale, outcome) in results {
        match outcome {
            Ok(rows) => {
                print!("{cpu_scale:>9} |");
                for row in &rows {
                    print!(
                        " {:>8} {:>8} {:>5.1}% |",
                        row.r_flat,
                        row.r_hem,
                        row.reduction_percent()
                    );
                }
                println!();
            }
            Err(e) => println!("{cpu_scale:>9} | analysis failed: {e}"),
        }
    }
}
