//! Profiles the paper system (Fig. 2, Table 3) with recording on.
//!
//! Runs the flat and hierarchical analyses and a fault-injected
//! simulation of the paper's evaluation system, each against a
//! [`MemoryRecorder`], and writes:
//!
//! * `BENCH_analysis.json` — wall times, global iteration counts, and
//!   all counter/histogram totals per phase, plus a `sweep` section
//!   with the parallel scenario-sweep speedup at `HEM_THREADS` threads
//!   (and the `threads` value itself) and an `incremental` section with
//!   the warm-start chain speedup over a replicated scenario grid
//!   (cold vs. warm wall time, mean damage-cone fraction; see
//!   `docs/INCREMENTAL.md`) and a `serving` section with the CI-scale
//!   serving benchmark (sessions, throughput, latency percentiles,
//!   WAL recoveries, shed and stale counts; see `docs/SERVING.md`) and
//!   an `obs` section with the serving-telemetry overhead probe
//!   (instrumented vs no-op recorder, trace span and flight-dump
//!   totals; see `docs/OBSERVABILITY.md`),
//! * `BENCH_sim_trace.json` — a Chrome `trace_event` file of the
//!   simulated run (open in <https://ui.perfetto.dev> or
//!   `chrome://tracing`),
//! * `BENCH_convergence.jsonl` — the per-iteration response-time
//!   trajectory of the hierarchical analysis.
//!
//! Run with `cargo run -p hem-bench --bin profile_analysis [--release]
//! [output-dir]`.

use std::path::Path;
use std::time::Instant;

use hem_bench::explore::{run_explore, ExploreReport};
use hem_bench::incremental::{replicated_spec, run_chain_cold, run_chain_warm, scenario_chain};
use hem_bench::obs::{run_obs_overhead, ObsReport};
use hem_bench::paper_system::{simulation, spec, PaperParams};
use hem_bench::parallel::{env_threads, parallel_map};
use hem_bench::serving::{run_serving, ServingParams, ServingReport};
use hem_obs::{json, Counter, MemoryRecorder, MetricsSnapshot};
use hem_sim::fault::{Fault, FaultPlan, FaultTarget};
use hem_sim::system::try_run_recorded;
use hem_system::{analyze_robust, AnalysisMode, SystemConfig};
use hem_time::Time;

/// One profiled phase: wall time plus everything the recorder saw.
struct Phase {
    name: &'static str,
    wall_ms: f64,
    iterations: u64,
    metrics: MetricsSnapshot,
}

fn run_analysis(mode: AnalysisMode, name: &'static str, params: &PaperParams) -> Phase {
    let (recorder, handle) = MemoryRecorder::handle();
    let config = SystemConfig::new(mode).with_recorder(handle);
    let started = Instant::now();
    let robust = analyze_robust(&spec(params), &config).unwrap_or_else(|e| {
        eprintln!("{name} analysis failed: {e}");
        std::process::exit(1);
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    if name == "hierarchical" {
        // Show the trajectory the ConvergenceTrace recorded.
        eprintln!(
            "{name} converged in {} iteration(s):",
            robust.diagnostics.iterations
        );
        eprint!("{}", robust.diagnostics.trace.render_table());
        if let Err(e) = std::fs::write(
            out_path("BENCH_convergence.jsonl"),
            robust.diagnostics.trace.to_jsonl(),
        ) {
            eprintln!("cannot write BENCH_convergence.jsonl: {e}");
            std::process::exit(1);
        }
    }
    Phase {
        name,
        wall_ms,
        iterations: robust.diagnostics.iterations,
        metrics: recorder.snapshot(),
    }
}

fn run_simulation(params: &PaperParams) -> Phase {
    let horizon = Time::new(200_000);
    // A seeded corruption fault so the exported trace demonstrates the
    // fault lane; the run stays fully deterministic.
    let plan = FaultPlan::new(42).with(Fault::FrameCorruption {
        frame: FaultTarget::Named("F1".into()),
        probability: 0.1,
        error_frame: Time::new(31),
        max_retransmissions: 2,
    });
    let (recorder, handle) = MemoryRecorder::handle();
    let system = simulation(params, horizon, 0);
    let started = Instant::now();
    if let Err(e) = try_run_recorded(&system, horizon, &plan, &handle) {
        eprintln!("simulation failed: {e}");
        std::process::exit(1);
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let trace = recorder.chrome_trace().to_json();
    if let Err(e) = json::validate(&trace) {
        eprintln!("internal error: sim trace is not valid JSON: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(out_path("BENCH_sim_trace.json"), &trace) {
        eprintln!("cannot write BENCH_sim_trace.json: {e}");
        std::process::exit(1);
    }
    Phase {
        name: "simulation",
        wall_ms,
        iterations: 0,
        metrics: recorder.snapshot(),
    }
}

/// The scenario-sweep speedup probe: many independent Fig. 2 variants
/// analysed once sequentially and once fanned over `HEM_THREADS`
/// scoped threads via [`parallel_map`].
///
/// On multi-core machines this is where analysis parallelism pays off —
/// a sweep of small systems saturates cores with zero coordination —
/// and because `parallel_map` is order-deterministic the two passes
/// must produce identical response times (checked here).
struct Sweep {
    scenarios: usize,
    threads: usize,
    wall_ms_sequential: f64,
    wall_ms_parallel: f64,
}

impl Sweep {
    fn speedup(&self) -> f64 {
        if self.wall_ms_parallel > 0.0 {
            self.wall_ms_sequential / self.wall_ms_parallel
        } else {
            1.0
        }
    }
}

fn run_sweep() -> Sweep {
    let mut scenarios = Vec::new();
    for cpu_scale in [1, 10] {
        for s3_period in (300..=1200).step_by(50) {
            scenarios.push(PaperParams {
                s3_period,
                cpu_scale,
                ..PaperParams::default()
            });
        }
    }
    let analyse = |params: PaperParams| {
        let config = SystemConfig::new(AnalysisMode::Hierarchical).with_threads(1);
        let robust = analyze_robust(&spec(&params), &config).unwrap_or_else(|e| {
            eprintln!("sweep analysis failed ({params:?}): {e}");
            std::process::exit(1);
        });
        robust
            .results
            .tasks()
            .map(|(name, r)| (name.to_owned(), r.response))
            .collect::<Vec<_>>()
    };
    let threads = env_threads();
    let n = scenarios.len();

    let started = Instant::now();
    let sequential = parallel_map(scenarios.clone(), 1, analyse);
    let wall_ms_sequential = started.elapsed().as_secs_f64() * 1e3;

    let started = Instant::now();
    let parallel = parallel_map(scenarios, threads, analyse);
    let wall_ms_parallel = started.elapsed().as_secs_f64() * 1e3;

    if sequential != parallel {
        eprintln!("internal error: parallel sweep diverged from sequential results");
        std::process::exit(1);
    }
    Sweep {
        scenarios: n,
        threads,
        wall_ms_sequential,
        wall_ms_parallel,
    }
}

/// The warm-start probe: a chained mutation walk over a replicated
/// Fig. 2 grid (see [`hem_bench::incremental`]), analysed once from
/// scratch per scenario and once chaining snapshots. Both passes run
/// sequentially (one analysis thread) so the reported speedup isolates
/// incremental reuse from engine parallelism, and every deterministic
/// field below is identical on every CI leg.
struct Incremental {
    replicas: usize,
    scenarios: usize,
    wall_ms_cold: f64,
    wall_ms_warm: f64,
    mean_cone_fraction: f64,
    replayed_results: u64,
    full_fallbacks: u64,
}

impl Incremental {
    fn speedup(&self) -> f64 {
        if self.wall_ms_warm > 0.0 {
            self.wall_ms_cold / self.wall_ms_warm
        } else {
            1.0
        }
    }
}

fn run_incremental() -> Incremental {
    let replicas = 8;
    let steps = 16;
    let specs = scenario_chain(replicas, steps, &PaperParams::default());
    let config = SystemConfig::new(AnalysisMode::Hierarchical).with_threads(1);
    let cold = run_chain_cold(&specs, &config);
    let warm = run_chain_warm(&specs, &config);
    if cold.response_times != warm.response_times {
        eprintln!("internal error: warm-start chain diverged from cold analysis results");
        std::process::exit(1);
    }
    Incremental {
        replicas,
        scenarios: specs.len(),
        wall_ms_cold: cold.wall_ms,
        wall_ms_warm: warm.wall_ms,
        mean_cone_fraction: warm.mean_chained_cone_fraction(),
        replayed_results: warm.replayed_results,
        full_fallbacks: warm.full_fallbacks,
    }
}

/// The analytic fast-path probe, run with the closed-form curve layer
/// pinned off and then pinned on (immune to `HEM_ANALYTIC`, so the
/// deterministic fields of this section are identical on every CI
/// leg). Response times are asserted identical between the passes; the
/// lift / fallback tallies come from the enabled passes. Two profiles
/// (see `docs/CURVES.md`):
///
/// * the **replicated grid** — 2/4/8 glued copies of the Fig. 2 system,
///   where query work on composed hierarchies (bus OR-joins, unpacked
///   signal chains) dominates. This is the headline `speedup`, gated by
///   `bench_compare` against an absolute ≥3x floor.
/// * the **Fig. 2 scenario grid** — 38 parameter variants of the bare
///   3-task paper system, reported under `fig2`. Its leaf models answer
///   `δ±` in closed form even on the generic path, so the whole-run
///   ratio is Amdahl-capped near 1x and only tracked informationally.
struct Analytic {
    scenarios: usize,
    lifts: u64,
    fallbacks: u64,
    wall_ms_generic: f64,
    wall_ms_analytic: f64,
    fig2_scenarios: usize,
    fig2_wall_ms_generic: f64,
    fig2_wall_ms_analytic: f64,
}

impl Analytic {
    fn hit_rate_pct(&self) -> f64 {
        let total = self.lifts + self.fallbacks;
        if total == 0 {
            0.0
        } else {
            100.0 * self.lifts as f64 / total as f64
        }
    }

    fn speedup(&self) -> f64 {
        ratio(self.wall_ms_generic, self.wall_ms_analytic)
    }

    fn fig2_speedup(&self) -> f64 {
        ratio(self.fig2_wall_ms_generic, self.fig2_wall_ms_analytic)
    }
}

fn ratio(generic_ms: f64, analytic_ms: f64) -> f64 {
    if analytic_ms > 0.0 {
        generic_ms / analytic_ms
    } else {
        1.0
    }
}

/// Analyses every spec with the analytic layer pinned to `analytic`,
/// asserting convergence. Returns the wall time, the response times of
/// every run (for the off-vs-on equality assertion), and the lift /
/// fallback totals.
type ResponseTimes = std::collections::BTreeMap<String, hem_analysis::ResponseTime>;

fn analytic_pass(
    specs: &[hem_system::SystemSpec],
    analytic: bool,
) -> (f64, Vec<ResponseTimes>, u64, u64) {
    let (recorder, handle) = MemoryRecorder::handle();
    let config = SystemConfig::new(AnalysisMode::Hierarchical)
        .with_threads(1)
        .with_recorder(handle)
        .with_analytic(Some(analytic));
    let started = Instant::now();
    let mut results = Vec::new();
    for system in specs {
        let robust = analyze_robust(system, &config).unwrap_or_else(|e| {
            eprintln!("analytic probe failed: {e}");
            std::process::exit(1);
        });
        results.push(robust.results.response_times());
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let snapshot = recorder.snapshot();
    (
        wall_ms,
        results,
        snapshot.counter(Counter::AnalyticLifts),
        snapshot.counter(Counter::AnalyticFallbacks),
    )
}

/// Both passes over `specs`, keeping the *faster of two rounds* per leg
/// (both legs run back-to-back in-process, so one timer-noise spike
/// cannot fabricate or destroy a speedup) and asserting the off/on
/// response times bit-identical.
fn analytic_profile(name: &str, specs: &[hem_system::SystemSpec]) -> (f64, f64, u64, u64) {
    let mut generic_ms = f64::INFINITY;
    let mut analytic_ms = f64::INFINITY;
    let (mut lifts, mut fallbacks) = (0, 0);
    for _ in 0..2 {
        let (g_ms, generic, _, _) = analytic_pass(specs, false);
        let (a_ms, fast, l, f) = analytic_pass(specs, true);
        if generic != fast {
            eprintln!("internal error: analytic fast path diverged from generic results ({name})");
            std::process::exit(1);
        }
        generic_ms = generic_ms.min(g_ms);
        analytic_ms = analytic_ms.min(a_ms);
        (lifts, fallbacks) = (l, f);
    }
    (generic_ms, analytic_ms, lifts, fallbacks)
}

fn run_analytic() -> Analytic {
    // Headline profile: the replicated grid (the incremental bench's
    // scale ladder — N glued copies of the Fig. 2 system).
    let grid: Vec<hem_system::SystemSpec> = [4usize, 8, 12]
        .iter()
        .map(|&replicas| replicated_spec(replicas, &PaperParams::default()))
        .collect();
    let (wall_ms_generic, wall_ms_analytic, grid_lifts, grid_fallbacks) =
        analytic_profile("replicated grid", &grid);

    // Informational profile: the bare Fig. 2 parameter sweep.
    let mut fig2 = Vec::new();
    for cpu_scale in [1, 10] {
        for s3_period in (300..=1200).step_by(50) {
            fig2.push(spec(&PaperParams {
                s3_period,
                cpu_scale,
                ..PaperParams::default()
            }));
        }
    }
    let (fig2_wall_ms_generic, fig2_wall_ms_analytic, fig2_lifts, fig2_fallbacks) =
        analytic_profile("Fig. 2 grid", &fig2);

    Analytic {
        scenarios: grid.len() + fig2.len(),
        lifts: grid_lifts + fig2_lifts,
        fallbacks: grid_fallbacks + fig2_fallbacks,
        wall_ms_generic,
        wall_ms_analytic,
        fig2_scenarios: fig2.len(),
        fig2_wall_ms_generic,
        fig2_wall_ms_analytic,
    }
}

/// The design-space exploration benchmark (see [`hem_bench::explore`]):
/// `hem explore` over the 10x-scaled Fig. 2 family widened with
/// overloaded period mutations, searched at `HEM_THREADS` workers.
/// Every count is deterministic in seed and thread count and joins the
/// `--cross` diff; `pruned_pct` is gated against an absolute ≥50%
/// floor (see `docs/EXPLORATION.md`).
fn run_explore_phase() -> ExploreReport {
    run_explore(env_threads())
}

/// The CI-scale serving benchmark (see [`hem_bench::serving`]): a
/// fleet of event-sourced sessions through mutation rounds, injected
/// kills with torn-WAL recovery, deterministic shedding, and
/// zero-deadline degradation. All its counts are deterministic; only
/// the wall-clock fields measure this machine.
fn run_serving_phase() -> ServingReport {
    let dir = std::env::temp_dir().join(format!("hem-profile-serving-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let report = run_serving(&dir, &ServingParams::ci());
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// The telemetry-overhead probe (see [`hem_bench::obs`]): the scripted
/// serving workload with full telemetry vs a no-op recorder.
fn run_obs_phase() -> ObsReport {
    let dir = std::env::temp_dir().join(format!("hem-profile-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let report = run_obs_overhead(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    report
}

fn out_path(file: &str) -> String {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    Path::new(&dir).join(file).to_string_lossy().into_owned()
}

fn main() {
    let params = PaperParams::default();
    let phases = [
        run_analysis(AnalysisMode::Flat, "flat", &params),
        run_analysis(AnalysisMode::Hierarchical, "hierarchical", &params),
        run_simulation(&params),
    ];
    let sweep = run_sweep();
    let incremental = run_incremental();
    let analytic = run_analytic();
    let explore = run_explore_phase();
    let serving = run_serving_phase();
    let obs = run_obs_phase();

    let mut out = format!(
        "{{\"system\":\"paper-fig2\",\"threads\":{},\"phases\":{{",
        sweep.threads
    );
    for (i, phase) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"wall_ms\":{:.3},\"iterations\":{},\"metrics\":{}}}",
            phase.name,
            phase.wall_ms,
            phase.iterations,
            phase.metrics.to_json()
        ));
    }
    out.push_str(&format!(
        "}},\"sweep\":{{\"scenarios\":{},\"threads\":{},\"wall_ms_sequential\":{:.3},\"wall_ms_parallel\":{:.3},\"speedup\":{:.3}}}",
        sweep.scenarios,
        sweep.threads,
        sweep.wall_ms_sequential,
        sweep.wall_ms_parallel,
        sweep.speedup()
    ));
    out.push_str(&format!(
        ",\"incremental\":{{\"replicas\":{},\"scenarios\":{},\"wall_ms_cold\":{:.3},\"wall_ms_warm\":{:.3},\"speedup\":{:.3},\"mean_cone_fraction\":{:.6},\"replayed_results\":{},\"full_fallbacks\":{}}}",
        incremental.replicas,
        incremental.scenarios,
        incremental.wall_ms_cold,
        incremental.wall_ms_warm,
        incremental.speedup(),
        incremental.mean_cone_fraction,
        incremental.replayed_results,
        incremental.full_fallbacks
    ));
    out.push_str(&format!(
        ",\"analytic\":{{\"scenarios\":{},\"lifts\":{},\"fallbacks\":{},\"hit_rate_pct\":{:.3},\"wall_ms_generic\":{:.3},\"wall_ms_analytic\":{:.3},\"speedup\":{:.3},\"fig2\":{{\"scenarios\":{},\"wall_ms_generic\":{:.3},\"wall_ms_analytic\":{:.3},\"speedup\":{:.3}}}}}",
        analytic.scenarios,
        analytic.lifts,
        analytic.fallbacks,
        analytic.hit_rate_pct(),
        analytic.wall_ms_generic,
        analytic.wall_ms_analytic,
        analytic.speedup(),
        analytic.fig2_scenarios,
        analytic.fig2_wall_ms_generic,
        analytic.fig2_wall_ms_analytic,
        analytic.fig2_speedup()
    ));
    out.push_str(&format!(",\"explore\":{}", explore.to_json()));
    out.push_str(&format!(",\"serving\":{}", serving.to_json()));
    out.push_str(&format!(",\"obs\":{}}}", obs.to_json()));
    if let Err(e) = json::validate(&out) {
        eprintln!("internal error: BENCH_analysis.json is not valid JSON: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(out_path("BENCH_analysis.json"), &out) {
        eprintln!("cannot write BENCH_analysis.json: {e}");
        std::process::exit(1);
    }

    println!("profile of the paper system (Fig. 2 / Table 3)");
    println!();
    println!(
        "{:<14} {:>9} {:>6} {:>10} {:>10} {:>10} {:>9}",
        "phase", "wall ms", "iters", "busy iters", "cache hit", "cache miss", "packings"
    );
    for phase in &phases {
        println!(
            "{:<14} {:>9.3} {:>6} {:>10} {:>10} {:>10} {:>9}",
            phase.name,
            phase.wall_ms,
            phase.iterations,
            phase.metrics.counter(Counter::BusyWindowIterations),
            phase.metrics.counter(Counter::CacheHits),
            phase.metrics.counter(Counter::CacheMisses),
            phase.metrics.counter(Counter::PackingOps),
        );
    }
    println!();
    println!(
        "scenario sweep: {} scenarios, {} thread(s): {:.3} ms sequential, {:.3} ms parallel ({:.2}x)",
        sweep.scenarios,
        sweep.threads,
        sweep.wall_ms_sequential,
        sweep.wall_ms_parallel,
        sweep.speedup()
    );
    println!(
        "incremental chain: {} scenarios over {} replicas: {:.3} ms cold, {:.3} ms warm ({:.2}x), mean cone {:.1}%, {} replayed, {} fallback(s)",
        incremental.scenarios,
        incremental.replicas,
        incremental.wall_ms_cold,
        incremental.wall_ms_warm,
        incremental.speedup(),
        100.0 * incremental.mean_cone_fraction,
        incremental.replayed_results,
        incremental.full_fallbacks
    );
    println!(
        "analytic fast path: replicated grid {:.3} ms generic, {:.3} ms analytic ({:.2}x); Fig. 2 grid ({} scenarios) {:.3} ms generic, {:.3} ms analytic ({:.2}x); {} lift(s), {} fallback(s), {:.1}% hit rate",
        analytic.wall_ms_generic,
        analytic.wall_ms_analytic,
        analytic.speedup(),
        analytic.fig2_scenarios,
        analytic.fig2_wall_ms_generic,
        analytic.fig2_wall_ms_analytic,
        analytic.fig2_speedup(),
        analytic.lifts,
        analytic.fallbacks,
        analytic.hit_rate_pct()
    );
    println!(
        "explore: {} configs in {:.3} ms ({:.0} configs/s), {} pruned ({:.1}%), {} feasible, mean cone {:.1}%",
        explore.configs,
        explore.wall_ms,
        explore.configs_per_s(),
        explore.pruned,
        explore.pruned_pct,
        explore.feasible,
        100.0 * explore.mean_cone_fraction
    );
    println!(
        "serving: {} sessions, {} requests ({:.0} req/s), p50 {:.3} ms, p99 {:.3} ms, {} recoveries, {} shed, {} stale",
        serving.sessions,
        serving.requests,
        serving.req_s,
        serving.p50_ms,
        serving.p99_ms,
        serving.recoveries,
        serving.shed,
        serving.stale_served
    );
    println!(
        "obs overhead: {:.2}% vs noop recorder, {} trace spans, {} flight-dump bytes",
        obs.overhead_pct, obs.spans, obs.dump_bytes
    );
    println!("wrote BENCH_analysis.json, BENCH_sim_trace.json, BENCH_convergence.jsonl");
}
