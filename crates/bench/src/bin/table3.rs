//! Regenerates Table 3 of the paper: WCRT of T1–T3 on CPU1 with flat
//! event streams vs. hierarchical event models.
//!
//! Run with `cargo run -p hem-bench --bin table3 [--release]`.

use hem_bench::paper_system::{table3, PaperParams};

fn main() {
    let params = PaperParams::default();
    let rows = match table3(&params) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            std::process::exit(1);
        }
    };
    println!("Table 3 — CPU (SPP-scheduled): WCRT flat vs. HEM");
    println!("(S3 period assumed {} — see DESIGN.md)", params.s3_period);
    println!();
    println!(
        "{:<6} {:<10} {:<6} {:>8} {:>8} {:>8}",
        "Task", "CET", "Prio", "R+ flat", "R+ HEM", "Red."
    );
    for row in &rows {
        println!(
            "{:<6} [{}:{}]{:<3} {:<6} {:>8} {:>8} {:>7.1}%",
            row.task,
            row.cet,
            row.cet,
            "",
            row.priority,
            row.r_flat,
            row.r_hem,
            row.reduction_percent()
        );
    }
}
