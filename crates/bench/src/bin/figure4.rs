//! Regenerates Figure 4 of the paper: the `η⁺(Δt)` staircases of frame
//! F1's output stream (total frame arrivals) and of the three unpacked
//! signal streams activating T1–T3.
//!
//! Prints the exact staircase breakpoints; pipe into a plotting tool of
//! your choice. Run with `cargo run -p hem-bench --bin figure4`.

use hem_bench::paper_system::{figure4, PaperParams};
use hem_event_models::sampling::EtaStep;
use hem_time::Time;

fn print_series(label: &str, steps: &[EtaStep]) {
    println!("# {label}");
    println!("# dt eta_plus");
    for s in steps {
        println!("{} {}", s.at, s.count);
    }
    println!();
}

fn main() {
    let params = PaperParams::default();
    // The paper's x-axis spans 2000 of its time units.
    let dt_max = Time::new(2000 * params.cpu_scale);
    let fig = match figure4(&params, dt_max) {
        Ok(fig) => fig,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            std::process::exit(1);
        }
    };
    println!("# Figure 4 — η⁺ staircases, Δt ∈ (0, {dt_max}]");
    print_series("F1 total frame arrivals (black dots)", &fig.frame_f1);
    print_series("T1 input: unpacked s1 (red squares)", &fig.t1_input);
    print_series("T2 input: unpacked s2 (blue squares)", &fig.t2_input);
    print_series("T3 input: unpacked s3 (green triangles)", &fig.t3_input);
}
