//! Ext-D validation: runs the behavioural simulation of the paper system
//! across many seeds and checks every observation against the analytic
//! bounds — observed worst responses must never exceed the computed
//! `R⁺`, and the HEM bound must stay above what the system actually does.
//!
//! Run with `cargo run -p hem-bench --bin validate_sim --release`.

use hem_bench::paper_system::{analyze_mode, simulate, PaperParams};
use hem_system::AnalysisMode;
use hem_time::Time;

fn main() {
    let params = PaperParams::default();
    let hem = match analyze_mode(&params, AnalysisMode::Hierarchical) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analysis failed: {e}");
            std::process::exit(1);
        }
    };
    let horizon = Time::new(500_000);
    let seeds = 25u64;
    let mut worst_observed: std::collections::BTreeMap<String, Time> = Default::default();
    let mut violations = 0u32;
    for seed in 0..seeds {
        let report = simulate(&params, horizon, seed);
        for (name, &obs) in report
            .task_worst_response
            .iter()
            .chain(report.frame_worst_response.iter())
        {
            let entry = worst_observed.entry(name.clone()).or_insert(Time::ZERO);
            *entry = (*entry).max(obs);
            let bound = hem
                .task(name)
                .or_else(|| hem.frame(name))
                .expect("analysed entity")
                .response
                .r_plus;
            if obs > bound {
                println!("VIOLATION seed {seed}: {name} observed {obs} > bound {bound}");
                violations += 1;
            }
        }
    }
    println!("Simulation validation — {seeds} seeds × horizon {horizon} ticks (HEM bounds)");
    println!();
    println!(
        "{:<6} {:>10} {:>10} {:>8}",
        "Entity", "observed", "bound R+", "slack"
    );
    for (name, obs) in &worst_observed {
        let bound = hem
            .task(name)
            .or_else(|| hem.frame(name))
            .expect("analysed entity")
            .response
            .r_plus;
        println!("{:<6} {:>10} {:>10} {:>8}", name, obs, bound, bound - *obs);
    }
    println!();
    if violations == 0 {
        println!("OK: all observations within analytic bounds");
    } else {
        println!("FAILED: {violations} bound violations");
        std::process::exit(1);
    }
}
