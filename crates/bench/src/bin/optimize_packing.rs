//! Ext-H: design-space exploration — which signals should share a frame?
//!
//! Enumerates every partition of the paper's four signals into frames
//! (15 set partitions), analyses each configuration hierarchically, and
//! prints the trade-off between bus load, per-task WCRTs and end-to-end
//! latencies. This exercises the library as the design tool the paper
//! positions CPA to be.
//!
//! Run with `cargo run -p hem-bench --bin optimize_packing --release`.

use hem_analysis::Priority;
use hem_autosar_com::{FrameType, TransferProperty};
use hem_can::{CanBusConfig, FrameFormat};
use hem_event_models::{EventModelExt, StandardEventModel};
use hem_system::path::{analyze_path, signal_paths};
use hem_system::{
    analyze, ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, SystemConfig, SystemSpec,
    TaskSpec,
};
use hem_time::Time;

/// Signal table: (name, period in ticks, pending?, receiver CET or 0).
const SIGNALS: [(&str, i64, bool, i64); 4] = [
    ("s1", 2500, false, 240),
    ("s2", 4500, false, 320),
    ("s3", 6000, true, 400),
    ("s4", 4000, false, 0),
];

/// All partitions of `n` items (restricted-growth strings).
fn partitions(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut rgs = vec![0usize; n];
    loop {
        out.push(rgs.clone());
        // Next restricted-growth string.
        let mut i = n;
        loop {
            if i == 1 {
                return out;
            }
            i -= 1;
            let max_prev = rgs[..i].iter().copied().max().unwrap_or(0);
            if rgs[i] <= max_prev {
                rgs[i] += 1;
                for r in rgs.iter_mut().skip(i + 1) {
                    *r = 0;
                }
                break;
            }
        }
    }
}

fn build_spec(assignment: &[usize]) -> Option<SystemSpec> {
    let groups = assignment.iter().copied().max().unwrap_or(0) + 1;
    let mut spec = SystemSpec::new()
        .cpu("cpu1")
        .bus("can", CanBusConfig::new(Time::new(1)));
    for g in 0..groups {
        let members: Vec<usize> = (0..SIGNALS.len()).filter(|&i| assignment[i] == g).collect();
        // A direct frame needs a triggering member.
        if members.iter().all(|&i| SIGNALS[i].2) {
            return None;
        }
        let signals = members
            .iter()
            .map(|&i| {
                let (name, period, pending, _) = SIGNALS[i];
                SignalSpec {
                    name: name.into(),
                    transfer: if pending {
                        TransferProperty::Pending
                    } else {
                        TransferProperty::Triggering
                    },
                    source: ActivationSpec::External(
                        StandardEventModel::periodic(Time::new(period))
                            .expect("positive period")
                            .shared(),
                    ),
                }
            })
            .collect();
        spec = spec.frame(FrameSpec {
            name: format!("F{g}"),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: members.len() as u8,
            format: FrameFormat::Standard,
            priority: Priority::new(g as u32 + 1),
            signals,
        });
    }
    for (i, (name, _, _, cet)) in SIGNALS.iter().enumerate() {
        if *cet == 0 {
            continue;
        }
        spec = spec.task(TaskSpec {
            name: format!("rx_{name}"),
            cpu: "cpu1".into(),
            bcet: Time::new(*cet),
            wcet: Time::new(*cet),
            priority: Priority::new(i as u32 + 1),
            activation: ActivationSpec::Signal {
                frame: format!("F{}", assignment[i]),
                signal: (*name).into(),
            },
        });
    }
    Some(spec)
}

fn label(assignment: &[usize]) -> String {
    let groups = assignment.iter().copied().max().unwrap_or(0) + 1;
    (0..groups)
        .map(|g| {
            let names: Vec<&str> = (0..SIGNALS.len())
                .filter(|&i| assignment[i] == g)
                .map(|i| SIGNALS[i].0)
                .collect();
            format!("{{{}}}", names.join(","))
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    println!("Packing exploration — all partitions of {{s1, s2, s3, s4}} into direct frames");
    println!();
    println!(
        "{:<28} {:>7} {:>9} {:>11} {:>12}",
        "frames", "#frames", "worst R+", "worst lat.", "verdict"
    );
    let mut best: Option<(Time, String)> = None;
    for assignment in partitions(SIGNALS.len()) {
        let Some(spec) = build_spec(&assignment) else {
            println!(
                "{:<28} {:>7} — pending-only frame never sends",
                label(&assignment),
                "-"
            );
            continue;
        };
        let frames = assignment.iter().copied().max().unwrap_or(0) + 1;
        match analyze(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)) {
            Ok(results) => {
                let worst_r = results
                    .tasks()
                    .map(|(_, r)| r.response.r_plus)
                    .max()
                    .unwrap_or(Time::ZERO);
                let worst_lat = signal_paths(&spec)
                    .iter()
                    .filter_map(|p| analyze_path(&spec, &results, p).ok())
                    .map(|l| l.total())
                    .max()
                    .unwrap_or(Time::ZERO);
                let line = label(&assignment);
                if best.as_ref().is_none_or(|(b, _)| worst_lat < *b) {
                    best = Some((worst_lat, line.clone()));
                }
                println!(
                    "{:<28} {:>7} {:>9} {:>11} {:>12}",
                    line, frames, worst_r, worst_lat, "ok"
                );
            }
            Err(_) => {
                println!(
                    "{:<28} {:>7} {:>9} {:>11} {:>12}",
                    label(&assignment),
                    frames,
                    "-",
                    "-",
                    "diverges"
                );
            }
        }
    }
    if let Some((lat, line)) = best {
        println!();
        println!("lowest worst-case latency: {lat} with {line}");
    }
}
