//! Ext-H: design-space exploration — which signals should share a frame?
//!
//! A thin driver over [`mod@hem_system::explore`]: the exploration engine
//! enumerates every partition of the paper's four signals into frames
//! (15 restricted-growth partitions of the packing axis), analyses
//! each configuration hierarchically, and this binary prints the
//! trade-off between per-task WCRTs and end-to-end latencies. This
//! exercises the library as the design tool the paper positions CPA
//! to be; `hem explore` (the `run_scenario` verb) runs the same search
//! on any scenario file.
//!
//! Run with `cargo run -p hem-bench --bin optimize_packing --release`.

use hem_analysis::Priority;
use hem_autosar_com::{FrameType, TransferProperty};
use hem_can::{CanBusConfig, FrameFormat};
use hem_event_models::{EventModelExt, StandardEventModel};
use hem_system::explore::{
    explore, ExploreProblem, Objective, PackingSpace, PrioritySpace, Verdict,
};
use hem_system::{
    ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, SystemConfig, SystemSpec, TaskSpec,
};
use hem_time::Time;

/// Signal table: (name, period in ticks, pending?, receiver CET or 0).
const SIGNALS: [(&str, i64, bool, i64); 4] = [
    ("s1", 2500, false, 240),
    ("s2", 4500, false, 320),
    ("s3", 6000, true, 400),
    ("s4", 4000, false, 0),
];

/// The base system: all four signals on one frame. The exploration
/// engine's packing axis repartitions them; the receiver tasks follow
/// their signal to whatever frame carries it.
fn base_spec() -> SystemSpec {
    let mut spec = SystemSpec::new()
        .cpu("cpu1")
        .bus("can", CanBusConfig::new(Time::new(1)));
    let signals = SIGNALS
        .iter()
        .map(|(name, period, pending, _)| SignalSpec {
            name: (*name).into(),
            transfer: if *pending {
                TransferProperty::Pending
            } else {
                TransferProperty::Triggering
            },
            source: ActivationSpec::External(
                StandardEventModel::periodic(Time::new(*period))
                    .expect("positive period")
                    .shared(),
            ),
        })
        .collect();
    spec = spec.frame(FrameSpec {
        name: "can_g0".into(),
        bus: "can".into(),
        frame_type: FrameType::Direct,
        payload_bytes: SIGNALS.len() as u8,
        format: FrameFormat::Standard,
        priority: Priority::new(1),
        signals,
    });
    for (i, (name, _, _, cet)) in SIGNALS.iter().enumerate() {
        if *cet == 0 {
            continue;
        }
        spec = spec.task(TaskSpec {
            name: format!("rx_{name}"),
            cpu: "cpu1".into(),
            bcet: Time::new(*cet),
            wcet: Time::new(*cet),
            priority: Priority::new(i as u32 + 1),
            activation: ActivationSpec::Signal {
                frame: "can_g0".into(),
                signal: (*name).into(),
            },
        });
    }
    spec
}

fn main() {
    let mut problem = ExploreProblem::new(base_spec());
    problem.packing = PackingSpace::Partitions {
        bus: "can".into(),
        widths: Some(vec![1; SIGNALS.len()]),
    };
    problem.priorities = PrioritySpace::declared_only();
    problem.objective = Objective::WorstPathLatency;
    // The table is the point: print every partition, including the
    // overloaded ones the necessary tests would skip.
    problem.use_necessary_tests = false;

    let outcome =
        explore(&problem, &SystemConfig::new(AnalysisMode::Hierarchical)).unwrap_or_else(|e| {
            eprintln!("exploration failed: {e}");
            std::process::exit(1);
        });

    println!("Packing exploration — all partitions of {{s1, s2, s3, s4}} into direct frames");
    println!();
    println!(
        "{:<28} {:>7} {:>9} {:>11} {:>12}",
        "frames", "#frames", "worst R+", "worst lat.", "verdict"
    );
    for report in &outcome.reports {
        let packing = report.config.packing.as_ref().expect("packing axis is on");
        let line = packing.label();
        let frames = packing.groups.len();
        match &report.verdict {
            Verdict::InvalidPacking(_) => {
                println!("{line:<28} {:>7} — pending-only frame never sends", "-");
            }
            Verdict::Feasible { score } => {
                let worst_r = report.worst_task_response.unwrap_or(Time::ZERO);
                println!(
                    "{line:<28} {frames:>7} {worst_r:>9} {score:>11} {:>12}",
                    "ok"
                );
            }
            Verdict::Infeasible { .. } | Verdict::Pruned(_) => {
                println!(
                    "{line:<28} {frames:>7} {:>9} {:>11} {:>12}",
                    "-", "-", "diverges"
                );
            }
        }
    }
    if let Some(best) = outcome.best_report() {
        if let Verdict::Feasible { score } = &best.verdict {
            let line = best
                .config
                .packing
                .as_ref()
                .expect("packing axis is on")
                .label();
            println!();
            println!("lowest worst-case latency: {score} with {line}");
        }
    }
}
