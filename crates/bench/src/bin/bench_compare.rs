//! Compares `BENCH_analysis.json` profiles: the CI benchmark-regression
//! and cross-leg determinism gates.
//!
//! Three modes:
//!
//! * `bench_compare <fresh> <baseline>` — the **regression gate**:
//!   deterministic fields (iteration counts, recorder counters, cone
//!   fractions, scenario counts) must match the committed baseline
//!   exactly; wall-clock fields may regress by at most the tolerance
//!   (default 30 %, `HEM_BENCH_TOLERANCE` overrides, e.g. `0.5`) plus
//!   an absolute slack (default 25 ms, `HEM_BENCH_SLACK_MS` overrides)
//!   that keeps sub-millisecond micro-measurements from flaking on
//!   timer noise — their work is pinned exactly by the counter fields
//!   anyway; speedup fields are ratios of two such timings and may
//!   fall below the baseline by at most the *compounded* relative
//!   tolerance (`(1 + t)²`, both timings drifting adversarially). Prints a markdown delta table (appended to
//!   `$GITHUB_STEP_SUMMARY` when set) and exits `1` on any regression.
//! * `bench_compare --cross <a> <b>` — the **determinism gate**: every
//!   deterministic field must be bit-identical between two profiles
//!   (the `HEM_THREADS=1` and `=4` CI legs); wall-clock, speedup, and
//!   thread-count fields are ignored. This turns the
//!   `docs/PARALLELISM.md` guarantee into an enforced check.
//! * `bench_compare --report <fresh>` — prints the sweep, incremental,
//!   and serving summaries of one profile, failing loudly when the
//!   file is missing, malformed, or lacks the expected sections
//!   (replacing the former inline-python report step that silently
//!   assumed them).
//!
//! Deterministic vs. not: `wall_ms*` / `*_ms` fields (latency
//! percentiles included) and the `span_us/*`, `queue_wait_us/*`, and
//! `service_us/*` histogram families measure wall time; `speedup`
//! fields are ratios of wall times; `threads` records the CI leg and
//! `req_s` is a throughput over wall time. `obs.overhead_pct` is a
//! ratio of wall times gated against an **absolute** ceiling
//! ([`OBS_OVERHEAD_LIMIT_PCT`]) rather than the baseline, so serving
//! telemetry can never silently grow past its budget; likewise
//! `explore.pruned_pct` is gated against the absolute
//! [`EXPLORE_PRUNED_FLOOR_PCT`] floor and `explore.configs_per_s` is
//! throughput over wall time (reported only). Everything else
//! in the profile — including every count in the `serving` section and
//! `obs.spans` / `obs.dump_bytes` — is covered by the engine's
//! determinism guarantee and must not drift.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

use hem_obs::json::{parse, JsonValue};

/// Absolute ceiling on `obs.overhead_pct`: serving telemetry may cost
/// at most this much wall time relative to a no-op recorder.
const OBS_OVERHEAD_LIMIT_PCT: f64 = 5.0;

/// Absolute floor on `analytic.speedup`: the closed-form curve layer
/// must keep the replicated-grid profile at least this much faster
/// than the generic path (see `docs/CURVES.md`). Gated against the
/// floor rather than the baseline so a lucky baseline measurement can
/// never ratchet the requirement above what the layer promises.
const ANALYTIC_SPEEDUP_FLOOR: f64 = 3.0;

/// Absolute floor on `explore.pruned_pct`: the exploration benchmark's
/// necessary tests must keep eliminating at least half the candidate
/// space before any fixed point runs (see `docs/EXPLORATION.md`).
/// `pruned_pct` is a ratio of two deterministic counts, so unlike the
/// speedup floors a failure here means the pruning logic itself — not
/// the machine — changed; the counts next to it are gated exactly.
const EXPLORE_PRUNED_FLOOR_PCT: f64 = 50.0;

/// The absolute floor (and its display unit) a [`Class::Floored`]
/// field is gated against.
fn floor_for(path: &str) -> (f64, &str) {
    if path.contains("pruned_pct") {
        (EXPLORE_PRUNED_FLOOR_PCT, "%")
    } else {
        (ANALYTIC_SPEEDUP_FLOOR, "x")
    }
}

/// How a flattened profile field is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// Deterministic: must match exactly.
    Exact,
    /// Wall-clock time: larger is worse, tolerance applies.
    Timing,
    /// Wall-clock ratio: smaller is worse, tolerance applies.
    Speedup,
    /// Wall-clock ratio gated against an absolute ceiling, independent
    /// of the baseline (which only documents the last measurement).
    Bounded,
    /// Ratio gated against an absolute floor ([`floor_for`] picks
    /// [`ANALYTIC_SPEEDUP_FLOOR`] or [`EXPLORE_PRUNED_FLOOR_PCT`] by
    /// path), independent of the baseline.
    Floored,
    /// Environment description (thread counts): never compared.
    Informational,
}

fn classify(path: &str) -> Class {
    if path.contains("span_us/") || path.contains("queue_wait_us/") || path.contains("service_us/")
    {
        // Wall-clock histogram families (engine spans plus the serving
        // latency split): reported, never compared.
        return Class::Informational;
    }
    if path == "analytic.speedup" {
        // The headline fast-path speedup carries an absolute promise.
        return Class::Floored;
    }
    if path == "explore.pruned_pct" {
        // The exploration pruning rate carries an absolute promise;
        // being a ratio of two exactly-gated counts it is also
        // deterministic, but the floor is the contract worth stating.
        return Class::Floored;
    }
    if path == "explore.configs_per_s" {
        // Candidate throughput is deterministic work over wall time:
        // reported, never compared (the counts pin the work exactly).
        return Class::Informational;
    }
    if path == "analytic.hit_rate_pct" || path == "analytic.fig2.speedup" {
        // The hit rate is pinned exactly by the `lifts` / `fallbacks`
        // counts next to it, and the bare Fig. 2 ratio is an
        // Amdahl-capped micro-measurement: both reported, never gated.
        return Class::Informational;
    }
    let last = path.rsplit('.').next().unwrap_or(path);
    if last.starts_with("wall_ms") || last.ends_with("_ms") {
        // `wall_ms*`, `p50_ms`, `p99_ms`, ... — anything measured in
        // wall-clock milliseconds.
        Class::Timing
    } else if last == "speedup" {
        Class::Speedup
    } else if last == "overhead_pct" {
        Class::Bounded
    } else if last == "threads" || last == "req_s" {
        // `req_s` is requests over wall time: pure timing residue with
        // no one-sided "worse" direction worth gating, so it is
        // reported but never compared.
        Class::Informational
    } else {
        Class::Exact
    }
}

/// A scalar leaf of the profile document.
#[derive(Debug, Clone, PartialEq)]
enum Leaf {
    Number(f64),
    Text(String),
}

impl std::fmt::Display for Leaf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Leaf::Number(n) => write!(f, "{n}"),
            Leaf::Text(s) => write!(f, "{s}"),
        }
    }
}

fn flatten(value: &JsonValue, path: String, out: &mut BTreeMap<String, Leaf>) {
    match value {
        JsonValue::Object(fields) => {
            for (key, child) in fields {
                let child_path = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                flatten(child, child_path, out);
            }
        }
        JsonValue::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(child, format!("{path}[{i}]"), out);
            }
        }
        JsonValue::Number(n) => {
            out.insert(path, Leaf::Number(*n));
        }
        JsonValue::String(s) => {
            out.insert(path, Leaf::Text(s.clone()));
        }
        JsonValue::Bool(b) => {
            out.insert(path, Leaf::Text(b.to_string()));
        }
        JsonValue::Null => {
            out.insert(path, Leaf::Text("null".into()));
        }
    }
}

/// One row of the delta table.
struct Delta {
    path: String,
    left: Option<Leaf>,
    right: Option<Leaf>,
    note: String,
    failed: bool,
}

/// Downgrades a field to [`Class::Informational`] when its path
/// contains any of the `--ignore` substrings (e.g. `--ignore cache_`
/// for the CI analytic-vs-generic differential leg, where the lifted
/// path legitimately does less cache work).
fn effective_class(path: &str, ignores: &[String]) -> Class {
    if ignores.iter().any(|s| path.contains(s.as_str())) {
        Class::Informational
    } else {
        classify(path)
    }
}

/// Compares two flattened profiles. `cross` switches from the
/// regression rules to the determinism rules.
fn compare(
    fresh: &BTreeMap<String, Leaf>,
    baseline: &BTreeMap<String, Leaf>,
    tolerance: f64,
    slack_ms: f64,
    cross: bool,
    ignores: &[String],
) -> Vec<Delta> {
    let mut rows = Vec::new();
    let keys: std::collections::BTreeSet<&String> = fresh.keys().chain(baseline.keys()).collect();
    for key in keys {
        let class = effective_class(key, ignores);
        let f = fresh.get(key.as_str());
        let b = baseline.get(key.as_str());
        let mut push = |note: String, failed: bool| {
            rows.push(Delta {
                path: key.clone(),
                left: b.cloned(),
                right: f.cloned(),
                note,
                failed,
            });
        };
        if class == Class::Informational {
            continue;
        }
        if class == Class::Bounded || class == Class::Floored {
            // Gated against an absolute bound, not the baseline: the
            // baseline value only documents the last measurement. The
            // cross-leg gate skips these ratios and compares the exact
            // counts and timings they derive from instead.
            if cross {
                continue;
            }
            match (class, f) {
                (Class::Bounded, Some(Leaf::Number(value))) if *value > OBS_OVERHEAD_LIMIT_PCT => {
                    push(
                        format!("above the absolute {OBS_OVERHEAD_LIMIT_PCT}% ceiling"),
                        true,
                    );
                }
                (Class::Bounded, Some(Leaf::Number(_))) => {
                    push(
                        format!("within the {OBS_OVERHEAD_LIMIT_PCT}% ceiling"),
                        false,
                    );
                }
                (Class::Floored, Some(Leaf::Number(value))) => {
                    let (floor, unit) = floor_for(key);
                    if *value < floor {
                        push(format!("below the absolute {floor}{unit} floor"), true);
                    } else {
                        push(format!("above the {floor}{unit} floor"), false);
                    }
                }
                (_, Some(Leaf::Text(_))) => push("not a number".into(), true),
                (_, None) => push("missing in fresh profile".into(), true),
                (_, _) => unreachable!("bounded/floored arms cover all shapes"),
            }
            continue;
        }
        let (Some(f), Some(b)) = (f, b) else {
            let side = if f.is_none() { "fresh" } else { "baseline" };
            push(format!("missing in {side} profile"), true);
            continue;
        };
        match class {
            Class::Exact => {
                if f != b {
                    push("deterministic field differs".into(), true);
                }
            }
            Class::Timing | Class::Speedup if cross => {}
            Class::Timing => {
                let (Leaf::Number(f), Leaf::Number(b)) = (f, b) else {
                    push("not a number".into(), true);
                    continue;
                };
                let limit = b * (1.0 + tolerance) + slack_ms;
                if *f > limit {
                    push(
                        format!(
                            "slower than baseline by more than {:.0}% (+{slack_ms} ms slack)",
                            tolerance * 100.0
                        ),
                        true,
                    );
                } else {
                    push(delta_note(*b, *f), false);
                }
            }
            Class::Speedup => {
                let (Leaf::Number(f), Leaf::Number(b)) = (f, b) else {
                    push("not a number".into(), true);
                    continue;
                };
                // A speedup is a ratio of two timings, each of which is
                // individually allowed to drift by `tolerance`, so the
                // ratio may legitimately move by the compound factor.
                let limit = b / ((1.0 + tolerance) * (1.0 + tolerance));
                if *f < limit {
                    push(
                        format!(
                            "speedup below baseline by more than {:.0}% compounded",
                            tolerance * 100.0
                        ),
                        true,
                    );
                } else {
                    push(delta_note(*b, *f), false);
                }
            }
            Class::Bounded | Class::Floored | Class::Informational => {
                unreachable!("filtered above")
            }
        }
    }
    rows
}

fn delta_note(baseline: f64, fresh: f64) -> String {
    if baseline == 0.0 {
        return "ok".into();
    }
    format!("{:+.1}%", 100.0 * (fresh - baseline) / baseline)
}

fn markdown_table(title: &str, rows: &[Delta], exact_checked: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {title}\n");
    let _ = writeln!(out, "| field | baseline | fresh | status |");
    let _ = writeln!(out, "|---|---|---|---|");
    for row in rows {
        let show = |leaf: &Option<Leaf>| {
            leaf.as_ref()
                .map_or_else(|| "—".to_string(), ToString::to_string)
        };
        let status = if row.failed {
            format!("❌ {}", row.note)
        } else {
            format!("✅ {}", row.note)
        };
        let _ = writeln!(
            out,
            "| `{}` | {} | {} | {} |",
            row.path,
            show(&row.left),
            show(&row.right),
            status
        );
    }
    let failures = rows.iter().filter(|r| r.failed).count();
    let _ = writeln!(
        out,
        "\n{exact_checked} deterministic field(s) checked, {failures} failure(s).\n"
    );
    out
}

fn load(path: &str) -> JsonValue {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read profile {path}: {e}")));
    parse(&text).unwrap_or_else(|e| die(&format!("profile {path} is not valid JSON: {e}")))
}

fn die(message: &str) -> ! {
    eprintln!("bench_compare: {message}");
    std::process::exit(2);
}

fn env_fraction(name: &str, default: f64, max: f64) -> f64 {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse::<f64>()
            .ok()
            .filter(|t| (0.0..max).contains(t))
            .unwrap_or_else(|| die(&format!("{name} must be a number in [0, {max}), got {v:?}"))),
        Err(_) => default,
    }
}

fn tolerance() -> f64 {
    env_fraction("HEM_BENCH_TOLERANCE", 0.30, 10.0)
}

fn slack_ms() -> f64 {
    env_fraction("HEM_BENCH_SLACK_MS", 25.0, 100_000.0)
}

/// Prints the sweep and incremental summary of one profile, failing
/// loudly when a section or field is missing.
fn report(doc: &JsonValue) -> String {
    let section = |name: &str| {
        doc.get(name)
            .unwrap_or_else(|| die(&format!("profile has no `{name}` section")))
    };
    let field = |obj: &JsonValue, section_name: &str, name: &str| {
        obj.get(name)
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| die(&format!("profile field `{section_name}.{name}` is missing")))
    };
    let sweep = section("sweep");
    let incremental = section("incremental");
    let serving = section("serving");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scenario sweep: {} scenarios, {} thread(s), {:.2}x speedup",
        field(sweep, "sweep", "scenarios"),
        field(sweep, "sweep", "threads"),
        field(sweep, "sweep", "speedup"),
    );
    let _ = writeln!(
        out,
        "incremental chain: {} scenarios over {} replicas, {:.2}x warm speedup, mean cone {:.1}%, {} replayed, {} fallback(s)",
        field(incremental, "incremental", "scenarios"),
        field(incremental, "incremental", "replicas"),
        field(incremental, "incremental", "speedup"),
        100.0 * field(incremental, "incremental", "mean_cone_fraction"),
        field(incremental, "incremental", "replayed_results"),
        field(incremental, "incremental", "full_fallbacks"),
    );
    let analytic = section("analytic");
    let _ = writeln!(
        out,
        "analytic fast path: {:.2}x on the replicated grid (floor {ANALYTIC_SPEEDUP_FLOOR}x), {:.2}x on the Fig. 2 grid, {} lift(s), {} fallback(s), {:.1}% hit rate",
        field(analytic, "analytic", "speedup"),
        analytic
            .get("fig2")
            .and_then(|f| f.get("speedup"))
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| die("profile field `analytic.fig2.speedup` is missing")),
        field(analytic, "analytic", "lifts"),
        field(analytic, "analytic", "fallbacks"),
        field(analytic, "analytic", "hit_rate_pct"),
    );
    let explore = section("explore");
    let _ = writeln!(
        out,
        "exploration: {} candidate(s), {} pruned ({:.1}%, floor {EXPLORE_PRUNED_FLOOR_PCT}%), {} feasible, {:.0} configs/s, mean cone {:.1}%",
        field(explore, "explore", "configs"),
        field(explore, "explore", "pruned"),
        field(explore, "explore", "pruned_pct"),
        field(explore, "explore", "feasible"),
        field(explore, "explore", "configs_per_s"),
        100.0 * field(explore, "explore", "mean_cone_fraction"),
    );
    let _ = writeln!(
        out,
        "serving: {} sessions, {} requests, p50 {:.3} ms, p99 {:.3} ms, {} recoveries, {} shed, {} stale served",
        field(serving, "serving", "sessions"),
        field(serving, "serving", "requests"),
        field(serving, "serving", "p50_ms"),
        field(serving, "serving", "p99_ms"),
        field(serving, "serving", "recoveries"),
        field(serving, "serving", "shed"),
        field(serving, "serving", "stale_served"),
    );
    let _ = writeln!(
        out,
        "durability: {} checkpoints compacting {} WAL bytes, {} storage faults injected",
        field(serving, "serving", "checkpoints"),
        field(serving, "serving", "compacted_bytes"),
        field(serving, "serving", "injected_faults"),
    );
    let obs = section("obs");
    let _ = writeln!(
        out,
        "telemetry: {:.2}% overhead vs no-op recorder (bound {OBS_OVERHEAD_LIMIT_PCT}%), {} trace spans, {} flight-dump bytes",
        field(obs, "obs", "overhead_pct"),
        field(obs, "obs", "spans"),
        field(obs, "obs", "dump_bytes"),
    );
    out
}

fn append_step_summary(markdown: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write as _;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(markdown.as_bytes()));
    if let Err(e) = appended {
        eprintln!("bench_compare: cannot append to GITHUB_STEP_SUMMARY ({path}): {e}");
    }
}

fn main() -> ExitCode {
    // `--ignore <substring>` is repeatable and position-independent:
    // any field whose flattened path contains one of the substrings is
    // downgraded to Informational (reported, never gated). The CI
    // analytic differential leg relies on this to diff the generic
    // against the lifted profile while excusing the cache-work
    // counters the fast path legitimately eliminates.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut ignores: Vec<String> = Vec::new();
    let mut args: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--ignore" {
            match it.next() {
                Some(pattern) if !pattern.is_empty() => ignores.push(pattern),
                _ => die("--ignore requires a non-empty substring"),
            }
        } else {
            args.push(arg);
        }
    }
    match args.as_slice() {
        [flag, path] if flag == "--report" => {
            print!("{}", report(&load(path)));
            ExitCode::SUCCESS
        }
        [flag, a, b] if flag == "--cross" => {
            let mut left = BTreeMap::new();
            let mut right = BTreeMap::new();
            flatten(&load(a), String::new(), &mut left);
            flatten(&load(b), String::new(), &mut right);
            let checked = left
                .keys()
                .filter(|k| effective_class(k, &ignores) == Class::Exact)
                .count();
            let rows = compare(&left, &right, 0.0, 0.0, true, &ignores);
            let failures: Vec<&Delta> = rows.iter().filter(|r| r.failed).collect();
            let table = markdown_table("Cross-leg determinism", &rows, checked);
            print!("{table}");
            append_step_summary(&table);
            if failures.is_empty() {
                println!("cross-leg determinism: OK ({checked} deterministic fields identical)");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "cross-leg determinism: {} field(s) differ between {a} and {b}",
                    failures.len()
                );
                ExitCode::FAILURE
            }
        }
        [fresh_path, baseline_path] => {
            let fresh_doc = load(fresh_path);
            let mut fresh = BTreeMap::new();
            let mut baseline = BTreeMap::new();
            flatten(&fresh_doc, String::new(), &mut fresh);
            flatten(&load(baseline_path), String::new(), &mut baseline);
            let checked = fresh
                .keys()
                .filter(|k| effective_class(k, &ignores) == Class::Exact)
                .count();
            let rows = compare(&fresh, &baseline, tolerance(), slack_ms(), false, &ignores);
            let failures = rows.iter().filter(|r| r.failed).count();
            let table = markdown_table("Benchmark regression gate", &rows, checked);
            print!("{table}");
            append_step_summary(&table);
            print!("{}", report(&fresh_doc));
            if failures == 0 {
                println!("benchmark regression gate: OK");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "benchmark regression gate: {failures} regression(s) against {baseline_path}"
                );
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!(
                "usage: bench_compare [--ignore <substring>]... <fresh.json> <baseline.json>\n       bench_compare [--ignore <substring>]... --cross <a.json> <b.json>\n       bench_compare --report <fresh.json>"
            );
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> BTreeMap<String, Leaf> {
        let mut out = BTreeMap::new();
        flatten(&parse(text).unwrap(), String::new(), &mut out);
        out
    }

    #[test]
    fn classification_covers_profile_shapes() {
        assert_eq!(classify("phases.flat.wall_ms"), Class::Timing);
        assert_eq!(classify("sweep.wall_ms_parallel"), Class::Timing);
        assert_eq!(classify("incremental.speedup"), Class::Speedup);
        assert_eq!(classify("threads"), Class::Informational);
        assert_eq!(classify("sweep.threads"), Class::Informational);
        assert_eq!(
            classify("phases.flat.metrics.histograms.span_us/analyze.mean"),
            Class::Informational
        );
        assert_eq!(
            classify("phases.flat.metrics.counters.cache_hits"),
            Class::Exact
        );
        assert_eq!(classify("incremental.mean_cone_fraction"), Class::Exact);
        assert_eq!(classify("serving.p50_ms"), Class::Timing);
        assert_eq!(classify("serving.p99_ms"), Class::Timing);
        assert_eq!(classify("serving.wall_ms"), Class::Timing);
        assert_eq!(classify("serving.req_s"), Class::Informational);
        assert_eq!(classify("serving.recoveries"), Class::Exact);
        assert_eq!(classify("serving.shed"), Class::Exact);
        assert_eq!(classify("serving.stale_served"), Class::Exact);
        assert_eq!(classify("serving.checkpoints"), Class::Exact);
        assert_eq!(classify("serving.compacted_bytes"), Class::Exact);
        assert_eq!(classify("serving.injected_faults"), Class::Exact);
        assert_eq!(classify("obs.overhead_pct"), Class::Bounded);
        assert_eq!(classify("obs.spans"), Class::Exact);
        assert_eq!(classify("obs.dump_bytes"), Class::Exact);
        assert_eq!(
            classify("serving.histograms.queue_wait_us/mutate.p99"),
            Class::Informational
        );
        assert_eq!(
            classify("serving.histograms.service_us/analyze.mean"),
            Class::Informational
        );
        assert_eq!(classify("analytic.speedup"), Class::Floored);
        assert_eq!(classify("analytic.hit_rate_pct"), Class::Informational);
        assert_eq!(classify("analytic.fig2.speedup"), Class::Informational);
        assert_eq!(classify("analytic.fig2.wall_ms_generic"), Class::Timing);
        assert_eq!(classify("analytic.lifts"), Class::Exact);
        assert_eq!(classify("analytic.fallbacks"), Class::Exact);
        assert_eq!(classify("analytic.scenarios"), Class::Exact);
        assert_eq!(classify("explore.pruned_pct"), Class::Floored);
        assert_eq!(classify("explore.configs_per_s"), Class::Informational);
        assert_eq!(classify("explore.wall_ms"), Class::Timing);
        assert_eq!(classify("explore.configs"), Class::Exact);
        assert_eq!(classify("explore.feasible"), Class::Exact);
        assert_eq!(classify("explore.pruned"), Class::Exact);
        assert_eq!(classify("explore.mean_cone_fraction"), Class::Exact);
    }

    #[test]
    fn explore_pruning_is_gated_against_its_own_floor() {
        // Above the 50% floor passes even when far below the baseline…
        let base = doc(r#"{"explore":{"pruned_pct":90.0}}"#);
        let lower = doc(r#"{"explore":{"pruned_pct":50.0}}"#);
        assert!(!compare(&lower, &base, 0.3, 0.0, false, &[])[0].failed);
        // …and below it fails even when above the baseline, with the
        // percent floor in the note rather than the speedup one.
        let low_base = doc(r#"{"explore":{"pruned_pct":30.0}}"#);
        let still_low = doc(r#"{"explore":{"pruned_pct":49.9}}"#);
        let rows = compare(&still_low, &low_base, 0.3, 0.0, false, &[]);
        assert!(rows[0].failed && rows[0].note.contains("50% floor"));
        // Derived from exactly-gated counts: the cross leg skips it.
        assert!(compare(&lower, &base, 0.0, 0.0, true, &[]).is_empty());
    }

    #[test]
    fn analytic_speedup_is_gated_against_the_absolute_floor() {
        // Above the floor passes even when far below the baseline…
        let base = doc(r#"{"analytic":{"speedup":9.0}}"#);
        let slower = doc(r#"{"analytic":{"speedup":3.1}}"#);
        assert!(!compare(&slower, &base, 0.3, 0.0, false, &[])[0].failed);
        // …and below the floor fails even when above the baseline.
        let low_base = doc(r#"{"analytic":{"speedup":2.0}}"#);
        let still_low = doc(r#"{"analytic":{"speedup":2.9}}"#);
        let rows = compare(&still_low, &low_base, 0.3, 0.0, false, &[]);
        assert!(rows[0].failed && rows[0].note.contains("floor"));
        // A wall-time ratio: the cross-leg determinism gate skips it.
        assert!(compare(&slower, &base, 0.0, 0.0, true, &[]).is_empty());
    }

    #[test]
    fn ignored_substrings_downgrade_fields_to_informational() {
        let a = doc(r#"{"counters":{"cache_hits":7,"packing_ops":3}}"#);
        let b = doc(r#"{"counters":{"cache_hits":9,"packing_ops":3}}"#);
        // Without the flag the differing counter fails both gates…
        assert!(compare(&a, &b, 0.3, 0.0, false, &[])
            .iter()
            .any(|r| r.failed));
        assert!(compare(&a, &b, 0.0, 0.0, true, &[])
            .iter()
            .any(|r| r.failed));
        // …with it the field is skipped entirely, while others stay gated.
        let ignores = vec!["cache_".to_string()];
        assert!(compare(&a, &b, 0.3, 0.0, false, &ignores)
            .iter()
            .all(|r| !r.failed));
        assert!(compare(&a, &b, 0.0, 0.0, true, &ignores)
            .iter()
            .all(|r| !r.failed));
        let c = doc(r#"{"counters":{"cache_hits":9,"packing_ops":4}}"#);
        assert!(compare(&a, &c, 0.0, 0.0, true, &ignores)
            .iter()
            .any(|r| r.path == "counters.packing_ops" && r.failed));
        // The floored headline is also ignorable (the differential leg
        // runs with the fast path disabled, where no speedup exists).
        let no_speedup = doc(r#"{"analytic":{"speedup":1.0}}"#);
        let ignores = vec!["analytic".to_string()];
        assert!(compare(&no_speedup, &no_speedup, 0.3, 0.0, false, &ignores)
            .iter()
            .all(|r| !r.failed));
    }

    #[test]
    fn overhead_is_gated_against_the_absolute_ceiling() {
        // Below the ceiling passes even when far above the baseline…
        let base = doc(r#"{"obs":{"overhead_pct":0.4}}"#);
        let grown = doc(r#"{"obs":{"overhead_pct":4.9}}"#);
        assert!(!compare(&grown, &base, 0.3, 0.0, false, &[])[0].failed);
        // …and above the ceiling fails even when below the baseline.
        let high_base = doc(r#"{"obs":{"overhead_pct":9.0}}"#);
        let still_high = doc(r#"{"obs":{"overhead_pct":5.1}}"#);
        let rows = compare(&still_high, &high_base, 0.3, 0.0, false, &[]);
        assert!(rows[0].failed && rows[0].note.contains("ceiling"));
        // A wall-time ratio: the cross-leg determinism gate skips it.
        assert!(compare(&grown, &base, 0.0, 0.0, true, &[]).is_empty());
    }

    #[test]
    fn exact_fields_must_match() {
        let a = doc(r#"{"x":{"iterations":5},"wall_ms":100}"#);
        let b = doc(r#"{"x":{"iterations":6},"wall_ms":100}"#);
        let rows = compare(&a, &b, 0.3, 0.0, false, &[]);
        assert!(rows.iter().any(|r| r.path == "x.iterations" && r.failed));
    }

    #[test]
    fn timing_tolerance_is_one_sided() {
        let base = doc(r#"{"wall_ms":100}"#);
        let slower_ok = doc(r#"{"wall_ms":125}"#);
        let slower_bad = doc(r#"{"wall_ms":131}"#);
        let faster = doc(r#"{"wall_ms":10}"#);
        assert!(!compare(&slower_ok, &base, 0.3, 0.0, false, &[])[0].failed);
        assert!(compare(&slower_bad, &base, 0.3, 0.0, false, &[])[0].failed);
        assert!(!compare(&faster, &base, 0.3, 0.0, false, &[])[0].failed);
    }

    #[test]
    fn timing_slack_absorbs_micro_noise() {
        // 0.1 ms → 0.3 ms is 3x but far below the absolute slack.
        let base = doc(r#"{"wall_ms":0.1}"#);
        let noisy = doc(r#"{"wall_ms":0.3}"#);
        assert!(compare(&noisy, &base, 0.3, 0.0, false, &[])[0].failed);
        assert!(!compare(&noisy, &base, 0.3, 25.0, false, &[])[0].failed);
        // The slack does not hide a real multi-second regression.
        let big = doc(r#"{"wall_ms":1000}"#);
        let regressed = doc(r#"{"wall_ms":1500}"#);
        assert!(compare(&regressed, &big, 0.3, 25.0, false, &[])[0].failed);
    }

    #[test]
    fn speedup_tolerance_is_one_sided_and_compounded() {
        // Floor at tolerance 0.3 is 2.6 / 1.3² ≈ 1.538: a ratio of two
        // timings each within tolerance may drift by the compound.
        let base = doc(r#"{"speedup":2.6}"#);
        assert!(!compare(&doc(r#"{"speedup":2.1}"#), &base, 0.3, 0.0, false, &[])[0].failed);
        assert!(!compare(&doc(r#"{"speedup":1.6}"#), &base, 0.3, 0.0, false, &[])[0].failed);
        assert!(compare(&doc(r#"{"speedup":1.5}"#), &base, 0.3, 0.0, false, &[])[0].failed);
        assert!(!compare(&doc(r#"{"speedup":9.0}"#), &base, 0.3, 0.0, false, &[])[0].failed);
    }

    #[test]
    fn cross_mode_ignores_wall_time_but_not_counters() {
        let a = doc(r#"{"wall_ms":100,"speedup":2.0,"threads":1,"counters":{"cache_hits":7}}"#);
        let b = doc(r#"{"wall_ms":900,"speedup":0.5,"threads":4,"counters":{"cache_hits":7}}"#);
        assert!(compare(&a, &b, 0.0, 0.0, true, &[])
            .iter()
            .all(|r| !r.failed));
        let c = doc(r#"{"wall_ms":900,"speedup":0.5,"threads":4,"counters":{"cache_hits":8}}"#);
        let rows = compare(&a, &c, 0.0, 0.0, true, &[]);
        assert!(rows
            .iter()
            .any(|r| r.path == "counters.cache_hits" && r.failed));
    }

    #[test]
    fn missing_fields_fail_loudly() {
        let a = doc(r#"{"counters":{"cache_hits":7}}"#);
        let b = doc(r#"{"counters":{}}"#);
        let rows = compare(&a, &b, 0.3, 0.0, false, &[]);
        assert!(rows.iter().any(|r| r.failed && r.note.contains("missing")));
    }

    #[test]
    fn report_renders_all_sections() {
        let doc = parse(
            r#"{"sweep":{"scenarios":38,"threads":4,"speedup":2.5},
                "incremental":{"scenarios":17,"replicas":8,"speedup":2.3,
                               "mean_cone_fraction":0.125,"replayed_results":3136,
                               "full_fallbacks":1},
                "serving":{"sessions":96,"requests":820,"wall_ms":150.0,
                           "req_s":5466.7,"p50_ms":0.02,"p99_ms":1.5,
                           "recoveries":8,"shed":16,"stale_served":8,
                           "checkpoints":96,"compacted_bytes":50240,
                           "injected_faults":0},
                "analytic":{"scenarios":41,"lifts":1052,"fallbacks":0,
                            "hit_rate_pct":100.0,"wall_ms_generic":23.5,
                            "wall_ms_analytic":6.3,"speedup":3.73,
                            "fig2":{"scenarios":38,"wall_ms_generic":2.5,
                                    "wall_ms_analytic":2.3,"speedup":1.09}},
                "explore":{"configs":897,"feasible":189,"pruned":588,
                           "pruned_pct":65.552,"configs_per_s":30800.7,
                           "mean_cone_fraction":0.994898,"wall_ms":29.1},
                "obs":{"overhead_pct":1.25,"spans":420,"dump_bytes":8192}}"#,
        )
        .unwrap();
        let text = report(&doc);
        assert!(text.contains("38 scenarios"));
        assert!(text.contains("3.73x on the replicated grid"));
        assert!(text.contains("1052 lift(s), 0 fallback(s), 100.0% hit rate"));
        assert!(text.contains("897 candidate(s), 588 pruned (65.6%, floor 50%)"));
        assert!(text.contains("189 feasible, 30801 configs/s, mean cone 99.5%"));
        assert!(text.contains("2.30x warm speedup"));
        assert!(text.contains("mean cone 12.5%"));
        assert!(text.contains("96 sessions"));
        assert!(text.contains("8 recoveries, 16 shed, 8 stale served"));
        assert!(text.contains("96 checkpoints compacting 50240 WAL bytes"));
        assert!(text.contains("telemetry: 1.25% overhead"));
        assert!(text.contains("420 trace spans, 8192 flight-dump bytes"));
    }
}
