//! Load generator for the serving layer (`hem-server`).
//!
//! Drives [`hem_bench::serving::run_serving`] at fleet scale — by
//! default 1200 event-sourced sessions through mutation rounds,
//! injected kills with torn-WAL recovery, deterministic overload
//! shedding, and zero-deadline degradation probes — and prints the
//! `serving` report. Exits non-zero if the run does not demonstrate
//! the robustness machinery (at least 1000 sessions with non-zero
//! recoveries and shed), or if any request misbehaves (the bench
//! panics on protocol errors).
//!
//! ```text
//! cargo run --release -p hem-bench --bin load_gen -- \
//!     [--sessions N] [--rounds N] [--analyze-every N] [--kills N] \
//!     [--shed-capacity N] [--shed-probes N] [--stale-probes N] \
//!     [--data-dir DIR]
//! ```

use std::path::PathBuf;

use hem_bench::serving::{run_serving, ServingParams};

fn usage() -> ! {
    eprintln!(
        "usage: load_gen [--sessions N] [--rounds N] [--analyze-every N] [--kills N] \
         [--shed-capacity N] [--shed-probes N] [--stale-probes N] [--data-dir DIR]"
    );
    std::process::exit(2);
}

fn main() {
    let mut params = ServingParams::load();
    let mut data_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        let number = || -> usize {
            value.parse().unwrap_or_else(|_| {
                eprintln!("load_gen: {flag} needs an unsigned integer, got {value:?}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--sessions" => params.sessions = number(),
            "--rounds" => params.rounds = number().max(1),
            "--analyze-every" => params.analyze_every = number().max(1),
            "--kills" => params.kills = number(),
            "--shed-capacity" => params.shed_capacity = number().max(1),
            "--shed-probes" => params.shed_probes = number(),
            "--stale-probes" => params.stale_probes = number(),
            "--data-dir" => data_dir = Some(PathBuf::from(&value)),
            _ => usage(),
        }
    }

    let (dir, ephemeral) = match data_dir {
        Some(dir) => (dir, false),
        None => (
            std::env::temp_dir().join(format!("hem-load-gen-{}", std::process::id())),
            true,
        ),
    };
    let _ = std::fs::remove_dir_all(&dir);

    eprintln!(
        "load_gen: {} sessions, {} rounds, {} kills, queue {} (+{} overflow), {} stale probes",
        params.sessions,
        params.rounds,
        params.kills,
        params.shed_capacity,
        params.shed_probes,
        params.stale_probes
    );
    let report = run_serving(&dir, &params);
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }

    println!("serving: {}", report.to_json());
    println!(
        "{} sessions, {} requests in {:.1} ms ({:.0} req/s), p50 {:.3} ms, p99 {:.3} ms",
        report.sessions,
        report.requests,
        report.wall_ms,
        report.req_s,
        report.p50_ms,
        report.p99_ms
    );
    println!(
        "{} WAL recoveries, {} shed, {} stale served",
        report.recoveries, report.shed, report.stale_served
    );

    // The ISSUE acceptance bar: fleet scale with the failure paths
    // actually exercised.
    if report.sessions < 1000 || report.recoveries == 0 || report.shed == 0 {
        eprintln!(
            "load_gen: robustness bar not met (need >= 1000 sessions with non-zero recoveries and shed)"
        );
        std::process::exit(1);
    }
}
