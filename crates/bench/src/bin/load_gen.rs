//! Load generator for the serving layer (`hem-server`).
//!
//! Drives [`hem_bench::serving::run_serving`] at fleet scale — by
//! default 1200 event-sourced sessions through mutation rounds,
//! injected kills with torn-WAL recovery, deterministic overload
//! shedding, and zero-deadline degradation probes — and prints the
//! `serving` report. Exits non-zero if the run does not demonstrate
//! the robustness machinery (at least 1000 sessions with non-zero
//! recoveries and shed), or if any request misbehaves (the bench
//! panics on protocol errors).
//!
//! ```text
//! cargo run --release -p hem-bench --bin load_gen -- \
//!     [--sessions N] [--rounds N] [--analyze-every N] [--kills N] \
//!     [--shed-capacity N] [--shed-probes N] [--stale-probes N] \
//!     [--data-dir DIR] [--chaos-seed N] [--fault-every N] \
//!     [--trace-out PATH] [--artifacts DIR]
//! ```
//!
//! With `--chaos-seed`, the run replaces the real disk with a seeded
//! deterministic `ChaosStorage` that injects transient storage faults
//! (short reads, torn writes, ENOSPC, dropped fsyncs) roughly every
//! `--fault-every` ops (default 97); per-request retries must absorb
//! every fault, and the run must report a non-zero injected count.
//!
//! `--trace-out` makes the core export its Perfetto-loadable request
//! trace; `--artifacts DIR` copies the flight-recorder dump (and the
//! trace, when enabled) out of the run's storage — including the
//! in-memory chaos disk — onto the real filesystem for CI upload.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use hem_bench::serving::{run_serving_traced, ServingParams};
use hem_server::{ChaosOptions, ChaosStorage, RealStorage, Storage, FLIGHT_FILE};

/// Retry budget per request under chaos (1 = fail fast on a real disk).
const CHAOS_ATTEMPTS: usize = 5;

fn usage() -> ! {
    eprintln!(
        "usage: load_gen [--sessions N] [--rounds N] [--analyze-every N] [--kills N] \
         [--shed-capacity N] [--shed-probes N] [--stale-probes N] [--data-dir DIR] \
         [--chaos-seed N] [--fault-every N] [--trace-out PATH] [--artifacts DIR]"
    );
    std::process::exit(2);
}

/// Copies a file out of the run's storage backend (possibly the
/// in-memory chaos disk) onto the real filesystem, retrying past
/// injected transient read faults. Best-effort: a missing file is
/// reported, not fatal — under chaos the final telemetry write itself
/// may have been the faulted op.
fn export_artifact(storage: &Arc<dyn Storage>, src: &Path, out_dir: &Path, attempts: usize) {
    let mut last_err = String::new();
    for _ in 0..attempts.max(1) {
        match storage.read(src) {
            Ok(bytes) => {
                let name = src.file_name().unwrap_or_else(|| src.as_os_str());
                let dst = out_dir.join(name);
                match std::fs::write(&dst, &bytes) {
                    Ok(()) => {
                        eprintln!(
                            "load_gen: exported {} ({} bytes)",
                            dst.display(),
                            bytes.len()
                        );
                        return;
                    }
                    Err(e) => {
                        eprintln!("load_gen: cannot write {}: {e}", dst.display());
                        return;
                    }
                }
            }
            Err(e) => last_err = e.to_string(),
        }
    }
    eprintln!(
        "load_gen: artifact {} not exported: {last_err}",
        src.display()
    );
}

fn main() {
    let mut params = ServingParams::load();
    let mut data_dir: Option<PathBuf> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut fault_every: u64 = 97;
    let mut trace_out: Option<PathBuf> = None;
    let mut artifacts: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        let number = || -> usize {
            value.parse().unwrap_or_else(|_| {
                eprintln!("load_gen: {flag} needs an unsigned integer, got {value:?}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--sessions" => params.sessions = number(),
            "--rounds" => params.rounds = number().max(1),
            "--analyze-every" => params.analyze_every = number().max(1),
            "--kills" => params.kills = number(),
            "--shed-capacity" => params.shed_capacity = number().max(1),
            "--shed-probes" => params.shed_probes = number(),
            "--stale-probes" => params.stale_probes = number(),
            "--data-dir" => data_dir = Some(PathBuf::from(&value)),
            "--chaos-seed" => chaos_seed = Some(number() as u64),
            "--fault-every" => fault_every = number() as u64,
            "--trace-out" => trace_out = Some(PathBuf::from(&value)),
            "--artifacts" => artifacts = Some(PathBuf::from(&value)),
            _ => usage(),
        }
    }

    let (dir, ephemeral) = match data_dir {
        Some(dir) => (dir, false),
        None => (
            std::env::temp_dir().join(format!("hem-load-gen-{}", std::process::id())),
            true,
        ),
    };
    let _ = std::fs::remove_dir_all(&dir);

    eprintln!(
        "load_gen: {} sessions, {} rounds, {} kills, queue {} (+{} overflow), {} stale probes",
        params.sessions,
        params.rounds,
        params.kills,
        params.shed_capacity,
        params.shed_probes,
        params.stale_probes
    );
    let (storage, attempts): (Arc<dyn Storage>, usize) = match chaos_seed {
        Some(seed) => {
            eprintln!(
                "load_gen: chaos disk enabled (seed {seed}, ~1 fault per {fault_every} ops, \
                 {CHAOS_ATTEMPTS} attempts per request)"
            );
            (
                Arc::new(ChaosStorage::new(ChaosOptions {
                    seed,
                    crash_at_op: None,
                    fault_every,
                })),
                CHAOS_ATTEMPTS,
            )
        }
        None => (Arc::new(RealStorage), 1),
    };
    let report = run_serving_traced(
        &dir,
        &params,
        storage.clone(),
        attempts,
        trace_out.as_deref(),
    );
    if let Some(out_dir) = &artifacts {
        if let Err(e) = std::fs::create_dir_all(out_dir) {
            eprintln!("load_gen: cannot create {}: {e}", out_dir.display());
        } else {
            export_artifact(&storage, &dir.join(FLIGHT_FILE), out_dir, attempts);
            if let Some(trace) = &trace_out {
                export_artifact(&storage, trace, out_dir, attempts);
            }
        }
    }
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }

    println!("serving: {}", report.to_json());
    println!(
        "{} sessions, {} requests in {:.1} ms ({:.0} req/s), p50 {:.3} ms, p99 {:.3} ms",
        report.sessions,
        report.requests,
        report.wall_ms,
        report.req_s,
        report.p50_ms,
        report.p99_ms
    );
    println!(
        "{} WAL recoveries, {} shed, {} stale served",
        report.recoveries, report.shed, report.stale_served
    );
    println!(
        "{} checkpoints, {} bytes compacted, {} storage faults injected",
        report.checkpoints, report.compacted_bytes, report.injected_faults
    );
    println!("--- metrics exposition ---");
    print!("{}", report.exposition);

    // The ISSUE acceptance bar: fleet scale with the failure paths
    // actually exercised.
    if report.sessions < 1000 || report.recoveries == 0 || report.shed == 0 {
        eprintln!(
            "load_gen: robustness bar not met (need >= 1000 sessions with non-zero recoveries and shed)"
        );
        std::process::exit(1);
    }
    if report.checkpoints == 0 || report.compacted_bytes == 0 {
        eprintln!("load_gen: checkpoint path not exercised");
        std::process::exit(1);
    }
    if chaos_seed.is_some() && report.injected_faults == 0 {
        eprintln!("load_gen: chaos disk injected no faults (raise the rate or the load)");
        std::process::exit(1);
    }
    if !report.exposition.contains("service_us") {
        eprintln!("load_gen: metrics exposition missing the service-latency histograms");
        std::process::exit(1);
    }
}
