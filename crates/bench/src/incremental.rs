//! Chained incremental scenarios over a replicated Fig. 2 grid.
//!
//! The warm-start engine ([`hem_system::analyze_incremental`]) pays off
//! when successive scenarios share most of their topology: the damage
//! cone of a one-parameter mutation is a small fraction of the system
//! and everything outside it replays from the previous run's snapshot.
//! A single paper system is too small to show this — its one bus feeds
//! its one CPU, so any mutation dirties everything. This module builds
//! the natural scaled-up workload instead: `K` independent replicas of
//! the paper system (`r0/…`, `r1/…`, …), each with its own bus and CPU,
//! mutated one replica at a time. Every chained scenario re-analyses
//! exactly one replica (cone fraction `1/K`) and replays the other
//! `K − 1` from the snapshot.
//!
//! Scenario builders **clone and mutate** the previous spec so untouched
//! external event models keep their `Arc` allocations — the identity
//! fingerprint the spec diff relies on (see `docs/INCREMENTAL.md`).

use std::collections::BTreeMap;
use std::time::Instant;

use hem_analysis::{Priority, ResponseTime};
use hem_autosar_com::{FrameType, TransferProperty};
use hem_can::{CanBusConfig, FrameFormat};
use hem_event_models::{EventModelExt, StandardEventModel};
use hem_system::{
    analyze_incremental, analyze_robust, ActivationSpec, FrameSpec, SignalSpec, SystemConfig,
    SystemSpec, TaskSpec,
};
use hem_time::Time;

use crate::paper_system::PaperParams;

/// Receiver tasks per signal on every replica CPU.
///
/// The paper system wires one task per signal; here each signal
/// activates three (12 tasks per CPU). Busy-window cost grows
/// quadratically in the tasks per CPU — every lower-priority window
/// sums interference from all higher-priority tasks — while the
/// per-iteration resolution and bookkeeping that a warm start cannot
/// skip grow only linearly, so the richer CPUs put each replica in the
/// regime where skipping its local analyses dominates snapshot
/// overhead (the regime any real incremental workload lives in).
const TASKS_PER_SIGNAL: usize = 3;

/// Core execution times (paper units) of the receivers of s1–s4.
const RECEIVER_CET: [i64; 4] = [24, 32, 40, 20];

/// Builds `replicas` namespaced copies of the scaled-up paper system,
/// each on its own bus and CPU: frames `r<i>/F1`–`r<i>/F2` on bus
/// `r<i>/can`, tasks `r<i>/T1`–`r<i>/T12` on CPU `r<i>/cpu1` (task
/// `T<k>` has priority `k` and receives signal `s<1 + (k-1) mod 4>`).
#[must_use]
pub fn replicated_spec(replicas: usize, p: &PaperParams) -> SystemSpec {
    (0..replicas).fold(SystemSpec::new(), |spec, i| {
        replica(spec, &format!("r{i}"), p)
    })
}

fn replica(spec: SystemSpec, prefix: &str, p: &PaperParams) -> SystemSpec {
    let n = |s: &str| format!("{prefix}/{s}");
    let source = |period: i64| {
        ActivationSpec::External(
            StandardEventModel::periodic(p.period_ticks(period))
                .expect("positive period")
                .shared(),
        )
    };
    let signal = |name: &str, transfer, period| SignalSpec {
        name: name.into(),
        transfer,
        source: source(period),
    };
    let mut spec = spec
        .cpu(n("cpu1"))
        .bus(n("can"), CanBusConfig::new(Time::new(p.bit_time)))
        .frame(FrameSpec {
            name: n("F1"),
            bus: n("can"),
            frame_type: FrameType::Direct,
            payload_bytes: 4,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: vec![
                signal("s1", TransferProperty::Triggering, p.s1_period),
                signal("s2", TransferProperty::Triggering, p.s2_period),
                signal("s3", TransferProperty::Pending, p.s3_period),
            ],
        })
        .frame(FrameSpec {
            name: n("F2"),
            bus: n("can"),
            frame_type: FrameType::Direct,
            payload_bytes: 2,
            format: FrameFormat::Standard,
            priority: Priority::new(2),
            signals: vec![signal("s4", TransferProperty::Triggering, p.s4_period)],
        });
    for k in 0..4 * TASKS_PER_SIGNAL {
        let sig = k % 4;
        let cet = Time::new(RECEIVER_CET[sig] * p.cpu_scale);
        spec = spec.task(TaskSpec {
            name: n(&format!("T{}", k + 1)),
            cpu: n("cpu1"),
            bcet: cet,
            wcet: cet,
            priority: Priority::new(k as u32 + 1),
            activation: ActivationSpec::Signal {
                frame: n(if sig == 3 { "F2" } else { "F1" }),
                signal: format!("s{}", sig + 1),
            },
        });
    }
    spec
}

/// Clones `spec` with replica `replica`'s pending source S3 re-timed to
/// `s3_period` (paper units). Only that signal's external model is
/// re-allocated; every other activation keeps its `Arc`, so the spec
/// diff seeds exactly `bus:r<replica>/can`.
#[must_use]
pub fn with_s3_period(
    spec: &SystemSpec,
    replica: usize,
    s3_period: i64,
    p: &PaperParams,
) -> SystemSpec {
    let mut next = spec.clone();
    let name = format!("r{replica}/F1");
    let frame = next
        .frames
        .iter_mut()
        .find(|f| f.name == name)
        .expect("replica exists");
    frame.signals[2].source = ActivationSpec::External(
        StandardEventModel::periodic(p.period_ticks(s3_period))
            .expect("positive period")
            .shared(),
    );
    next
}

/// The chained scenario grid: the base replicated system followed by
/// `steps` successive single-replica S3 mutations (round-robin over
/// replicas, periods walking a deterministic lattice). Each spec is a
/// clone-and-mutate of its predecessor, preserving `Arc` identity of
/// everything untouched.
#[must_use]
pub fn scenario_chain(replicas: usize, steps: usize, p: &PaperParams) -> Vec<SystemSpec> {
    let mut specs = vec![replicated_spec(replicas, p)];
    for j in 0..steps {
        // Stay above 450 paper units: the three s3 receivers put CPU
        // utilization at 0.65 + 120/P(S3), so a faster S3 would push
        // the busy windows of the low-priority tasks out of bound.
        let period = 450 + ((j as i64) * 97) % 750;
        let prev = specs.last().expect("chain starts with the base spec");
        specs.push(with_s3_period(prev, j % replicas, period, p));
    }
    specs
}

/// One measured pass over a scenario chain.
#[derive(Debug)]
pub struct ChainRun {
    /// Per-scenario response times (`frame:<f>` / `task:<t>` keys).
    pub response_times: Vec<BTreeMap<String, ResponseTime>>,
    /// Wall time of the whole pass in milliseconds.
    pub wall_ms: f64,
    /// Per-scenario damage-cone fractions (always 1.0 for a cold pass).
    pub cone_fractions: Vec<f64>,
    /// Total per-entity results replayed from snapshots (0 when cold).
    pub replayed_results: u64,
    /// Scenarios that fell back to a full run (the cold pass counts
    /// every scenario).
    pub full_fallbacks: u64,
}

impl ChainRun {
    /// Mean damage-cone fraction over the *chained* scenarios (the
    /// first scenario of a warm pass has no snapshot and always covers
    /// the full system, so it is excluded; `1.0` for a chain of one).
    #[must_use]
    pub fn mean_chained_cone_fraction(&self) -> f64 {
        let chained = &self.cone_fractions[1..];
        if chained.is_empty() {
            1.0
        } else {
            chained.iter().sum::<f64>() / chained.len() as f64
        }
    }
}

/// Analyses every scenario from scratch ([`analyze_robust`]).
///
/// # Panics
///
/// Panics when a scenario fails to analyse or does not converge — the
/// chain workload is a benchmark fixture, not an exploration.
#[must_use]
pub fn run_chain_cold(specs: &[SystemSpec], config: &SystemConfig) -> ChainRun {
    let started = Instant::now();
    let response_times = specs
        .iter()
        .map(|spec| {
            let robust = analyze_robust(spec, config).expect("chain scenario analyses");
            assert!(robust.results.is_complete(), "chain scenario converges");
            robust.results.response_times()
        })
        .collect::<Vec<_>>();
    ChainRun {
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        cone_fractions: vec![1.0; specs.len()],
        replayed_results: 0,
        full_fallbacks: specs.len() as u64,
        response_times,
    }
}

/// Analyses the chain with warm-start reuse: each scenario seeds from
/// the previous scenario's snapshot ([`analyze_incremental`]).
///
/// # Panics
///
/// Panics when a scenario fails to analyse or does not converge.
#[must_use]
pub fn run_chain_warm(specs: &[SystemSpec], config: &SystemConfig) -> ChainRun {
    let started = Instant::now();
    let mut snapshot = None;
    let mut response_times = Vec::with_capacity(specs.len());
    let mut cone_fractions = Vec::with_capacity(specs.len());
    let mut replayed_results = 0;
    let mut full_fallbacks = 0;
    for spec in specs {
        let outcome =
            analyze_incremental(spec, config, snapshot.as_ref()).expect("chain scenario analyses");
        assert!(
            outcome.analysis.results.is_complete(),
            "chain scenario converges"
        );
        response_times.push(outcome.analysis.results.response_times());
        cone_fractions.push(outcome.reuse.cone_fraction());
        replayed_results += outcome.reuse.replayed_results;
        full_fallbacks += u64::from(!outcome.reuse.warm);
        snapshot = outcome.snapshot;
    }
    ChainRun {
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        response_times,
        cone_fractions,
        replayed_results,
        full_fallbacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_system::AnalysisMode;

    #[test]
    fn replicated_spec_scales_entities() {
        let spec = replicated_spec(3, &PaperParams::default());
        assert_eq!(spec.cpus.len(), 3);
        assert_eq!(spec.buses.len(), 3);
        assert_eq!(spec.frames.len(), 6);
        assert_eq!(spec.tasks.len(), 36);
        assert!(spec.frames.iter().any(|f| f.name == "r2/F1"));
        assert!(spec.tasks.iter().any(|t| t.name == "r2/T12"));
    }

    #[test]
    fn mutation_preserves_other_arcs() {
        let p = PaperParams::default();
        let base = replicated_spec(2, &p);
        let next = with_s3_period(&base, 1, 420, &p);
        let arc = |spec: &SystemSpec, frame: &str, sig: usize| match &spec
            .frames
            .iter()
            .find(|f| f.name == frame)
            .expect("frame")
            .signals[sig]
            .source
        {
            ActivationSpec::External(m) => std::sync::Arc::as_ptr(m),
            other => panic!("external source expected, got {other:?}"),
        };
        // r0 untouched, r1's s3 re-allocated, r1's s1 untouched.
        assert!(std::ptr::addr_eq(
            arc(&base, "r0/F1", 2),
            arc(&next, "r0/F1", 2)
        ));
        assert!(std::ptr::addr_eq(
            arc(&base, "r1/F1", 0),
            arc(&next, "r1/F1", 0)
        ));
        assert!(!std::ptr::addr_eq(
            arc(&base, "r1/F1", 2),
            arc(&next, "r1/F1", 2)
        ));
    }

    #[test]
    fn warm_chain_matches_cold_with_small_cones() {
        let p = PaperParams::default();
        let specs = scenario_chain(4, 5, &p);
        let config = SystemConfig::new(AnalysisMode::Hierarchical).with_threads(1);
        let cold = run_chain_cold(&specs, &config);
        let warm = run_chain_warm(&specs, &config);
        assert_eq!(cold.response_times, warm.response_times);
        assert_eq!(warm.full_fallbacks, 1); // only the snapshot-less first run
        assert!(warm.replayed_results > 0);
        // Each chained mutation dirties one replica of four: bus + CPU
        // out of 8 resources.
        assert!((warm.mean_chained_cone_fraction() - 0.25).abs() < f64::EPSILON);
    }
}
