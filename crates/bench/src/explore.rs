//! The design-space exploration benchmark: `hem explore` at profile
//! scale.
//!
//! [`run_explore`] searches the 10x-scaled Fig. 2 exploration family
//! (`scenarios/fig2_tight10x.hem`) — the scenario whose default
//! packing puts the pending signal s3 on a two-trigger frame, bursting
//! its deliveries so that *no* priority permutation meets the three
//! deadlines — widened with period mutations of T1's activation
//! (baseline 2500 plus two overloaded alternatives). The mutated
//! combinations push CPU utilization well past 1, so the utilization
//! necessary test eliminates about two thirds of the candidate space
//! before any fixed point runs; `bench_compare` gates that
//! `pruned_pct` stays ≥ 50%.
//!
//! Every count in the report (`configs`, `feasible`, `pruned`,
//! `mean_cone_fraction`) is bit-for-bit deterministic in the seed and
//! thread count and participates in the `--cross` determinism diff;
//! only `wall_ms` and the derived `configs_per_s` measure the machine.

use std::time::Instant;

use hem_system::explore::{explore, ExploreProblem, PeriodChoice, PeriodSite};
use hem_system::{dsl, AnalysisMode, SystemConfig};
use hem_time::Time;

/// The 10x-scaled Fig. 2 exploration family (see the file's header
/// comment for why its default configuration is infeasible).
pub const TIGHT10X_SCENARIO: &str = include_str!("../scenarios/fig2_tight10x.hem");

/// The benchmark's exploration problem: the tight 10x family as
/// `hem explore` would load it, widened with two overloaded period
/// mutations of T1's activation.
///
/// # Panics
///
/// Panics if the embedded scenario no longer parses (a bug caught by
/// the corpus tests long before any bench runs).
#[must_use]
pub fn explore_problem(seed: u64) -> ExploreProblem {
    let scenario = dsl::parse_scenario(TIGHT10X_SCENARIO).expect("embedded scenario parses");
    let mut problem = ExploreProblem::from_scenario(&scenario, seed);
    problem.period_choices = vec![PeriodChoice {
        site: PeriodSite::Task("T1".into()),
        periods: vec![Time::new(2500), Time::new(700), Time::new(600)],
    }];
    problem
}

/// What the exploration benchmark measured.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Candidates visited (deterministic).
    pub configs: u64,
    /// Candidates with a feasible verdict (deterministic).
    pub feasible: u64,
    /// Candidates rejected by necessary tests (deterministic).
    pub pruned: u64,
    /// `pruned / configs` in percent (deterministic; gated ≥ 50%).
    pub pruned_pct: f64,
    /// Mean warm-start damage-cone fraction over analyzed candidates
    /// (deterministic).
    pub mean_cone_fraction: f64,
    /// Whether the default configuration was confirmed infeasible and
    /// a feasible alternative was found (both must hold).
    pub default_infeasible_and_fixed: bool,
    /// Wall-clock time of the search (this machine).
    pub wall_ms: f64,
}

impl ExploreReport {
    /// Candidate throughput derived from the wall time.
    #[must_use]
    pub fn configs_per_s(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.configs as f64 * 1e3 / self.wall_ms
        } else {
            0.0
        }
    }

    /// The `explore` section of `BENCH_analysis.json` (a JSON object,
    /// no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"configs\":{},\"feasible\":{},\"pruned\":{},\"pruned_pct\":{:.3},\"configs_per_s\":{:.3},\"mean_cone_fraction\":{:.6},\"wall_ms\":{:.3}}}",
            self.configs,
            self.feasible,
            self.pruned,
            self.pruned_pct,
            self.configs_per_s(),
            self.mean_cone_fraction,
            self.wall_ms
        )
    }
}

/// Runs the exploration benchmark with `threads` analysis workers.
///
/// # Panics
///
/// Panics (with a message for the profile log) if the search errors,
/// if the default configuration is unexpectedly feasible, or if no
/// feasible alternative exists — each would mean the benchmark no
/// longer measures what it gates.
#[must_use]
pub fn run_explore(threads: usize) -> ExploreReport {
    let problem = explore_problem(0);
    let config = SystemConfig::new(AnalysisMode::Hierarchical).with_threads(threads);
    let started = Instant::now();
    let outcome = explore(&problem, &config).expect("exploration benchmark runs");
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let default_infeasible = outcome
        .default_index
        .map(|i| {
            !matches!(
                outcome.reports[i].verdict,
                hem_system::explore::Verdict::Feasible { .. }
            )
        })
        .expect("default configuration is among the candidates");
    assert!(
        default_infeasible,
        "the tight 10x family's default configuration must be infeasible"
    );
    assert!(
        outcome.best.is_some(),
        "the tight 10x family must have a feasible packing+priority configuration"
    );
    ExploreReport {
        configs: outcome.visited,
        feasible: outcome.feasible,
        pruned: outcome.pruned,
        pruned_pct: outcome.pruned_pct(),
        mean_cone_fraction: outcome.mean_cone_fraction,
        default_infeasible_and_fixed: true,
        wall_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_benchmark_problem_prunes_at_least_half_the_space() {
        let report = run_explore(1);
        assert!(report.configs > 0);
        assert!(
            report.pruned_pct >= 50.0,
            "pruned_pct {} below the gated floor",
            report.pruned_pct
        );
        assert!(report.feasible > 0);
        assert!(report.default_infeasible_and_fixed);
    }

    #[test]
    fn report_counts_are_thread_invariant() {
        let one = run_explore(1);
        let four = run_explore(4);
        assert_eq!(one.configs, four.configs);
        assert_eq!(one.feasible, four.feasible);
        assert_eq!(one.pruned, four.pruned);
        assert_eq!(one.mean_cone_fraction, four.mean_cone_fraction);
    }
}
