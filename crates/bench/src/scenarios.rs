//! Access to the committed scenario corpus under
//! `crates/bench/scenarios/`.
//!
//! The corpus is the shared fixture set for every directory-iterating
//! gate: the workspace-level scenario tests, the differential
//! sim-vs-analysis harness, and the bench-crate corpus tests all load
//! it through [`corpus`] so that adding a `.hem` file automatically
//! enrolls it everywhere. Loading is strict — an unreadable or
//! unparseable file panics with its path, because a broken fixture
//! must fail loudly rather than silently shrink the corpus.

use std::path::PathBuf;

use hem_system::dsl::{parse_scenario, Scenario};

/// One parsed corpus file.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// File stem (`paper`, `gateway_chain2`, …), used in messages.
    pub name: String,
    /// Raw file text, exactly as committed.
    pub text: String,
    /// Parsed AST; derive a spec per use via [`Scenario::to_spec`].
    pub scenario: Scenario,
}

/// The on-disk location of the corpus.
#[must_use]
pub fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

/// Loads every `.hem` file of the corpus, sorted by file name.
///
/// # Panics
///
/// Panics if the directory cannot be read or any file fails to parse.
#[must_use]
pub fn corpus() -> Vec<CorpusEntry> {
    let dir = corpus_dir();
    let mut entries: Vec<CorpusEntry> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.expect("readable directory entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "hem"))
        .map(|path| {
            let name = path
                .file_stem()
                .expect("scenario files have a stem")
                .to_string_lossy()
                .into_owned();
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            let scenario =
                parse_scenario(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            CorpusEntry {
                name,
                text,
                scenario,
            }
        })
        .collect();
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_loads_and_is_sorted() {
        let entries = corpus();
        assert!(entries.len() >= 50, "corpus has {} files", entries.len());
        assert!(entries.windows(2).all(|w| w[0].name < w[1].name));
        assert!(entries.iter().any(|e| e.name == "paper"));
    }
}
