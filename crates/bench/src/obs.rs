//! The observability-overhead benchmark: what serving telemetry costs.
//!
//! [`run_obs_overhead`] drives the same scripted open/mutate/analyze
//! workload through two [`ServerCore`]s — one with the default-on
//! telemetry (request scopes, latency histograms, gauges, the flight
//! ring) and one with `observe(false)`, where every record call
//! reduces to a no-op handle branch. The reported `overhead_pct` is
//! the **minimum of per-repetition paired ratios**: each repetition
//! times a noop drive immediately followed by an instrumented drive,
//! so slow epochs on a busy machine hit both sides of the ratio
//! alike, and the minimum keeps the cleanest pairing — a floor
//! estimator, because scheduler noise can only *inflate* a ratio,
//! while a genuine telemetry regression raises every pair and still
//! trips the gate. `bench_compare` gates the result against an
//! absolute 5% bound.
//!
//! Trace-event *emission* (`--trace-out`) is an opt-in debug flag —
//! it clones every request's span tree into the recorder and is not
//! part of the cost every production request pays — so the timed runs
//! leave it off, and one extra untimed traced drive computes `spans`
//! (trace slices emitted) and `dump_bytes` (the flight dump's size),
//! both pure functions of the workload and compared exactly.
//!
//! Both cores run on a quiet in-memory [`ChaosStorage`]: the modes
//! differ only in telemetry, so the measurement must not be at the
//! mercy of page-cache and dirty-writeback noise, which on a busy
//! machine moves real-disk runs by ±10% in either direction.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use hem_server::{ChaosOptions, ChaosStorage, CoreOptions, ServerCore};

use crate::serving::{event_for, scenario_for, SERVING_CHECKPOINT_BYTES};

/// Sessions in the scripted overhead workload — a serving-shaped mix
/// (compare [`crate::serving::ServingParams::ci`]): mutation-dominated
/// with periodic analyses.
const SESSIONS: usize = 48;
/// Mutation rounds per session — sized so one in-memory pass is long
/// enough that a scheduler hiccup cannot move the ratio by whole
/// percents.
const ROUNDS: usize = 12;
/// Every Nth session is analysed after each round.
const ANALYZE_EVERY: usize = 8;
/// Wall-clock repetitions. Each runs noop then instrumented
/// back-to-back and contributes one paired ratio; the minimum over
/// the repetitions is the reported overhead. The regression gate
/// holds the result to an absolute 5% ceiling, so the statistic has
/// to be solid.
const REPS: usize = 7;

/// What the overhead benchmark measured.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Relative wall-clock cost of default-on telemetry vs the no-op
    /// recorder, in percent, floored at zero.
    pub overhead_pct: f64,
    /// Trace slices the traced drive emitted (deterministic).
    pub spans: u64,
    /// Bytes of the flight-recorder dump (deterministic).
    pub dump_bytes: u64,
}

impl ObsReport {
    /// The `obs` section of `BENCH_analysis.json` (a JSON object, no
    /// trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"overhead_pct\":{:.2},\"spans\":{},\"dump_bytes\":{}}}",
            self.overhead_pct, self.spans, self.dump_bytes
        )
    }
}

fn open_line(i: usize) -> String {
    let mut line = format!("{{\"op\":\"open\",\"session\":\"s{i}\",\"scenario\":");
    hem_obs::json::write_escaped(&mut line, &scenario_for(i));
    line.push('}');
    line
}

/// One pass of the scripted workload. Returns the wall time in
/// milliseconds plus, for traced runs, `(spans, dump_bytes)`.
fn drive_once(dir: &Path, observe: bool, trace: bool) -> (f64, Option<(u64, u64)>) {
    let mut options = CoreOptions::new(dir)
        .sync_appends(false)
        .checkpoint_bytes(SERVING_CHECKPOINT_BYTES)
        .storage(Arc::new(ChaosStorage::new(ChaosOptions::quiet(0))))
        .observe(observe);
    if trace {
        options = options.trace_out(dir.join("trace.json"));
    }
    let core = ServerCore::with_options(options).expect("create obs bench core");
    let started = Instant::now();
    for i in 0..SESSIONS {
        let response = core.handle_line(&open_line(i));
        assert!(
            response.starts_with("{\"ok\":true"),
            "open failed: {response}"
        );
    }
    for r in 0..ROUNDS {
        for i in 0..SESSIONS {
            let line = format!(
                r#"{{"op":"mutate","session":"s{i}","seq":{},"event":{}}}"#,
                r + 1,
                event_for(i, r)
            );
            let response = core.handle_line(&line);
            assert!(
                response.starts_with("{\"ok\":true"),
                "mutate failed: {response}"
            );
        }
        for i in (0..SESSIONS).step_by(ANALYZE_EVERY) {
            let response = core.handle_line(&format!(r#"{{"op":"analyze","session":"s{i}"}}"#));
            assert!(
                response.starts_with("{\"ok\":true"),
                "analyze failed: {response}"
            );
        }
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let artifacts = trace.then(|| {
        let spans = core.trace_json().matches("\"ph\":\"X\"").count() as u64;
        let dump_bytes = core.flight().render_dump("shutdown").len() as u64;
        (spans, dump_bytes)
    });
    (wall_ms, artifacts)
}

/// Runs the overhead benchmark under `base_dir` (one scratch
/// subdirectory per drive; the chaos disk is in-memory, so the
/// subdirectories are pure path namespaces and nothing touches the
/// real filesystem).
#[must_use]
pub fn run_obs_overhead(base_dir: &Path) -> ObsReport {
    // The deterministic artifacts come from one untimed traced drive.
    let (_, measured) = drive_once(&base_dir.join("obs-trace"), true, true);
    let (spans, dump_bytes) = measured.expect("traced run reports artifacts");
    // The gated ratio times the default-on configuration: observed,
    // but no trace export. One paired ratio per repetition — the two
    // drives run back-to-back so ambient slowness cancels out of the
    // quotient — then the cleanest (minimum) pairing across
    // repetitions.
    let mut best_ratio = f64::INFINITY;
    for rep in 0..REPS {
        let (noop_ms, _) = drive_once(&base_dir.join(format!("obs-noop-{rep}")), false, false);
        let (obs_ms, _) = drive_once(&base_dir.join(format!("obs-full-{rep}")), true, false);
        if noop_ms > 0.0 {
            best_ratio = best_ratio.min(obs_ms / noop_ms);
        }
    }
    let overhead_pct = if best_ratio.is_finite() {
        ((best_ratio - 1.0) * 100.0).max(0.0)
    } else {
        0.0
    };
    ObsReport {
        overhead_pct,
        spans,
        dump_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_valid_and_deterministic_fields_are_exact() {
        let report = ObsReport {
            overhead_pct: 1.25,
            spans: 420,
            dump_bytes: 8192,
        };
        let json = report.to_json();
        hem_obs::json::validate(&json).expect("obs section is valid JSON");
        assert_eq!(
            json,
            "{\"overhead_pct\":1.25,\"spans\":420,\"dump_bytes\":8192}"
        );
    }
}
