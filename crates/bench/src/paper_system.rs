//! The paper's evaluation system (Fig. 2, Tables 1–3).
//!
//! Four sources on sender ECUs write signals into two CAN frames; a
//! receiver CPU runs three tasks activated by the signals of frame F1:
//!
//! ```text
//! S1 (P=250, triggering) ─┐
//! S2 (P=450, triggering) ─┼─ F1 (payload 4, high prio) ─┐
//! S3 (P=600, pending)    ─┘                             ├─ CAN ── CPU1: T1 (24, hi)
//! S4 (P=400, triggering) ─── F2 (payload 2, low prio) ──┘         T2 (32, med)
//!                                                                 T3 (40, lo)
//! ```
//!
//! S3's period is garbled in the available scan of the paper; 600 is our
//! documented assumption (see `DESIGN.md`), and [`PaperParams::s3_period`]
//! makes it sweepable (`sweep_s3` binary).

use hem_analysis::Priority;
use hem_autosar_com::{FrameType, TransferProperty};
use hem_can::{CanBusConfig, CanFrameConfig, FrameFormat};
use hem_event_models::sampling::{eta_plus_steps, EtaStep};
use hem_event_models::{EventModelExt, ModelRef, StandardEventModel};
use hem_sim::com::ComSignal;
use hem_sim::system::{SimActivation, SimCpuTask, SimFrame, SimReport, SimSystem};
use hem_sim::trace;
use hem_system::{
    analyze, ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, SystemConfig, SystemError,
    SystemResults, SystemSpec, TaskSpec,
};
use hem_time::Time;

/// Parameters of the paper system, all sweepable.
///
/// Periods and execution times are given in the paper's own units; the
/// analysis runs in ticks of one CAN bit time. `cpu_scale` converts:
/// one paper unit = `cpu_scale` ticks. The paper does not state its time
/// base; `cpu_scale = 10` puts a full frame transmission (95 bits) at
/// roughly 40 % of T1's execution time, the regime in which the paper's
/// Table 3 reports reductions for *all* tasks (a slower relative bus —
/// `cpu_scale = 1` — moves all benefit to the pending low-priority task;
/// see the `sweep_bus` binary and `EXPERIMENTS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperParams {
    /// Period of source S1 (triggering, → T1), paper units. Paper: 250.
    pub s1_period: i64,
    /// Period of source S2 (triggering, → T2), paper units. Paper: 450.
    pub s2_period: i64,
    /// Period of source S3 (pending, → T3), paper units. OCR-lost;
    /// assumed 600.
    pub s3_period: i64,
    /// Period of source S4 (triggering, on F2), paper units. Paper: 400.
    pub s4_period: i64,
    /// Ticks per paper unit (relative CPU/bus speed).
    pub cpu_scale: i64,
    /// CAN bit time in ticks.
    pub bit_time: i64,
    /// Core execution times of T1–T3, paper units. Paper: 24, 32, 40.
    pub cet: [i64; 3],
}

impl Default for PaperParams {
    fn default() -> Self {
        PaperParams {
            s1_period: 250,
            s2_period: 450,
            s3_period: 600,
            s4_period: 400,
            cpu_scale: 10,
            bit_time: 1,
            cet: [24, 32, 40],
        }
    }
}

impl PaperParams {
    /// The literal reading of the paper's tables: one tick per paper
    /// unit and per CAN bit.
    #[must_use]
    pub fn literal() -> Self {
        PaperParams {
            cpu_scale: 1,
            ..Self::default()
        }
    }

    /// A source period in ticks.
    #[must_use]
    pub fn period_ticks(&self, paper_units: i64) -> Time {
        Time::new(paper_units * self.cpu_scale)
    }

    /// An execution time in ticks.
    #[must_use]
    pub fn cet_ticks(&self, index: usize) -> Time {
        Time::new(self.cet[index] * self.cpu_scale)
    }

    fn source(&self, period: i64) -> ModelRef {
        StandardEventModel::periodic(self.period_ticks(period))
            .expect("positive period")
            .shared()
    }
}

/// Builds the [`SystemSpec`] of the paper system.
#[must_use]
pub fn spec(p: &PaperParams) -> SystemSpec {
    SystemSpec::new()
        .cpu("cpu1")
        .bus("can", CanBusConfig::new(Time::new(p.bit_time)))
        .frame(FrameSpec {
            name: "F1".into(),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 4,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: vec![
                SignalSpec {
                    name: "s1".into(),
                    transfer: TransferProperty::Triggering,
                    source: ActivationSpec::External(p.source(p.s1_period)),
                },
                SignalSpec {
                    name: "s2".into(),
                    transfer: TransferProperty::Triggering,
                    source: ActivationSpec::External(p.source(p.s2_period)),
                },
                SignalSpec {
                    name: "s3".into(),
                    transfer: TransferProperty::Pending,
                    source: ActivationSpec::External(p.source(p.s3_period)),
                },
            ],
        })
        .frame(FrameSpec {
            name: "F2".into(),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 2,
            format: FrameFormat::Standard,
            priority: Priority::new(2),
            signals: vec![SignalSpec {
                name: "s4".into(),
                transfer: TransferProperty::Triggering,
                source: ActivationSpec::External(p.source(p.s4_period)),
            }],
        })
        .task(TaskSpec {
            name: "T1".into(),
            cpu: "cpu1".into(),
            bcet: p.cet_ticks(0),
            wcet: p.cet_ticks(0),
            priority: Priority::new(1),
            activation: ActivationSpec::Signal {
                frame: "F1".into(),
                signal: "s1".into(),
            },
        })
        .task(TaskSpec {
            name: "T2".into(),
            cpu: "cpu1".into(),
            bcet: p.cet_ticks(1),
            wcet: p.cet_ticks(1),
            priority: Priority::new(2),
            activation: ActivationSpec::Signal {
                frame: "F1".into(),
                signal: "s2".into(),
            },
        })
        .task(TaskSpec {
            name: "T3".into(),
            cpu: "cpu1".into(),
            bcet: p.cet_ticks(2),
            wcet: p.cet_ticks(2),
            priority: Priority::new(3),
            activation: ActivationSpec::Signal {
                frame: "F1".into(),
                signal: "s3".into(),
            },
        })
}

/// Runs the global analysis in the given mode.
///
/// # Errors
///
/// Propagates [`SystemError`] from the engine.
pub fn analyze_mode(p: &PaperParams, mode: AnalysisMode) -> Result<SystemResults, SystemError> {
    analyze(&spec(p), &SystemConfig::new(mode))
}

/// One row of the reproduced Table 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table3Row {
    /// Task name (T1–T3).
    pub task: String,
    /// Core execution time.
    pub cet: Time,
    /// Priority label as in the paper (High / Med / Low).
    pub priority: &'static str,
    /// Worst-case response time with flat event streams.
    pub r_flat: Time,
    /// Worst-case response time with hierarchical event models.
    pub r_hem: Time,
}

impl Table3Row {
    /// The WCRT reduction in percent (the paper's last column).
    #[must_use]
    pub fn reduction_percent(&self) -> f64 {
        100.0 * (self.r_flat - self.r_hem).ticks() as f64 / self.r_flat.ticks() as f64
    }
}

/// Reproduces Table 3: WCRTs of T1–T3 under flat vs. hierarchical
/// analysis.
///
/// # Errors
///
/// Propagates [`SystemError`] from either analysis run.
pub fn table3(p: &PaperParams) -> Result<Vec<Table3Row>, SystemError> {
    let flat = analyze_mode(p, AnalysisMode::Flat)?;
    let hem = analyze_mode(p, AnalysisMode::Hierarchical)?;
    let prio = ["High", "Med", "Low"];
    Ok(["T1", "T2", "T3"]
        .iter()
        .zip(prio)
        .zip(p.cet)
        .map(|((task, priority), cet)| Table3Row {
            task: (*task).to_string(),
            cet: Time::new(cet),
            priority,
            r_flat: flat.task(task).expect("task analysed").response.r_plus,
            r_hem: hem.task(task).expect("task analysed").response.r_plus,
        })
        .collect())
}

/// The four `η⁺` staircases of Figure 4.
#[derive(Debug, Clone)]
pub struct Figure4 {
    /// Total frame arrivals of F1 after the bus (black dots in the
    /// paper).
    pub frame_f1: Vec<EtaStep>,
    /// Unpacked s1 stream activating T1 (red squares).
    pub t1_input: Vec<EtaStep>,
    /// Unpacked s2 stream activating T2 (blue squares).
    pub t2_input: Vec<EtaStep>,
    /// Unpacked s3 stream activating T3 (green triangles).
    pub t3_input: Vec<EtaStep>,
}

/// Reproduces Figure 4: `η⁺(Δt)` for `Δt ∈ (0, dt_max]` of F1's output
/// stream and the three unpacked signal streams.
///
/// # Errors
///
/// Propagates [`SystemError`] from the hierarchical analysis.
pub fn figure4(p: &PaperParams, dt_max: Time) -> Result<Figure4, SystemError> {
    let hem = analyze_mode(p, AnalysisMode::Hierarchical)?;
    let f1 = hem.frame_output("F1").expect("frame analysed");
    let s = |sig: &str| {
        hem.unpacked_signal("F1", sig)
            .expect("signal present")
            .clone()
    };
    Ok(Figure4 {
        frame_f1: eta_plus_steps(f1.as_ref(), dt_max),
        t1_input: eta_plus_steps(s("s1").as_ref(), dt_max),
        t2_input: eta_plus_steps(s("s2").as_ref(), dt_max),
        t3_input: eta_plus_steps(s("s3").as_ref(), dt_max),
    })
}

/// Builds the behavioural simulation counterpart of the paper system.
///
/// Sources fire periodically from phase 0 (the synchronous critical
/// instant); frames transmit at their worst-case length.
#[must_use]
pub fn simulation(p: &PaperParams, horizon: Time, seed: u64) -> SimSystem {
    let bus = CanBusConfig::new(Time::new(p.bit_time));
    let c = |payload| {
        bus.transmission_time(
            &CanFrameConfig::new(FrameFormat::Standard, payload).expect("payload within CAN"),
        )
        .r_plus
    };
    // Jitter seeds make multi-run validation campaigns possible while
    // keeping runs reproducible.
    let phase_jitter = |period: i64, salt: u64| {
        trace::periodic_with_jitter(p.period_ticks(period), Time::ZERO, horizon, seed ^ salt)
    };
    SimSystem {
        frames: vec![
            SimFrame {
                name: "F1".into(),
                priority: Priority::new(1),
                transmission_time: c(4),
                frame_type: FrameType::Direct,
                signals: vec![
                    ComSignal {
                        name: "s1".into(),
                        transfer: TransferProperty::Triggering,
                        writes: phase_jitter(p.s1_period, 1),
                    },
                    ComSignal {
                        name: "s2".into(),
                        transfer: TransferProperty::Triggering,
                        writes: phase_jitter(p.s2_period, 2),
                    },
                    ComSignal {
                        name: "s3".into(),
                        transfer: TransferProperty::Pending,
                        writes: phase_jitter(p.s3_period, 3),
                    },
                ],
            },
            SimFrame {
                name: "F2".into(),
                priority: Priority::new(2),
                transmission_time: c(2),
                frame_type: FrameType::Direct,
                signals: vec![ComSignal {
                    name: "s4".into(),
                    transfer: TransferProperty::Triggering,
                    writes: phase_jitter(p.s4_period, 4),
                }],
            },
        ],
        tasks: vec![
            SimCpuTask {
                name: "T1".into(),
                priority: Priority::new(1),
                execution_time: p.cet_ticks(0),
                activation: SimActivation::Delivery {
                    frame: "F1".into(),
                    signal: "s1".into(),
                },
            },
            SimCpuTask {
                name: "T2".into(),
                priority: Priority::new(2),
                execution_time: p.cet_ticks(1),
                activation: SimActivation::Delivery {
                    frame: "F1".into(),
                    signal: "s2".into(),
                },
            },
            SimCpuTask {
                name: "T3".into(),
                priority: Priority::new(3),
                execution_time: p.cet_ticks(2),
                activation: SimActivation::Delivery {
                    frame: "F1".into(),
                    signal: "s3".into(),
                },
            },
        ],
    }
}

/// Runs the behavioural simulation.
#[must_use]
pub fn simulate(p: &PaperParams, horizon: Time, seed: u64) -> SimReport {
    hem_sim::system::run(&simulation(p, horizon, seed), horizon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_helpers() {
        let p = PaperParams::default();
        assert_eq!(p.period_ticks(250), Time::new(2_500));
        assert_eq!(p.cet_ticks(0), Time::new(240));
        let lit = PaperParams::literal();
        assert_eq!(lit.cpu_scale, 1);
        assert_eq!(lit.period_ticks(250), Time::new(250));
        assert_eq!(lit.cet_ticks(2), Time::new(40));
        // Literal and default share every other parameter.
        assert_eq!(lit.s3_period, p.s3_period);
        assert_eq!(lit.bit_time, p.bit_time);
    }

    #[test]
    fn simulation_structure_mirrors_spec() {
        let p = PaperParams::default();
        let sys = simulation(&p, Time::new(50_000), 0);
        assert_eq!(sys.frames.len(), 2);
        assert_eq!(sys.frames[0].signals.len(), 3);
        assert_eq!(sys.tasks.len(), 3);
        // Frame wire times match the CAN model: 95 and 75 bits.
        assert_eq!(sys.frames[0].transmission_time, Time::new(95));
        assert_eq!(sys.frames[1].transmission_time, Time::new(75));
        // Source traces are scaled paper periods.
        assert_eq!(sys.frames[0].signals[0].writes[1], Time::new(2_500));
    }

    #[test]
    fn table3_hem_dominates_flat() {
        let rows = table3(&PaperParams::default()).unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(
                row.r_hem <= row.r_flat,
                "{}: HEM {} must not exceed flat {}",
                row.task,
                row.r_hem,
                row.r_flat
            );
        }
        // The paper reports growing reductions toward lower priorities.
        assert!(rows[2].reduction_percent() >= rows[0].reduction_percent());
        // The improvement is substantial for at least the low-prio task.
        assert!(rows[2].reduction_percent() > 5.0);
    }

    #[test]
    fn figure4_unpacked_below_total() {
        let p = PaperParams::default();
        let dt_max = Time::new(2000 * p.cpu_scale);
        let fig = figure4(&p, dt_max).unwrap();
        // At every breakpoint, each unpacked stream admits at most as
        // many events as the total frame stream.
        let count_at = |steps: &[EtaStep], dt: Time| {
            steps
                .iter()
                .rev()
                .find(|s| s.at <= dt)
                .map_or(0, |s| s.count)
        };
        for dt in (1..=dt_max.ticks())
            .step_by(50 * p.cpu_scale as usize)
            .map(Time::new)
        {
            let total = count_at(&fig.frame_f1, dt);
            for inner in [&fig.t1_input, &fig.t2_input, &fig.t3_input] {
                assert!(count_at(inner, dt) <= total, "Δt = {dt}");
            }
        }
        // The fast s1 stream clearly out-arrives the slow pending s3
        // stream over a long window (sanity that the curves differ).
        assert!(count_at(&fig.t1_input, dt_max) > count_at(&fig.t3_input, dt_max));
    }

    #[test]
    fn simulated_latencies_within_path_bounds() {
        use hem_system::path::{analyze_path, signal_paths};
        let p = PaperParams::default();
        let system = spec(&p);
        let hem = analyze_mode(&p, AnalysisMode::Hierarchical).unwrap();
        for seed in 0..3 {
            let report = simulate(&p, Time::new(200_000), seed);
            for path in signal_paths(&system) {
                let bound = analyze_path(&system, &hem, &path).unwrap().total();
                let observed = report.task_worst_latency[&path.task];
                assert!(
                    observed <= bound,
                    "seed {seed}: {}/{}→{} observed {observed} > bound {bound}",
                    path.frame,
                    path.signal,
                    path.task
                );
            }
        }
    }

    #[test]
    fn simulation_within_analysis_bounds() {
        let p = PaperParams::default();
        let hem = analyze_mode(&p, AnalysisMode::Hierarchical).unwrap();
        for seed in 0..5 {
            let report = simulate(&p, Time::new(200_000), seed);
            for task in ["T1", "T2", "T3"] {
                let bound = hem.task(task).unwrap().response.r_plus;
                let observed = report.task_worst_response[task];
                assert!(
                    observed <= bound,
                    "seed {seed}: {task} observed {observed} > bound {bound}"
                );
            }
            for frame in ["F1", "F2"] {
                let bound = hem.frame(frame).unwrap().response.r_plus;
                let observed = report.frame_worst_response[frame];
                assert!(
                    observed <= bound,
                    "seed {seed}: {frame} observed {observed} > bound {bound}"
                );
            }
        }
    }
}
