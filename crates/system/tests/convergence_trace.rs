//! The [`ConvergenceTrace`] in [`Diagnostics`] must reproduce the exact
//! per-iteration response-time vectors of the global fixed-point run.
//!
//! Exactness is checked two ways: against hand-derived values of a
//! system small enough to solve on paper, and against truncated re-runs
//! of the same analysis (`max_global_iterations = k` must reproduce the
//! first `k` snapshots byte for byte).

use hem_analysis::Priority;
use hem_autosar_com::{FrameType, TransferProperty};
use hem_can::{CanBusConfig, FrameFormat};
use hem_event_models::{EventModelExt, StandardEventModel};
use hem_obs::RtBound;
use hem_system::{
    analyze_robust, ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, SystemConfig, SystemSpec,
    TaskSpec,
};
use hem_time::Time;

/// One source → frame → bus → receiving task, all uncontended: the
/// response times are constant from the first iteration (frame
/// `[79, 95]`, task `[30, 30]`) and the fixed point is reached at
/// iteration 2.
fn mini_system() -> SystemSpec {
    SystemSpec::new()
        .cpu("cpu0")
        .bus("can0", CanBusConfig::new(Time::new(1)))
        .frame(FrameSpec {
            name: "F".into(),
            bus: "can0".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 4,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: vec![SignalSpec {
                name: "s".into(),
                transfer: TransferProperty::Triggering,
                source: ActivationSpec::External(
                    StandardEventModel::periodic(Time::new(500))
                        .expect("valid")
                        .shared(),
                ),
            }],
        })
        .task(TaskSpec {
            name: "rx".into(),
            cpu: "cpu0".into(),
            bcet: Time::new(30),
            wcet: Time::new(30),
            priority: Priority::new(1),
            activation: ActivationSpec::Signal {
                frame: "F".into(),
                signal: "s".into(),
            },
        })
}

#[test]
fn trace_matches_hand_derived_vectors() {
    let r = analyze_robust(
        &mini_system(),
        &SystemConfig::new(AnalysisMode::Hierarchical),
    )
    .expect("well-formed");
    assert!(r.diagnostics.converged());
    let trace = &r.diagnostics.trace;
    assert_eq!(trace.len() as u64, r.diagnostics.iterations);
    assert!(trace.len() >= 2, "fixed point needs a confirming iteration");
    for (i, snap) in trace.iterations().iter().enumerate() {
        assert_eq!(snap.iteration, i as u64 + 1, "iterations are 1-based");
        // Uncontended: every iteration computes the same local results.
        assert_eq!(
            snap.response_times.get("frame:F"),
            Some(&RtBound::new(79, 95)),
            "iteration {}",
            snap.iteration
        );
        assert_eq!(
            snap.response_times.get("task:rx"),
            Some(&RtBound::new(30, 30)),
            "iteration {}",
            snap.iteration
        );
        assert_eq!(
            snap.response_times.len(),
            2,
            "exactly the system's entities"
        );
    }
}

#[test]
fn trace_agrees_with_diagnostics_vectors() {
    let r = analyze_robust(
        &mini_system(),
        &SystemConfig::new(AnalysisMode::Hierarchical),
    )
    .expect("well-formed");
    let last = r.diagnostics.trace.last().expect("non-empty");
    for (entity, rt) in &r.diagnostics.last_response_times {
        assert_eq!(
            last.response_times.get(entity),
            Some(&RtBound::new(rt.r_minus.ticks(), rt.r_plus.ticks())),
            "trace must end on the converged vector ({entity})"
        );
    }
    assert_eq!(
        last.response_times.len(),
        r.diagnostics.last_response_times.len()
    );
}

#[test]
fn truncated_reruns_reproduce_trace_prefixes() {
    let spec = mini_system();
    let full =
        analyze_robust(&spec, &SystemConfig::new(AnalysisMode::Hierarchical)).expect("well-formed");
    let total = full.diagnostics.iterations;
    for k in 1..=total {
        let mut config = SystemConfig::new(AnalysisMode::Hierarchical);
        config.max_global_iterations = k;
        let partial = analyze_robust(&spec, &config).expect("well-formed");
        assert_eq!(partial.diagnostics.trace.len() as u64, k);
        assert_eq!(
            partial.diagnostics.trace.iterations(),
            &full.diagnostics.trace.iterations()[..k as usize],
            "the first {k} iterations must be reproduced exactly"
        );
    }
}

#[test]
fn converged_diagnostics_carry_iterations_and_elapsed() {
    let r = analyze_robust(
        &mini_system(),
        &SystemConfig::new(AnalysisMode::Hierarchical),
    )
    .expect("well-formed");
    assert!(r.diagnostics.converged());
    assert!(r.diagnostics.iterations >= 2);
    assert!(
        r.diagnostics.elapsed > std::time::Duration::ZERO,
        "successful runs report wall-clock time too"
    );
    let summary = r.diagnostics.summary();
    assert!(summary.contains("elapsed"), "{summary}");
}
