//! Acceptance test: an unschedulable spec analysed under a 100 ms
//! wall-clock budget returns promptly — not after the (deliberately
//! astronomical) iteration limits — and the diagnostics name the
//! diverging entity and the suspected bottleneck resource.

use std::time::{Duration, Instant};

use hem_analysis::AnalysisBudget;
use hem_event_models::EventModelExt as _;
use hem_system::{
    analyze, analyze_robust, ActivationSpec, AnalysisMode, SystemConfig, SystemError, SystemSpec,
    TaskSpec,
};
use hem_time::Time;

/// CPU utilization 90/100 + 50/200 = 115 %: the low-priority task's
/// busy window grows without bound.
fn unschedulable_spec() -> SystemSpec {
    let task = |name: &str, wcet: i64, prio: u32, period: i64| TaskSpec {
        name: name.into(),
        cpu: "cpu0".into(),
        bcet: Time::new(wcet),
        wcet: Time::new(wcet),
        priority: hem_analysis::Priority::new(prio),
        activation: ActivationSpec::External(
            hem_event_models::StandardEventModel::periodic(Time::new(period))
                .expect("valid")
                .shared(),
        ),
    };
    SystemSpec::new()
        .cpu("cpu0")
        .task(task("hog", 90, 1, 100))
        .task(task("victim", 50, 2, 200))
}

#[test]
fn unschedulable_spec_returns_within_budget_with_diagnostics() {
    // Raise the work limits so high that only the wall-clock budget can
    // stop the diverging busy window within the lifetime of the test.
    let mut config = SystemConfig::new(AnalysisMode::Flat);
    config.local.max_busy_window = Time::new(i64::MAX / 4);
    config.local.max_activations = u64::MAX / 2;
    config.local.max_iterations = u64::MAX / 2;
    config.local.budget = AnalysisBudget::within(Duration::from_millis(100));

    let started = Instant::now();
    let r = analyze_robust(&unschedulable_spec(), &config).expect("spec is well-formed");
    let elapsed = started.elapsed();

    // Cooperative cancellation polls every few busy-window iterations,
    // so the run ends within a small margin of the 100 ms deadline (the
    // generous cap guards against noisy CI machines, not precision).
    assert!(
        elapsed < Duration::from_secs(5),
        "analysis ran {elapsed:?} despite a 100 ms budget"
    );

    assert!(r.diagnostics.budget_exhausted());
    assert!(!r.results.is_complete());
    assert_eq!(
        r.diagnostics.prime_suspect(),
        Some("task:victim"),
        "diagnostics should name the diverging entity"
    );
    assert_eq!(
        r.diagnostics.suspected_bottleneck.as_deref(),
        Some("cpu:cpu0"),
        "diagnostics should point at the overloaded resource"
    );

    // The strict API reports the same condition as a typed error.
    let mut config = SystemConfig::new(AnalysisMode::Flat);
    config.local.max_busy_window = Time::new(i64::MAX / 4);
    config.local.max_activations = u64::MAX / 2;
    config.local.max_iterations = u64::MAX / 2;
    config.local.budget = AnalysisBudget::within(Duration::from_millis(100));
    let err = analyze(&unschedulable_spec(), &config).unwrap_err();
    assert!(matches!(
        err,
        SystemError::BudgetExhausted { .. } | SystemError::Analysis(_)
    ));
}

#[test]
fn schedulable_spec_is_untouched_by_a_generous_budget() {
    let mut spec = unschedulable_spec();
    spec.tasks[0].wcet = Time::new(30); // 30/100 + 50/200 = 55 %
    spec.tasks[0].bcet = Time::new(30);
    let mut config = SystemConfig::new(AnalysisMode::Flat);
    config.local.budget = AnalysisBudget::within(Duration::from_secs(30));
    let r = analyze_robust(&spec, &config).expect("well-formed");
    assert!(r.results.is_complete());
    assert!(r.diagnostics.converged());
    let unbudgeted = analyze(&spec, &SystemConfig::new(AnalysisMode::Flat)).expect("converges");
    assert_eq!(
        r.results.task("victim").map(|t| t.response),
        unbudgeted.task("victim").map(|t| t.response),
        "a non-binding budget must not change results"
    );
}

/// A two-island system (bus+cpu per island) whose warm-start replay has
/// real work to skip: mutating island 0 leaves island 1 clean.
fn two_island_spec() -> SystemSpec {
    use hem_analysis::Priority;
    use hem_autosar_com::{FrameType, TransferProperty};
    use hem_can::{CanBusConfig, FrameFormat};
    use hem_event_models::StandardEventModel;
    use hem_system::{FrameSpec, SignalSpec};

    let periodic = |p: i64| {
        ActivationSpec::External(
            StandardEventModel::periodic(Time::new(p))
                .expect("valid")
                .shared(),
        )
    };
    let frame = |name: &str, bus: &str, period: i64| FrameSpec {
        name: name.into(),
        bus: bus.into(),
        frame_type: FrameType::Direct,
        payload_bytes: 4,
        format: FrameFormat::Standard,
        priority: Priority::new(1),
        signals: vec![SignalSpec {
            name: "s".into(),
            transfer: TransferProperty::Triggering,
            source: periodic(period),
        }],
    };
    let task = |name: &str, cpu: &str, wcet: i64, frame: &str| TaskSpec {
        name: name.into(),
        cpu: cpu.into(),
        bcet: Time::new(wcet),
        wcet: Time::new(wcet),
        priority: hem_analysis::Priority::new(1),
        activation: ActivationSpec::Signal {
            frame: frame.into(),
            signal: "s".into(),
        },
    };
    SystemSpec::new()
        .cpu("cpu_a")
        .cpu("cpu_b")
        .bus("can0", CanBusConfig::new(Time::new(1)))
        .bus("can1", CanBusConfig::new(Time::new(1)))
        .frame(frame("F0", "can0", 500))
        .frame(frame("F1", "can1", 700))
        .task(task("t0", "cpu_a", 30, "F0"))
        .task(task("t1", "cpu_b", 40, "F1"))
}

/// Budget expiry during a warm-start replay degrades exactly like
/// `analyze_robust`: a graceful `BudgetExhausted` stop, no snapshot, no
/// panic — the replay loop polls the budget cooperatively.
#[test]
fn warm_replay_honors_exhausted_budget() {
    use hem_system::analyze_incremental;

    let spec = two_island_spec();
    let config = SystemConfig::new(AnalysisMode::Hierarchical);
    let first = analyze_incremental(&spec, &config, None).expect("well-formed");
    let snapshot = first.snapshot.expect("converged run snapshots");

    // Mutate island 0 only, then replay island 1 under a budget that is
    // already exhausted when the replay starts.
    let mut mutated = spec.clone();
    mutated.tasks[0].wcet = Time::new(35);
    let strict = SystemConfig::new(AnalysisMode::Hierarchical)
        .with_budget(AnalysisBudget::within(Duration::ZERO));
    let r = analyze_incremental(&mutated, &strict, Some(&snapshot)).expect("well-formed");
    assert!(
        r.analysis.diagnostics.budget_exhausted(),
        "expected BudgetExhausted, got {:?}",
        r.analysis.diagnostics.stop
    );
    assert!(!r.analysis.results.is_complete());
    assert!(
        r.snapshot.is_none(),
        "a stopped run must not produce a warm-start snapshot"
    );

    // A non-binding budget leaves the warm chain bit-identical to cold.
    let generous = SystemConfig::new(AnalysisMode::Hierarchical)
        .with_budget(AnalysisBudget::within(Duration::from_secs(30)));
    let warm = analyze_incremental(&mutated, &generous, Some(&snapshot)).expect("well-formed");
    assert!(warm.reuse.warm);
    assert!(warm.reuse.replayed_results > 0, "island 1 should replay");
    let cold = analyze_robust(&mutated, &config).expect("well-formed");
    assert_eq!(
        warm.analysis.results.response_times(),
        cold.results.response_times()
    );
    assert_eq!(warm.analysis.diagnostics.trace, cold.diagnostics.trace);
}
