//! Acceptance test: an unschedulable spec analysed under a 100 ms
//! wall-clock budget returns promptly — not after the (deliberately
//! astronomical) iteration limits — and the diagnostics name the
//! diverging entity and the suspected bottleneck resource.

use std::time::{Duration, Instant};

use hem_analysis::AnalysisBudget;
use hem_event_models::EventModelExt as _;
use hem_system::{
    analyze, analyze_robust, ActivationSpec, AnalysisMode, SystemConfig, SystemError, SystemSpec,
    TaskSpec,
};
use hem_time::Time;

/// CPU utilization 90/100 + 50/200 = 115 %: the low-priority task's
/// busy window grows without bound.
fn unschedulable_spec() -> SystemSpec {
    let task = |name: &str, wcet: i64, prio: u32, period: i64| TaskSpec {
        name: name.into(),
        cpu: "cpu0".into(),
        bcet: Time::new(wcet),
        wcet: Time::new(wcet),
        priority: hem_analysis::Priority::new(prio),
        activation: ActivationSpec::External(
            hem_event_models::StandardEventModel::periodic(Time::new(period))
                .expect("valid")
                .shared(),
        ),
    };
    SystemSpec::new()
        .cpu("cpu0")
        .task(task("hog", 90, 1, 100))
        .task(task("victim", 50, 2, 200))
}

#[test]
fn unschedulable_spec_returns_within_budget_with_diagnostics() {
    // Raise the work limits so high that only the wall-clock budget can
    // stop the diverging busy window within the lifetime of the test.
    let mut config = SystemConfig::new(AnalysisMode::Flat);
    config.local.max_busy_window = Time::new(i64::MAX / 4);
    config.local.max_activations = u64::MAX / 2;
    config.local.max_iterations = u64::MAX / 2;
    config.local.budget = AnalysisBudget::within(Duration::from_millis(100));

    let started = Instant::now();
    let r = analyze_robust(&unschedulable_spec(), &config).expect("spec is well-formed");
    let elapsed = started.elapsed();

    // Cooperative cancellation polls every few busy-window iterations,
    // so the run ends within a small margin of the 100 ms deadline (the
    // generous cap guards against noisy CI machines, not precision).
    assert!(
        elapsed < Duration::from_secs(5),
        "analysis ran {elapsed:?} despite a 100 ms budget"
    );

    assert!(r.diagnostics.budget_exhausted());
    assert!(!r.results.is_complete());
    assert_eq!(
        r.diagnostics.prime_suspect(),
        Some("task:victim"),
        "diagnostics should name the diverging entity"
    );
    assert_eq!(
        r.diagnostics.suspected_bottleneck.as_deref(),
        Some("cpu:cpu0"),
        "diagnostics should point at the overloaded resource"
    );

    // The strict API reports the same condition as a typed error.
    let mut config = SystemConfig::new(AnalysisMode::Flat);
    config.local.max_busy_window = Time::new(i64::MAX / 4);
    config.local.max_activations = u64::MAX / 2;
    config.local.max_iterations = u64::MAX / 2;
    config.local.budget = AnalysisBudget::within(Duration::from_millis(100));
    let err = analyze(&unschedulable_spec(), &config).unwrap_err();
    assert!(matches!(
        err,
        SystemError::BudgetExhausted { .. } | SystemError::Analysis(_)
    ));
}

#[test]
fn schedulable_spec_is_untouched_by_a_generous_budget() {
    let mut spec = unschedulable_spec();
    spec.tasks[0].wcet = Time::new(30); // 30/100 + 50/200 = 55 %
    spec.tasks[0].bcet = Time::new(30);
    let mut config = SystemConfig::new(AnalysisMode::Flat);
    config.local.budget = AnalysisBudget::within(Duration::from_secs(30));
    let r = analyze_robust(&spec, &config).expect("well-formed");
    assert!(r.results.is_complete());
    assert!(r.diagnostics.converged());
    let unbudgeted = analyze(&spec, &SystemConfig::new(AnalysisMode::Flat)).expect("converges");
    assert_eq!(
        r.results.task("victim").map(|t| t.response),
        unbudgeted.task("victim").map(|t| t.response),
        "a non-binding budget must not change results"
    );
}
