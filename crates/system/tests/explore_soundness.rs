//! Soundness and determinism of the exploration engine.
//!
//! Three properties over random small systems (see `docs/EXPLORATION.md`
//! for the contracts they enforce):
//!
//! 1. **Prune soundness** — a candidate rejected by a necessary test
//!    must be confirmed infeasible by the full analysis. The tests are
//!    built from optimistic lowerings, so a rejection is a proof, never
//!    a heuristic; a pruned-but-actually-feasible candidate would mean
//!    the search silently discards real solutions.
//! 2. **Feasible-set agreement** — running the same problem with
//!    pruning on and off must yield the identical candidate list, the
//!    identical feasible set with identical objective scores, and the
//!    identical best pick.
//! 3. **Thread invariance** — the same seed must produce bit-identical
//!    reports, visit order, best/default indices, and recorder counter
//!    totals for 1, 2, 4, and 8 analysis threads.

use std::collections::BTreeMap;

use proptest::prelude::*;

use hem_analysis::Priority;
use hem_autosar_com::{FrameType, TransferProperty};
use hem_can::{CanBusConfig, FrameFormat};
use hem_event_models::{EventModelExt, StandardEventModel};
use hem_obs::MemoryRecorder;
use hem_system::explore::{
    explore, ExploreOutcome, ExploreProblem, PackingSpace, PeriodChoice, PeriodSite, PrioritySpace,
    Verdict,
};
use hem_system::{
    ActivationSpec, AnalysisMode, FrameSpec, SignalSpec, SystemConfig, SystemSpec, TaskSpec,
};
use hem_time::Time;

/// Tiny deterministic generator: the proptest case hands us a seed,
/// this xorshift expands it into a concrete exploration problem.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.0 = x;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Builds a random exploration problem over one CPU and one CAN bus:
/// 2–3 external periodic signals packed into one base frame with
/// receiver tasks (some deadline-constrained), one externally
/// activated load task whose period axis includes an overloaded
/// alternative (so the utilization necessary test always has
/// something real to prune), a full partition packing axis, and a
/// small priority space with seeded shuffles.
fn build_problem(seed: u64) -> ExploreProblem {
    let mut rng = Rng(seed);
    let mut spec = SystemSpec::new()
        .cpu("cpu1")
        .bus("can", CanBusConfig::new(Time::new(1)));

    let n_signals = 2 + rng.pick(2) as usize;
    let mut signals = Vec::new();
    let mut sources = Vec::new();
    for s in 0..n_signals {
        let period = Time::new(2_000 + 500 * rng.pick(4) as i64);
        signals.push(SignalSpec {
            name: format!("s{s}"),
            // s0 stays triggering so every packing keeps at least one
            // sendable group reachable; the rest may be pending.
            transfer: if s > 0 && rng.pick(3) == 0 {
                TransferProperty::Pending
            } else {
                TransferProperty::Triggering
            },
            source: ActivationSpec::External(
                StandardEventModel::periodic(period)
                    .expect("positive period")
                    .shared(),
            ),
        });
        sources.push(period);
    }
    spec = spec.frame(FrameSpec {
        name: "F0".into(),
        bus: "can".into(),
        frame_type: FrameType::Direct,
        payload_bytes: n_signals as u8,
        format: FrameFormat::Standard,
        priority: Priority::new(1),
        signals,
    });

    let mut deadlines = BTreeMap::new();
    for (s, period) in sources.iter().enumerate() {
        let name = format!("rx{s}");
        let wcet = Time::new(150 + rng.pick(350) as i64);
        spec = spec.task(TaskSpec {
            name: name.clone(),
            cpu: "cpu1".into(),
            bcet: wcet,
            wcet,
            priority: Priority::new(s as u32 + 1),
            activation: ActivationSpec::Signal {
                frame: "F0".into(),
                signal: format!("s{s}"),
            },
        });
        if rng.pick(2) == 0 {
            deadlines.insert(name, *period);
        }
    }
    let load_wcet = Time::new(200 + rng.pick(200) as i64);
    spec = spec.task(TaskSpec {
        name: "load".into(),
        cpu: "cpu1".into(),
        bcet: load_wcet,
        wcet: load_wcet,
        priority: Priority::new(n_signals as u32 + 1),
        activation: ActivationSpec::External(
            StandardEventModel::periodic(Time::new(2_000))
                .expect("positive period")
                .shared(),
        ),
    });

    let mut problem = ExploreProblem::new(spec);
    problem.deadlines = deadlines;
    problem.packing = PackingSpace::Partitions {
        bus: "can".into(),
        widths: None,
    };
    problem.priorities = PrioritySpace {
        max_orders_per_resource: 2,
        opa_seed: true,
        dm_seed: true,
        random_orders: 1,
    };
    // The 50-tick alternative pushes CPU utilization past 4: every
    // candidate choosing it must be rejected by the utilization bound.
    problem.period_choices = vec![PeriodChoice {
        site: PeriodSite::Task("load".into()),
        periods: vec![Time::new(2_000), Time::new(50)],
    }];
    problem.seed = seed;
    problem.max_candidates = 256;
    problem
}

fn run(problem: &ExploreProblem, threads: usize) -> (ExploreOutcome, hem_obs::MetricsSnapshot) {
    let (recorder, handle) = MemoryRecorder::handle();
    let config = SystemConfig::new(AnalysisMode::Hierarchical)
        .with_recorder(handle)
        .with_threads(threads);
    let outcome = explore(problem, &config).expect("generated systems validate");
    (outcome, recorder.snapshot())
}

/// Everything an exploration run promises to keep deterministic,
/// rendered into one comparable string (wall-clock never appears in
/// an [`ExploreOutcome`], so the whole thing qualifies).
fn fingerprint(outcome: &ExploreOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for report in &outcome.reports {
        let _ = writeln!(
            out,
            "{:?} {:?} {:?} {} {:?} {:?}",
            report.config,
            report.verdict,
            report.worst_task_response,
            report.warm,
            report.cone_fraction.map(f64::to_bits),
            report.response_times,
        );
    }
    let _ = writeln!(
        out,
        "best={:?} default={:?} visited={} pruned={} feasible={} warm_hits={} cone={}",
        outcome.best,
        outcome.default_index,
        outcome.visited,
        outcome.pruned,
        outcome.feasible,
        outcome.warm_hits,
        outcome.mean_cone_fraction.to_bits(),
    );
    out
}

/// Properties 1 and 2: compare a pruning run against the exhaustive
/// run of the same problem.
fn check_prune_soundness(problem: &ExploreProblem) {
    let mut pruning = problem.clone();
    pruning.use_necessary_tests = true;
    let mut exhaustive = problem.clone();
    exhaustive.use_necessary_tests = false;
    let (pruned_run, _) = run(&pruning, 1);
    let (full_run, _) = run(&exhaustive, 1);

    assert_eq!(
        pruned_run.visited, full_run.visited,
        "pruning must not change the candidate enumeration"
    );
    assert!(
        pruned_run.pruned > 0,
        "the overloaded period alternative must trip the utilization bound"
    );
    assert_eq!(full_run.pruned, 0, "exhaustive run must analyze everything");

    for (i, (p, f)) in pruned_run.reports.iter().zip(&full_run.reports).enumerate() {
        assert_eq!(
            format!("{:?}", p.config),
            format!("{:?}", f.config),
            "candidate {i}: enumeration order must be identical"
        );
        match (&p.verdict, &f.verdict) {
            // Property 1: a rejection by a necessary test is a proof.
            (Verdict::Pruned(test), full) => {
                assert!(
                    matches!(full, Verdict::Infeasible { .. }),
                    "candidate {i} ({:?}): pruned by `{test}` but the full \
                     analysis says {full:?} — the necessary test is unsound",
                    p.config
                );
            }
            // Property 2: un-pruned candidates get the same verdict.
            (a, b) => assert_eq!(a, b, "candidate {i}: verdicts diverge"),
        }
    }
    assert_eq!(
        pruned_run.feasible, full_run.feasible,
        "pruning must not change the feasible count"
    );
    assert_eq!(
        pruned_run.best, full_run.best,
        "pruning must not change the best pick"
    );
}

/// Property 3: identical outcome and counters for every thread count.
fn check_thread_invariance(problem: &ExploreProblem) {
    let (reference, ref_metrics) = run(problem, 1);
    let ref_print = fingerprint(&reference);
    for threads in [2, 4, 8] {
        let (candidate, metrics) = run(problem, threads);
        assert_eq!(
            ref_print,
            fingerprint(&candidate),
            "{threads} threads: exploration outcome differs"
        );
        assert_eq!(
            ref_metrics.counters, metrics.counters,
            "{threads} threads: counter totals differ"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn necessary_tests_only_reject_infeasible_candidates(seed in 0u64..1 << 48) {
        check_prune_soundness(&build_problem(seed));
    }

    #[test]
    fn exploration_is_thread_count_invariant(seed in 0u64..1 << 48) {
        check_thread_invariance(&build_problem(seed));
    }
}

/// The concrete anchor behind the random sweep: the default problem of
/// [`ExploreProblem::new`] over the base spec — a single candidate —
/// behaves identically under both properties.
#[test]
fn the_degenerate_single_candidate_problem_holds_both_properties() {
    let problem = build_problem(0);
    let mut fixed = problem.clone();
    fixed.packing = PackingSpace::Fixed;
    fixed.priorities = PrioritySpace::declared_only();
    fixed.period_choices.clear();
    let (outcome, _) = run(&fixed, 1);
    assert_eq!(outcome.visited, 1);
    assert_eq!(outcome.default_index, Some(0));
    check_prune_soundness(&problem);
    check_thread_invariance(&problem);
}
