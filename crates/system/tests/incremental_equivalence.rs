//! Equivalence of warm-started and from-scratch analysis.
//!
//! The incremental engine promises results **bit-for-bit identical** to
//! a from-scratch run at every thread count: response times, per-entity
//! statuses, convergence traces, stop reasons, and iteration counts.
//! This suite generates random task graphs, applies random single- and
//! multi-entity mutations (periods, jitter, WCET, priorities, frame
//! packing, bus timing), chains them through warm-start snapshots, and
//! compares every link of the chain against a cold run of the same spec
//! at threads 1, 2, 4, and 8 — including the full-fallback paths
//! (structural changes, configuration changes, dependency cycles).
//!
//! Counter contract (see `docs/INCREMENTAL.md`): `global_iterations`
//! and `packing_ops` must equal the cold run's exactly; work counters
//! (busy-window iterations, curve-cache traffic) may legitimately
//! shrink on a warm run but must still be identical across thread
//! counts.

use std::collections::BTreeMap;

use proptest::prelude::*;

use hem_analysis::Priority;
use hem_autosar_com::{FrameType, TransferProperty};
use hem_can::{CanBusConfig, FrameFormat};
use hem_event_models::{EventModelExt, StandardEventModel};
use hem_obs::MemoryRecorder;
use hem_system::{
    analyze_incremental, analyze_robust, ActivationSpec, AnalysisMode, FallbackReason, FrameSpec,
    IncrementalOutcome, RobustAnalysis, SignalSpec, SystemConfig, SystemSpec, TaskSpec, WarmStart,
};
use hem_time::Time;

/// Tiny deterministic generator: the proptest case hands us a seed and
/// coarse sizes, this xorshift expands them into a concrete topology
/// and mutation walk.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.0 = x;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn periodic(rng: &mut Rng) -> ActivationSpec {
    let period = Time::new(2_000 + rng.pick(2_000) as i64);
    let model = if rng.pick(2) == 0 {
        StandardEventModel::periodic(period).expect("positive period")
    } else {
        let jitter = Time::new(rng.pick(400) as i64);
        StandardEventModel::periodic_with_jitter(period, jitter).expect("valid model")
    };
    ActivationSpec::External(model.shared())
}

/// A random — but always validation-clean and acyclic — system:
/// `buses` CAN buses with 1–2 frames each (packed signals from external
/// sources), `cpus` CPUs with 1–3 tasks each (activated externally, by
/// unpacked signals, by frame arrivals, or by earlier tasks' outputs).
/// Acyclic by construction: task outputs only feed later tasks, never
/// frames, so warm starts never hit the cycle fallback here (that path
/// has its own test below).
fn build_spec(seed: u64, buses: usize, cpus: usize) -> SystemSpec {
    let mut rng = Rng(seed);
    let mut spec = SystemSpec::new();

    let mut frame_signals: Vec<(String, Vec<String>)> = Vec::new();
    for b in 0..buses {
        spec = spec.bus(format!("bus{b}"), CanBusConfig::new(Time::new(1)));
        for f in 0..=rng.pick(2) as usize {
            let name = format!("f{b}_{f}");
            let mut signals = Vec::new();
            let mut signal_names = Vec::new();
            for s in 0..=rng.pick(2) as usize {
                let sig = format!("s{s}");
                signal_names.push(sig.clone());
                // The first signal always triggers — a frame with only
                // pending signals is a spec error (`NoTrigger`).
                signals.push(SignalSpec {
                    name: sig,
                    transfer: if s == 0 || rng.pick(2) == 0 {
                        TransferProperty::Triggering
                    } else {
                        TransferProperty::Pending
                    },
                    source: periodic(&mut rng),
                });
            }
            spec = spec.frame(FrameSpec {
                name: name.clone(),
                bus: format!("bus{b}"),
                frame_type: FrameType::Direct,
                payload_bytes: 1 + rng.pick(8) as u8,
                format: FrameFormat::Standard,
                priority: Priority::new(1 + f as u32),
                signals,
            });
            frame_signals.push((name, signal_names));
        }
    }

    for c in 0..cpus {
        spec = spec.cpu(format!("cpu{c}"));
        let n_tasks = 1 + rng.pick(3) as usize;
        for t in 0..n_tasks {
            let name = format!("t{c}_{t}");
            let activation = match rng.pick(4) {
                0 if !frame_signals.is_empty() => {
                    let (frame, sigs) =
                        &frame_signals[rng.pick(frame_signals.len() as u64) as usize];
                    ActivationSpec::Signal {
                        frame: frame.clone(),
                        signal: sigs[rng.pick(sigs.len() as u64) as usize].clone(),
                    }
                }
                1 if !frame_signals.is_empty() => {
                    let (frame, _) = &frame_signals[rng.pick(frame_signals.len() as u64) as usize];
                    ActivationSpec::FrameArrivals(frame.clone())
                }
                2 if t > 0 => ActivationSpec::TaskOutput(format!("t{c}_{}", rng.pick(t as u64))),
                _ => periodic(&mut rng),
            };
            let wcet = Time::new(10 + rng.pick(60) as i64);
            spec = spec.task(TaskSpec {
                name,
                cpu: format!("cpu{c}"),
                bcet: wcet,
                wcet,
                priority: Priority::new(1 + t as u32),
                activation,
            });
        }
    }
    spec
}

/// Applies one random non-structural mutation, cloning the spec so
/// untouched external models keep their `Arc` allocations (the diff's
/// unchanged fingerprint).
fn mutate(spec: &SystemSpec, rng: &mut Rng) -> SystemSpec {
    let mut out = spec.clone();
    for _ in 0..8 {
        match rng.pick(7) {
            0 if !out.tasks.is_empty() => {
                let i = rng.pick(out.tasks.len() as u64) as usize;
                let wcet = Time::new(10 + rng.pick(60) as i64);
                out.tasks[i].wcet = wcet;
                out.tasks[i].bcet = wcet;
                return out;
            }
            // Swap two same-CPU tasks' priorities (priorities must stay
            // unique per resource).
            1 if !out.tasks.is_empty() => {
                let i = rng.pick(out.tasks.len() as u64) as usize;
                let cpu = out.tasks[i].cpu.clone();
                let j = out
                    .tasks
                    .iter()
                    .position(|t| t.cpu == cpu && t.name != out.tasks[i].name);
                if let Some(j) = j {
                    let (pi, pj) = (out.tasks[i].priority, out.tasks[j].priority);
                    out.tasks[i].priority = pj;
                    out.tasks[j].priority = pi;
                    return out;
                }
            }
            // Replace an external activation (period / jitter change).
            2 if !out.tasks.is_empty() => {
                let i = rng.pick(out.tasks.len() as u64) as usize;
                if matches!(out.tasks[i].activation, ActivationSpec::External(_)) {
                    out.tasks[i].activation = periodic(rng);
                    return out;
                }
            }
            3 if !out.frames.is_empty() => {
                let i = rng.pick(out.frames.len() as u64) as usize;
                out.frames[i].payload_bytes = 1 + rng.pick(8) as u8;
                return out;
            }
            // Swap two same-bus frames' priorities.
            4 if !out.frames.is_empty() => {
                let i = rng.pick(out.frames.len() as u64) as usize;
                let bus = out.frames[i].bus.clone();
                let j = out
                    .frames
                    .iter()
                    .position(|f| f.bus == bus && f.name != out.frames[i].name);
                if let Some(j) = j {
                    let (pi, pj) = (out.frames[i].priority, out.frames[j].priority);
                    out.frames[i].priority = pj;
                    out.frames[j].priority = pi;
                    return out;
                }
            }
            // Repack a frame: replace a signal's source model.
            5 if !out.frames.is_empty() => {
                let i = rng.pick(out.frames.len() as u64) as usize;
                if !out.frames[i].signals.is_empty() {
                    let s = rng.pick(out.frames[i].signals.len() as u64) as usize;
                    out.frames[i].signals[s].source = periodic(rng);
                    return out;
                }
            }
            6 if !out.buses.is_empty() => {
                let i = rng.pick(out.buses.len() as u64) as usize;
                out.buses[i].config = CanBusConfig::new(Time::new(1 + rng.pick(2) as i64));
                return out;
            }
            _ => {}
        }
    }
    out
}

struct Run<O> {
    outcome: O,
    snapshot: hem_obs::MetricsSnapshot,
}

fn run_cold(spec: &SystemSpec, mode: AnalysisMode, threads: usize) -> Run<RobustAnalysis> {
    let (recorder, handle) = MemoryRecorder::handle();
    let config = SystemConfig::new(mode)
        .with_recorder(handle)
        .with_threads(threads);
    let outcome = analyze_robust(spec, &config).expect("generated specs are well-formed");
    Run {
        outcome,
        snapshot: recorder.snapshot(),
    }
}

fn run_warm(
    spec: &SystemSpec,
    mode: AnalysisMode,
    threads: usize,
    warm: Option<&WarmStart>,
) -> Run<IncrementalOutcome> {
    let (recorder, handle) = MemoryRecorder::handle();
    let config = SystemConfig::new(mode)
        .with_recorder(handle)
        .with_threads(threads);
    let outcome =
        analyze_incremental(spec, &config, warm).expect("generated specs are well-formed");
    Run {
        outcome,
        snapshot: recorder.snapshot(),
    }
}

/// Asserts a warm run's results and diagnostics are bit-for-bit the
/// cold run's, and that the deterministic counter subset matches.
fn assert_matches_cold(warm: &Run<IncrementalOutcome>, cold: &Run<RobustAnalysis>, label: &str) {
    let (wa, ca) = (&warm.outcome.analysis, &cold.outcome);
    assert_eq!(
        wa.results.is_complete(),
        ca.results.is_complete(),
        "{label}: completeness"
    );
    assert_eq!(
        wa.results.iterations(),
        ca.results.iterations(),
        "{label}: iterations"
    );
    assert_eq!(
        wa.results.response_times(),
        ca.results.response_times(),
        "{label}: response times"
    );
    assert_eq!(
        wa.results.tasks().collect::<Vec<_>>(),
        ca.results.tasks().collect::<Vec<_>>(),
        "{label}: task results"
    );
    assert_eq!(
        wa.results.frames().collect::<Vec<_>>(),
        ca.results.frames().collect::<Vec<_>>(),
        "{label}: frame results"
    );
    assert_eq!(wa.diagnostics.stop, ca.diagnostics.stop, "{label}: stop");
    assert_eq!(wa.diagnostics.trace, ca.diagnostics.trace, "{label}: trace");
    assert_eq!(
        wa.diagnostics.diverging, ca.diagnostics.diverging,
        "{label}: diverging"
    );
    assert_eq!(
        wa.diagnostics.last_response_times, ca.diagnostics.last_response_times,
        "{label}: last rts"
    );
    assert_eq!(
        wa.diagnostics.previous_response_times, ca.diagnostics.previous_response_times,
        "{label}: previous rts"
    );
    assert_eq!(
        wa.diagnostics.suspected_bottleneck, ca.diagnostics.suspected_bottleneck,
        "{label}: bottleneck"
    );
    // Replay skips busy-window *work*, never resolution: iteration and
    // packing counts must be exactly the cold run's.
    for counter in ["global_iterations", "packing_ops"] {
        assert_eq!(
            warm.snapshot.counters.get(counter),
            cold.snapshot.counters.get(counter),
            "{label}: counter {counter}"
        );
    }
}

/// Counters stripped of nothing — warm runs must agree on *all* of them
/// across thread counts, including work counters and warm-start
/// telemetry.
fn counters(run: &Run<IncrementalOutcome>) -> BTreeMap<&'static str, u64> {
    run.snapshot.counters.clone().into_iter().collect()
}

/// Runs the mutation chain warm at every thread count, cold at thread
/// count 1, and cross-checks everything.
fn check_chain(specs: &[SystemSpec], mode: AnalysisMode) {
    let colds: Vec<Run<RobustAnalysis>> = specs.iter().map(|s| run_cold(s, mode, 1)).collect();
    let mut reference: Vec<Run<IncrementalOutcome>> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let mut warm: Option<WarmStart> = None;
        for (step, spec) in specs.iter().enumerate() {
            let mut run = run_warm(spec, mode, threads, warm.as_ref());
            let label = format!("step {step}, {threads} threads");
            assert_matches_cold(&run, &colds[step], &label);
            if step == 0 {
                assert_eq!(
                    run.outcome.reuse.fallback,
                    Some(FallbackReason::NoSnapshot),
                    "{label}: first link is cold"
                );
            } else if colds[step - 1].outcome.results.is_complete() {
                assert!(run.outcome.reuse.warm, "{label}: expected warm reuse");
            }
            // Converged runs snapshot; stopped runs must not.
            assert_eq!(
                run.outcome.snapshot.is_some(),
                run.outcome.analysis.results.is_complete(),
                "{label}: snapshot presence"
            );
            warm = run.outcome.snapshot.take();
            if threads == 1 {
                reference.push(run);
            } else {
                // Thread-count determinism of the warm path: identical
                // reuse reports and identical counters, work counters
                // and warm-start telemetry included.
                let reference = &reference[step];
                assert_eq!(
                    run.outcome.reuse.warm, reference.outcome.reuse.warm,
                    "{label}: reuse.warm"
                );
                assert_eq!(
                    run.outcome.reuse.fallback, reference.outcome.reuse.fallback,
                    "{label}: reuse.fallback"
                );
                assert_eq!(
                    run.outcome.reuse.dirty_resources, reference.outcome.reuse.dirty_resources,
                    "{label}: damage cone"
                );
                assert_eq!(
                    run.outcome.reuse.replayed_results, reference.outcome.reuse.replayed_results,
                    "{label}: replayed results"
                );
                assert_eq!(counters(&run), counters(reference), "{label}: counters");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Single-mutation chains: spec → mutate → mutate, each link
    /// warm-started from the previous converged snapshot.
    #[test]
    fn warm_chains_equal_cold_runs(
        seed in 0u64..1 << 48,
        buses in 1usize..=2,
        cpus in 1usize..=2,
    ) {
        let mut rng = Rng(seed ^ 0xD1F7);
        let base = build_spec(seed, buses, cpus);
        let step1 = mutate(&base, &mut rng);
        let step2 = mutate(&step1, &mut rng);
        check_chain(&[base, step1, step2], AnalysisMode::Hierarchical);
    }

    /// Multi-entity mutations: several parameters change at once, the
    /// damage cone is the union, and equivalence still holds.
    #[test]
    fn multi_entity_mutations_equal_cold_runs(seed in 0u64..1 << 48) {
        let mut rng = Rng(seed ^ 0xBEEF);
        let base = build_spec(seed, 2, 2);
        let mut multi = mutate(&base, &mut rng);
        for _ in 0..3 {
            multi = mutate(&multi, &mut rng);
        }
        check_chain(&[base, multi], AnalysisMode::Hierarchical);
    }

    /// Flat mode replays the same machinery.
    #[test]
    fn flat_mode_chains_equal_cold_runs(seed in 0u64..1 << 48) {
        let mut rng = Rng(seed ^ 0xF1A7);
        let base = build_spec(seed, 2, 1);
        let step = mutate(&base, &mut rng);
        check_chain(&[base, step], AnalysisMode::Flat);
    }

    /// Structural changes (a task added) force a full fallback whose
    /// results still equal the cold run's.
    #[test]
    fn structural_changes_fall_back_and_equal_cold(seed in 0u64..1 << 48) {
        let base = build_spec(seed, 1, 1);
        let mut grown = base.clone().cpu("extra_cpu");
        grown = grown.task(TaskSpec {
            name: "extra_task".into(),
            cpu: "extra_cpu".into(),
            bcet: Time::new(10),
            wcet: Time::new(10),
            priority: Priority::new(1),
            activation: ActivationSpec::External(
                StandardEventModel::periodic(Time::new(5_000)).expect("valid").shared(),
            ),
        });
        for threads in [1usize, 4] {
            let first = run_warm(&base, AnalysisMode::Hierarchical, threads, None);
            let snapshot = first.outcome.snapshot;
            prop_assume!(snapshot.is_some());
            let second = run_warm(
                &grown,
                AnalysisMode::Hierarchical,
                threads,
                snapshot.as_ref(),
            );
            assert_eq!(
                second.outcome.reuse.fallback,
                Some(FallbackReason::StructuralChange)
            );
            assert!(!second.outcome.reuse.warm);
            assert_eq!(second.outcome.reuse.replayed_results, 0);
            assert!((second.outcome.reuse.cone_fraction() - 1.0).abs() < f64::EPSILON);
            let cold = run_cold(&grown, AnalysisMode::Hierarchical, threads);
            assert_matches_cold(&second, &cold, &format!("structural, {threads} threads"));
        }
    }
}

/// An unchanged spec replays everything: empty damage cone, every
/// per-entity analysis a warm-start hit, identical outputs.
#[test]
fn unchanged_spec_replays_fully() {
    let spec = build_spec(7, 2, 2);
    let cold = run_cold(&spec, AnalysisMode::Hierarchical, 1);
    let first = run_warm(&spec, AnalysisMode::Hierarchical, 1, None);
    let snapshot = first.outcome.snapshot.expect("converged");
    let second = run_warm(&spec, AnalysisMode::Hierarchical, 1, Some(&snapshot));
    assert!(second.outcome.reuse.warm);
    assert!(second.outcome.reuse.dirty_resources.is_empty());
    assert_eq!(second.outcome.reuse.cone_fraction(), 0.0);
    let entities = (spec.tasks.len() + spec.frames.len()) as u64;
    assert_eq!(
        second.outcome.reuse.replayed_results,
        entities * cold.outcome.results.iterations(),
        "every entity of every iteration replays"
    );
    assert_matches_cold(&second, &cold, "unchanged spec");
    assert_eq!(
        second.snapshot.counters.get("warm_start_hits").copied(),
        Some(second.outcome.reuse.replayed_results)
    );
    assert_eq!(second.snapshot.counters.get("cone_size").copied(), Some(0));
    assert_eq!(
        second.snapshot.counters.get("full_fallbacks").copied(),
        Some(0)
    );
}

/// A configuration change (different mode) refuses reuse.
#[test]
fn config_changes_fall_back() {
    let spec = build_spec(11, 1, 1);
    let first = run_warm(&spec, AnalysisMode::Hierarchical, 1, None);
    let snapshot = first.outcome.snapshot.expect("converged");
    let second = run_warm(&spec, AnalysisMode::Flat, 1, Some(&snapshot));
    assert_eq!(
        second.outcome.reuse.fallback,
        Some(FallbackReason::ConfigChanged)
    );
    let cold = run_cold(&spec, AnalysisMode::Flat, 1);
    assert_matches_cold(&second, &cold, "config change");
    assert_eq!(
        second.snapshot.counters.get("full_fallbacks").copied(),
        Some(1)
    );
}

/// A topology with resource-level cycles refuses reuse (the sequential
/// cycle fallback cannot replay) — but only once the cycle appears.
#[test]
fn cyclic_target_falls_back() {
    // Start acyclic: gateway task fed externally.
    let frame = |name: &str, bus: &str, source: ActivationSpec| FrameSpec {
        name: name.into(),
        bus: bus.into(),
        frame_type: FrameType::Direct,
        payload_bytes: 2,
        format: FrameFormat::Standard,
        priority: Priority::new(1),
        signals: vec![SignalSpec {
            name: "x".into(),
            transfer: TransferProperty::Triggering,
            source,
        }],
    };
    let external = || {
        ActivationSpec::External(
            StandardEventModel::periodic(Time::new(4_000))
                .expect("valid")
                .shared(),
        )
    };
    let base = SystemSpec::new()
        .cpu("gw")
        .bus("b0", CanBusConfig::new(Time::new(1)))
        .bus("b1", CanBusConfig::new(Time::new(1)))
        .frame(frame("F0", "b0", external()))
        .frame(frame("F1", "b1", ActivationSpec::TaskOutput("t0".into())))
        .task(TaskSpec {
            name: "t0".into(),
            cpu: "gw".into(),
            bcet: Time::new(10),
            wcet: Time::new(10),
            priority: Priority::new(1),
            activation: ActivationSpec::Signal {
                frame: "F0".into(),
                signal: "x".into(),
            },
        });
    let first = run_warm(&base, AnalysisMode::Hierarchical, 1, None);
    let snapshot = first.outcome.snapshot.expect("converged");
    // Close the loop: F0 now carries t1's output, and t1 reads F1 —
    // b0 → gw → b1 → gw is a resource-level cycle. The spec changed
    // structurally too (a task appeared), so either fallback reason is
    // sound; what matters is that no replay happens.
    let cyclic = {
        let mut s = base.clone();
        s.frames[0].signals[0].source = ActivationSpec::TaskOutput("t1".into());
        s.task(TaskSpec {
            name: "t1".into(),
            cpu: "gw".into(),
            bcet: Time::new(10),
            wcet: Time::new(10),
            priority: Priority::new(2),
            activation: ActivationSpec::Signal {
                frame: "F1".into(),
                signal: "x".into(),
            },
        })
    };
    let (recorder, handle) = MemoryRecorder::handle();
    let config = SystemConfig::new(AnalysisMode::Hierarchical).with_recorder(handle);
    let second = analyze_incremental(&cyclic, &config, Some(&snapshot));
    drop(recorder);
    // The cyclic system errors identically to the cold engine (the
    // cycle is a hard error), or degrades identically — either way the
    // cold path decides.
    let cold = analyze_robust(&cyclic, &SystemConfig::new(AnalysisMode::Hierarchical));
    match (second, cold) {
        (Ok(w), Ok(c)) => {
            assert!(!w.reuse.warm);
            assert_eq!(
                w.analysis.results.response_times(),
                c.results.response_times()
            );
        }
        (Err(w), Err(c)) => assert_eq!(format!("{w:?}"), format!("{c:?}")),
        (w, c) => panic!(
            "outcome kind differs: warm {:?} vs cold {:?}",
            w.as_ref().map(|_| "ok"),
            c.as_ref().map(|_| "ok"),
        ),
    }
}

/// The pure `DependencyCycles` fallback: same topology snapshotted,
/// then re-targeted at a spec whose only change is a parameter, but
/// whose graph (unchanged) is cyclic — warm refuses before planning.
#[test]
fn cycle_in_unchanged_topology_is_refused_at_plan_time() {
    // A cyclic-graph system that still converges is hard to build (the
    // engine rejects activation cycles), so exercise plan-time refusal
    // directly: snapshot an acyclic system, then ask for reuse on a
    // *different* structural target and verify the reported reason is
    // StructuralChange, not a panic inside cone planning.
    let base = build_spec(3, 1, 1);
    let first = run_warm(&base, AnalysisMode::Hierarchical, 1, None);
    let snapshot = first.outcome.snapshot.expect("converged");
    let mut shrunk = base.clone();
    shrunk.tasks.pop();
    if shrunk.tasks.is_empty() {
        return;
    }
    let second = run_warm(&shrunk, AnalysisMode::Hierarchical, 1, Some(&snapshot));
    assert_eq!(
        second.outcome.reuse.fallback,
        Some(FallbackReason::StructuralChange)
    );
    let cold = run_cold(&shrunk, AnalysisMode::Hierarchical, 1);
    assert_matches_cold(&second, &cold, "shrunk topology");
}
