//! Determinism of the parallel analysis engine.
//!
//! The engine promises bit-for-bit identical outcomes for every thread
//! count: response times, per-entity statuses, stop reason, convergence
//! trace, and recorder counter totals. This suite generates random task
//! graphs — multiple buses, HEM pack/unpack stages, task-output chains,
//! occasionally overloaded or cyclic — and replays each with 1, 2, 4,
//! and 8 threads, requiring equality on everything except wall-clock
//! observations (`Diagnostics::elapsed`, `span_us/*` histograms).

use std::collections::BTreeMap;

use proptest::prelude::*;

use hem_analysis::Priority;
use hem_autosar_com::{FrameType, TransferProperty};
use hem_can::{CanBusConfig, FrameFormat};
use hem_event_models::{EventModelExt, StandardEventModel};
use hem_obs::{HistogramData, MemoryRecorder};
use hem_system::{
    analyze_robust, ActivationSpec, AnalysisMode, FrameSpec, RobustAnalysis, SignalSpec,
    SystemConfig, SystemSpec, TaskSpec,
};
use hem_time::Time;

/// Tiny deterministic generator: the proptest case hands us a seed and
/// coarse sizes, this xorshift expands them into a concrete topology.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.0 = x;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Builds a random — but always validation-clean — system: `buses`
/// CAN buses with 1–2 frames each (packed HEM signals from external
/// periodic sources or task outputs), `cpus` CPUs with 1–3 tasks each
/// (activated externally, by unpacked signals, by frame arrivals, or by
/// other tasks' outputs). Task-output sources may close resource-level
/// cycles; those exercise the engine's sequential fallback.
fn build_spec(seed: u64, buses: usize, cpus: usize, tight: bool) -> SystemSpec {
    let mut rng = Rng(seed);
    let mut spec = SystemSpec::new();

    // Task names exist up front so frames can pack task outputs.
    let mut task_names: Vec<String> = Vec::new();
    let mut tasks_on: Vec<Vec<String>> = Vec::new();
    for c in 0..cpus {
        spec = spec.cpu(format!("cpu{c}"));
        let mut on_cpu = Vec::new();
        for t in 0..=rng.pick(3) as usize {
            let name = format!("t{c}_{t}");
            task_names.push(name.clone());
            on_cpu.push(name);
        }
        tasks_on.push(on_cpu);
    }

    // Periods keep single-resource utilisation low unless `tight`,
    // which deliberately risks overload (the outcome must still be
    // deterministic, converged or not).
    let base = if tight { 260 } else { 2_000 };
    let period = |rng: &mut Rng| Time::new(base + rng.pick(2_000) as i64);

    let mut frame_signals: Vec<(String, Vec<String>)> = Vec::new();
    for b in 0..buses {
        spec = spec.bus(format!("bus{b}"), CanBusConfig::new(Time::new(1)));
        for f in 0..=rng.pick(2) as usize {
            let name = format!("f{b}_{f}");
            let mut signals = Vec::new();
            let mut signal_names = Vec::new();
            for s in 0..=rng.pick(2) as usize {
                let source = if !task_names.is_empty() && rng.pick(3) == 0 {
                    let t = &task_names[rng.pick(task_names.len() as u64) as usize];
                    ActivationSpec::TaskOutput(t.clone())
                } else {
                    ActivationSpec::External(
                        StandardEventModel::periodic(period(&mut rng))
                            .expect("positive period")
                            .shared(),
                    )
                };
                let sig = format!("s{s}");
                signal_names.push(sig.clone());
                signals.push(SignalSpec {
                    name: sig,
                    transfer: if rng.pick(2) == 0 {
                        TransferProperty::Triggering
                    } else {
                        TransferProperty::Pending
                    },
                    source,
                });
            }
            spec = spec.frame(FrameSpec {
                name: name.clone(),
                bus: format!("bus{b}"),
                frame_type: FrameType::Direct,
                payload_bytes: 1 + rng.pick(8) as u8,
                format: FrameFormat::Standard,
                priority: Priority::new(1 + f as u32),
                signals,
            });
            frame_signals.push((name, signal_names));
        }
    }

    for (c, on_cpu) in tasks_on.iter().enumerate() {
        for (t, name) in on_cpu.iter().enumerate() {
            let activation = match rng.pick(4) {
                0 if !frame_signals.is_empty() => {
                    let (frame, sigs) =
                        &frame_signals[rng.pick(frame_signals.len() as u64) as usize];
                    ActivationSpec::Signal {
                        frame: frame.clone(),
                        signal: sigs[rng.pick(sigs.len() as u64) as usize].clone(),
                    }
                }
                1 if !frame_signals.is_empty() => {
                    let (frame, _) = &frame_signals[rng.pick(frame_signals.len() as u64) as usize];
                    ActivationSpec::FrameArrivals(frame.clone())
                }
                2 if t > 0 => {
                    ActivationSpec::TaskOutput(on_cpu[rng.pick(t as u64) as usize].clone())
                }
                _ => ActivationSpec::External(
                    StandardEventModel::periodic(period(&mut rng))
                        .expect("positive period")
                        .shared(),
                ),
            };
            let wcet = Time::new(10 + rng.pick(if tight { 180 } else { 60 }) as i64);
            spec = spec.task(TaskSpec {
                name: name.clone(),
                cpu: format!("cpu{c}"),
                bcet: wcet,
                wcet,
                priority: Priority::new(1 + t as u32),
                activation,
            });
        }
    }
    spec
}

/// Runs the analysis with a fresh recorder and the given thread count.
fn run(spec: &SystemSpec, mode: AnalysisMode, threads: usize) -> Run {
    let (recorder, handle) = MemoryRecorder::handle();
    let config = SystemConfig::new(mode)
        .with_recorder(handle)
        .with_threads(threads);
    let outcome = analyze_robust(spec, &config);
    let snapshot = recorder.snapshot();
    Run { outcome, snapshot }
}

struct Run {
    outcome: Result<RobustAnalysis, hem_system::SystemError>,
    snapshot: hem_obs::MetricsSnapshot,
}

/// Histograms minus the wall-clock `span_us/*` families.
fn deterministic_histograms(
    snapshot: &hem_obs::MetricsSnapshot,
) -> BTreeMap<&'static str, &HistogramData> {
    snapshot
        .histograms
        .iter()
        .filter(|(name, _)| !name.starts_with("span_us/"))
        .map(|(name, data)| (*name, data))
        .collect()
}

/// Asserts that two runs are indistinguishable except for wall-clock.
fn assert_identical(reference: &Run, candidate: &Run, threads: usize) {
    match (&reference.outcome, &candidate.outcome) {
        (Ok(a), Ok(b)) => {
            let ra = &a.results;
            let rb = &b.results;
            assert_eq!(ra.is_complete(), rb.is_complete(), "{threads} threads");
            assert_eq!(ra.iterations(), rb.iterations(), "{threads} threads");
            assert_eq!(
                ra.tasks().collect::<Vec<_>>(),
                rb.tasks().collect::<Vec<_>>(),
                "{threads} threads: task results"
            );
            assert_eq!(
                ra.frames().collect::<Vec<_>>(),
                rb.frames().collect::<Vec<_>>(),
                "{threads} threads: frame results"
            );
            let da = &a.diagnostics;
            let db = &b.diagnostics;
            assert_eq!(da.stop, db.stop, "{threads} threads: stop reason");
            assert_eq!(da.iterations, db.iterations, "{threads} threads");
            assert_eq!(da.trace, db.trace, "{threads} threads: trace");
            assert_eq!(da.diverging, db.diverging, "{threads} threads");
            assert_eq!(
                da.last_response_times, db.last_response_times,
                "{threads} threads"
            );
            assert_eq!(
                da.previous_response_times, db.previous_response_times,
                "{threads} threads"
            );
            assert_eq!(
                da.suspected_bottleneck, db.suspected_bottleneck,
                "{threads} threads"
            );
        }
        (Err(a), Err(b)) => {
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{threads} threads: error"
            );
        }
        (a, b) => panic!(
            "{threads} threads: outcome kind differs: {:?} vs {:?}",
            a.as_ref().map(|_| "ok"),
            b.as_ref().map(|_| "ok"),
        ),
    }
    assert_eq!(
        reference.snapshot.counters, candidate.snapshot.counters,
        "{threads} threads: counter totals"
    );
    assert_eq!(
        reference.snapshot.labeled, candidate.snapshot.labeled,
        "{threads} threads: labeled counters"
    );
    assert_eq!(
        deterministic_histograms(&reference.snapshot),
        deterministic_histograms(&candidate.snapshot),
        "{threads} threads: histograms"
    );
}

fn check_all_thread_counts(spec: &SystemSpec, mode: AnalysisMode) {
    let reference = run(spec, mode, 1);
    for threads in [2, 4, 8] {
        let candidate = run(spec, mode, threads);
        assert_identical(&reference, &candidate, threads);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_graphs_are_thread_count_invariant(
        seed in 0u64..1 << 48,
        buses in 1usize..=2,
        cpus in 1usize..=2,
    ) {
        let spec = build_spec(seed, buses, cpus, false);
        check_all_thread_counts(&spec, AnalysisMode::Hierarchical);
    }

    #[test]
    fn tight_graphs_degrade_identically_across_threads(
        seed in 0u64..1 << 48,
        cpus in 1usize..=2,
    ) {
        // Overload-prone systems: divergence detection, local analysis
        // failures, and partial salvage must not depend on threads.
        let spec = build_spec(seed, 1, cpus, true);
        check_all_thread_counts(&spec, AnalysisMode::Hierarchical);
    }

    #[test]
    fn flat_mode_is_thread_count_invariant(seed in 0u64..1 << 48) {
        let spec = build_spec(seed, 2, 2, false);
        check_all_thread_counts(&spec, AnalysisMode::Flat);
    }
}

/// The paper's Fig. 2 system, all three modes, threads 1 vs 2, 4, 8 —
/// the concrete anchor behind the random sweep above.
#[test]
fn fig2_shape_system_matches_across_thread_counts() {
    let spec = SystemSpec::new()
        .cpu("cpu1")
        .bus("can", CanBusConfig::new(Time::new(1)))
        .frame(FrameSpec {
            name: "F1".into(),
            bus: "can".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 4,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: vec![
                SignalSpec {
                    name: "s1".into(),
                    transfer: TransferProperty::Triggering,
                    source: ActivationSpec::External(
                        StandardEventModel::periodic(Time::new(2_500))
                            .expect("valid")
                            .shared(),
                    ),
                },
                SignalSpec {
                    name: "s2".into(),
                    transfer: TransferProperty::Pending,
                    source: ActivationSpec::External(
                        StandardEventModel::periodic(Time::new(6_000))
                            .expect("valid")
                            .shared(),
                    ),
                },
            ],
        })
        .task(TaskSpec {
            name: "T1".into(),
            cpu: "cpu1".into(),
            bcet: Time::new(240),
            wcet: Time::new(240),
            priority: Priority::new(1),
            activation: ActivationSpec::Signal {
                frame: "F1".into(),
                signal: "s1".into(),
            },
        })
        .task(TaskSpec {
            name: "T2".into(),
            cpu: "cpu1".into(),
            bcet: Time::new(400),
            wcet: Time::new(400),
            priority: Priority::new(2),
            activation: ActivationSpec::Signal {
                frame: "F1".into(),
                signal: "s2".into(),
            },
        });
    for mode in [
        AnalysisMode::Flat,
        AnalysisMode::FlatSem,
        AnalysisMode::Hierarchical,
    ] {
        check_all_thread_counts(&spec, mode);
    }
}

/// Cyclic topologies run through the sequential fallback on every
/// thread count and must report the identical `DependencyCycle`.
#[test]
fn cyclic_systems_fail_identically_across_thread_counts() {
    let spec = SystemSpec::new()
        .cpu("gw")
        .bus("b0", CanBusConfig::new(Time::new(1)))
        .bus("b1", CanBusConfig::new(Time::new(1)))
        .frame(FrameSpec {
            name: "F0".into(),
            bus: "b0".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 2,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: vec![SignalSpec {
                name: "x".into(),
                transfer: TransferProperty::Triggering,
                source: ActivationSpec::TaskOutput("t1".into()),
            }],
        })
        .frame(FrameSpec {
            name: "F1".into(),
            bus: "b1".into(),
            frame_type: FrameType::Direct,
            payload_bytes: 2,
            format: FrameFormat::Standard,
            priority: Priority::new(1),
            signals: vec![SignalSpec {
                name: "y".into(),
                transfer: TransferProperty::Triggering,
                source: ActivationSpec::TaskOutput("t0".into()),
            }],
        })
        .task(TaskSpec {
            name: "t0".into(),
            cpu: "gw".into(),
            bcet: Time::new(10),
            wcet: Time::new(10),
            priority: Priority::new(1),
            activation: ActivationSpec::Signal {
                frame: "F0".into(),
                signal: "x".into(),
            },
        })
        .task(TaskSpec {
            name: "t1".into(),
            cpu: "gw".into(),
            bcet: Time::new(10),
            wcet: Time::new(10),
            priority: Priority::new(2),
            activation: ActivationSpec::Signal {
                frame: "F1".into(),
                signal: "y".into(),
            },
        });
    let reference = run(&spec, AnalysisMode::Hierarchical, 1);
    assert!(
        reference.outcome.is_err(),
        "cycle must be rejected: {:?}",
        reference.outcome.as_ref().map(|_| "ok")
    );
    for threads in [2, 4, 8] {
        assert_identical(
            &reference,
            &run(&spec, AnalysisMode::Hierarchical, threads),
            threads,
        );
    }
}
